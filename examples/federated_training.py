"""Federated fine-tuning of the embedding model (paper §III-A, Figures 2/11/12).

Run with::

    python examples/federated_training.py

Twenty simulated users hold private shards of duplicate / non-duplicate query
pairs.  Each FL round a few of them fine-tune the global encoder locally with
the contrastive + multiple-negatives-ranking objective, search for their
locally-optimal cosine threshold, and send weights + threshold back for
FedAvg aggregation.  The script prints the global model's metrics per round
and finally deploys the trained encoder + learned threshold into a MeanCache
and compares it against the fixed-threshold GPTCache baseline.
"""

from __future__ import annotations

import os

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.datasets.semantic_pairs import generate_cache_workload, generate_pair_dataset
from repro.embeddings.zoo import load_encoder
from repro.experiments.table1 import evaluate_gptcache_on_workload, evaluate_meancache_on_workload
from repro.federated.simulation import FLSimulation, SimulationConfig


# REPRO_SMOKE=1 shrinks the run so CI can execute every example quickly
# (unset or "0" means a full run).
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def main() -> None:
    # Synthetic "user query history": labelled duplicate / non-duplicate pairs.
    pairs = generate_pair_dataset(
        n_pairs=300 if SMOKE else 1200, duplicate_fraction=0.5, seed=0
    )
    train, val, test = pairs.split(0.7, 0.15, seed=1)

    config = SimulationConfig(
        encoder_name="mpnet-sim",
        n_clients=4 if SMOKE else 10,
        n_rounds=2 if SMOKE else 8,
        clients_per_round=2 if SMOKE else 4,
        local_epochs=1 if SMOKE else 3,
        seed=0,
    )
    print(f"Running FL: {config.n_clients} clients, {config.n_rounds} rounds, "
          f"{config.clients_per_round} sampled per round, {config.local_epochs} local epochs")
    simulation = FLSimulation(train, val, test_data=test, config=config)
    result = simulation.run()

    print("\nround  f1     precision  recall  accuracy  global-tau")
    curves = result.curves
    for i in range(result.n_rounds):
        print(
            f"{int(curves['round'][i]):>5}  "
            f"{curves['f1'][i]:.3f}  {curves['precision'][i]:.3f}      "
            f"{curves['recall'][i]:.3f}   {curves['accuracy'][i]:.3f}     "
            f"{curves['threshold'][i]:.2f}"
        )
    print(f"\nlearned global threshold: {result.final_threshold:.2f}")

    # Deploy: the FL-trained encoder + learned threshold power the local cache.
    trained_encoder = simulation.trained_encoder()
    scale = 100 if SMOKE else 400
    workload = generate_cache_workload(
        n_cached=scale, n_probes=scale, duplicate_fraction=0.3, seed=7
    )

    meancache = MeanCache(
        trained_encoder, MeanCacheConfig(similarity_threshold=result.final_threshold)
    )
    mc_eval = evaluate_meancache_on_workload(meancache, workload)

    gptcache = GPTCache(load_encoder("albert-sim"), GPTCacheConfig(similarity_threshold=0.7))
    gpt_eval = evaluate_gptcache_on_workload(gptcache, workload)

    print("\nEnd-to-end cache decisions on a fresh 400-query workload (30% duplicates):")
    for name, ev in [("MeanCache (FL-trained)", mc_eval), ("GPTCache (baseline)", gpt_eval)]:
        m = ev.metrics
        print(
            f"  {name:<24} F0.5={m['f_score']:.3f}  precision={m['precision']:.3f}  "
            f"recall={m['recall']:.3f}  false hits={int(m['false_hits'])}"
        )


if __name__ == "__main__":
    main()
