"""Quickstart: a user-side MeanCache in front of a (simulated) LLM web service.

Run with::

    python examples/quickstart.py

It builds a MeanCache backed by the pretrained ALBERT-class encoder, wires it
to the simulated LLM service, sends a handful of queries (including
paraphrases of earlier ones), and prints which were answered from the local
cache together with the latency and cost savings.
"""

from __future__ import annotations

from repro import MeanCache, MeanCacheConfig, MeanCacheClient, SimulatedLLMService, load_encoder


def main() -> None:
    # 1. Load the local embedding model (the "pretrained checkpoint" of the
    #    ALBERT-class encoder; federated fine-tuning would sharpen it further,
    #    see examples/federated_training.py).
    encoder = load_encoder("albert-sim")

    # 2. Create the local semantic cache with an adaptive cosine threshold.
    cache = MeanCache(
        encoder,
        MeanCacheConfig(similarity_threshold=0.78, verify_context=True),
    )

    # 3. Wire the cache to the LLM web service through a client session.
    service = SimulatedLLMService()
    client = MeanCacheClient(cache, service, client_id="alice")

    queries = [
        "How can I sort a list in Python?",
        "How do I extend the battery life of my smartphone?",
        "What is the best way to order a Python list?",          # paraphrase -> hit
        "Tips for extending the duration of my phone's power source",  # paraphrase -> hit
        "How do I bake chocolate chip cookies?",                 # new topic  -> miss
    ]

    print("query".ljust(62), "source".ljust(8), "latency")
    print("-" * 92)
    for query in queries:
        result = client.query(query)
        source = "cache" if result.from_cache else "LLM"
        print(query.ljust(62), source.ljust(8), f"{result.total_latency_s * 1000:8.1f} ms")

    print()
    print(f"cache hit rate          : {client.hit_rate:.0%}")
    print(f"queries sent to the LLM : {service.stats.n_requests}")
    print(f"simulated spend         : ${client.total_cost_usd:.5f}")
    print(f"entries in local cache  : {len(cache)}")
    print(f"local cache storage     : {cache.total_storage_bytes() / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
