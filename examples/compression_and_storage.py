"""Embedding compression with PCA (paper §III-A4, Figure 10).

Run with::

    python examples/compression_and_storage.py

Populates a MeanCache with several hundred queries, then compresses its
embeddings from 768 to 64 dimensions by learning principal components from the
cached queries and attaching them as an extra projection layer of the encoder.
Prints the storage saving, the change in semantic-search time and the change
in hit/miss quality on a probe stream.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.core.compression import compress_cache
from repro.datasets.semantic_pairs import generate_cache_workload
from repro.embeddings.zoo import load_encoder
from repro.experiments.table1 import evaluate_meancache_on_workload


def main() -> None:
    workload = generate_cache_workload(n_cached=400, n_probes=300, duplicate_fraction=0.3, seed=3)
    encoder = load_encoder("mpnet-sim")

    # Uncompressed cache.
    cache = MeanCache(encoder.clone(), MeanCacheConfig(similarity_threshold=0.85))
    cache.populate(workload.cached_queries)
    before_eval = evaluate_meancache_on_workload(cache, workload)
    # evaluate_* clears and repopulates, so measure storage afterwards.
    before_storage = cache.embedding_storage_bytes()
    before_search = np.mean([cache.lookup(p.text).search_time_s for p in workload.probes[:100]])

    # Compressed cache (768 -> 64 dimensions).
    compressed = MeanCache(encoder.clone(), MeanCacheConfig(similarity_threshold=0.85))
    compressed.populate(workload.cached_queries)
    report = compress_cache(compressed, n_components=64)
    after_eval = evaluate_meancache_on_workload(compressed, workload)
    after_storage = compressed.embedding_storage_bytes()
    after_search = np.mean([compressed.lookup(p.text).search_time_s for p in workload.probes[:100]])

    print(f"cached queries                : {len(compressed)}")
    print(f"embedding dim                 : {report.original_dim} -> {report.compressed_dim}")
    print(f"embedding storage             : {before_storage / 1024:.1f} KiB -> {after_storage / 1024:.1f} KiB "
          f"({report.embedding_saving_fraction:.0%} saved)")
    print(f"explained variance retained   : {report.explained_variance_ratio:.1%}")
    print(f"mean semantic-search time     : {before_search * 1e3:.2f} ms -> {after_search * 1e3:.2f} ms")
    print(f"F0.5 on the probe stream      : {before_eval.metrics['f_score']:.3f} -> {after_eval.metrics['f_score']:.3f}")
    print(f"precision on the probe stream : {before_eval.metrics['precision']:.3f} -> {after_eval.metrics['precision']:.3f}")


if __name__ == "__main__":
    main()
