"""Contextual queries and context-chain verification (paper §II, §IV-C).

Run with::

    python examples/contextual_conversations.py

Reproduces the paper's motivating scenario: the user asks "Draw a line plot in
Python" and then "Change the color to red" (a follow-up).  Later, in a
*different* conversation about drawing a circle, they again ask "Change the
color to red".  A context-oblivious semantic cache returns the cached (wrong)
response; MeanCache's context-chain verification correctly treats it as a
miss and forwards it to the LLM.
"""

from __future__ import annotations

from repro import GPTCache, GPTCacheConfig, MeanCache, MeanCacheConfig, load_encoder
from repro.core.client import MeanCacheClient
from repro.llm.service import SimulatedLLMService


def main() -> None:
    encoder = load_encoder("mpnet-sim")
    cache = MeanCache(
        encoder,
        # The pretrained (not yet FL-fine-tuned) encoder keeps "draw a line
        # plot" and "draw a circle" fairly close, so the context check uses a
        # stricter threshold here; the FL-trained encoder separates them on
        # its own (see examples/federated_training.py).
        MeanCacheConfig(similarity_threshold=0.85, context_threshold=0.9, verify_context=True),
    )
    client = MeanCacheClient(cache, SimulatedLLMService(), client_id="bob")

    print("--- conversation 1: line plot ---")
    q1 = client.query("Draw a line plot in Python")
    q2 = client.query("Change the color to red", is_followup=True)
    print(f"  {q1.query!r:<45} from_cache={q1.from_cache}")
    print(f"  {q2.query!r:<45} from_cache={q2.from_cache}")

    print("--- conversation 2: circle ---")
    client.new_conversation()
    q3 = client.query("Draw a circle in Python")
    q4 = client.query("Change the color to red", is_followup=True)
    print(f"  {q3.query!r:<45} from_cache={q3.from_cache}")
    print(f"  {q4.query!r:<45} from_cache={q4.from_cache}   <- context differs, correctly a miss")

    print("--- conversation 3: line plot again (paraphrased) ---")
    client.new_conversation()
    q5 = client.query("Please show me how to draw a line plot in Python")
    q6 = client.query("Could you change the color to red?", is_followup=True)
    print(f"  {q5.query!r:<45} from_cache={q5.from_cache}   <- duplicate standalone, hit")
    print(f"  {q6.query!r:<45} from_cache={q6.from_cache}   <- same context as conv. 1, hit")

    # The same trap against a context-oblivious server-side cache.
    print("\n--- the same trap against a context-oblivious GPTCache ---")
    gpt = GPTCache(load_encoder("albert-sim"), GPTCacheConfig(similarity_threshold=0.7))
    gpt.insert("Draw a line plot in Python", "matplotlib.pyplot.plot(...)")
    gpt.insert("Change the color to red", "plt.plot(x, y, color='red')  # for the LINE PLOT")
    trap = gpt.lookup("Change the color to red")  # asked in the circle conversation
    print(f"  GPTCache returns a hit: {trap.hit} (the cached answer refers to the wrong context)")


if __name__ == "__main__":
    main()
