"""Fleet simulation: many user devices, one shared LLM web service.

Run with::

    python examples/fleet_simulation.py

It generates a deterministic multi-user traffic trace (Poisson arrivals,
per-user topic mixes, conversations and paraphrase duplicates), replays it
through a fleet of per-user MeanCaches against one simulated LLM service,
prints the fleet-wide and busiest-user statistics, then saves the trace to a
JSON file and replays it to show the results are bit-identical — the
traffic-replay workflow used to compare cache variants on equal traffic.

Then it closes the paper's federated loop online: the same fleet is
re-run on *drifting* traffic with an ``OnlineThresholdAdapter`` mining
labelled pairs from each device's own lookups and re-learning the cosine
threshold τ in periodic federated rounds on the virtual clock.

Finally it runs a slice of the scenario zoo — an adversarial
cache-poisoning stream against a shared cache and a flash-crowd arrival
spike — through the declarative matrix driver and prints the per-scenario
comparison table (the same shape ``BENCH_scenarios.json`` records; see
``docs/scenarios.md``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import MeanCache, MeanCacheConfig, SimulatedLLMService, load_encoder
from repro.experiments.scenario_bench import run_scenario_matrix
from repro.federated.online import OnlineAdaptationConfig, OnlineThresholdAdapter
from repro.llm.service import LLMServiceConfig
from repro.serving import (
    DriftPhase,
    FleetSimulator,
    ScenarioSpec,
    Trace,
    WorkloadConfig,
    WorkloadGenerator,
)


def make_simulator(encoder) -> FleetSimulator:
    """A fresh fleet: one MeanCache per user, one shared service."""
    return FleetSimulator(
        cache_factory=lambda user_id: MeanCache(
            encoder, MeanCacheConfig(similarity_threshold=0.78)
        ),
        service=SimulatedLLMService(LLMServiceConfig(seed=0)),
    )


# REPRO_SMOKE=1 shrinks the run so CI can execute every example quickly
# (unset or "0" means a full run).
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def main() -> None:
    # 1. Generate the fleet's traffic: 25 users, 20 queries each, 35% of
    #    queries re-asking (paraphrased) something the user asked before.
    generator = WorkloadGenerator(
        WorkloadConfig(
            n_users=8 if SMOKE else 25,
            queries_per_user=8 if SMOKE else 20,
            duplicate_rate=0.35,
            followup_rate=0.25,
        ),
        seed=0,
    )
    trace = generator.generate()
    print(
        f"trace: {len(trace)} arrivals from {trace.n_users} users over "
        f"{trace.duration_s:.0f} virtual seconds "
        f"({trace.duplicate_fraction:.0%} duplicate traffic)"
    )

    # 2. Replay it through the fleet (every device runs the same encoder).
    encoder = load_encoder("albert-sim")
    result = make_simulator(encoder).run(trace)
    print()
    print(result.format())

    # 3. Per-user view: the busiest cache beneficiaries.
    print()
    print("user        lookups  hits  hit rate  mean latency")
    print("-" * 52)
    top = sorted(result.per_user.items(), key=lambda kv: -kv[1].hits)[:5]
    for user_id, stats in top:
        print(
            f"{user_id:<12}{stats.lookups:>6}{stats.hits:>6}"
            f"{stats.hit_rate:>9.0%}{stats.mean_latency_s * 1000:>11.1f} ms"
        )

    # 4. Traffic replay: save the trace, reload it, run an identical fleet —
    #    with hash-derived latency jitter the results match exactly.
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "fleet_trace.json")
        replayed = make_simulator(encoder).run(Trace.load(path))
    print()
    print(
        "replay from saved trace: "
        f"hit rate {replayed.hit_rate:.3f} (identical: "
        f"{replayed.hit_rate == result.hit_rate and replayed.total_cost_usd == result.total_cost_usd})"
    )

    # 5. Online federated threshold adaptation on drifting traffic: halfway
    #    through, users switch to weak paraphrases over broader topic mixes
    #    and re-ask far more — the adapter mines labelled pairs from each
    #    device's own lookups and re-learns per-user τ in periodic rounds.
    drift_trace = WorkloadGenerator(
        WorkloadConfig(
            n_users=8 if SMOKE else 25,
            queries_per_user=16 if SMOKE else 60,
            duplicate_rate=0.35,
            domain_concentration=0.2,
            paraphrase_bias=0.9,
            drift_phases=(
                DriftPhase(
                    start_fraction=0.5,
                    duplicate_rate=0.6,
                    redraw_domain_mix=True,
                    domain_concentration=5.0,
                    paraphrase_bias=0.1,
                ),
            ),
            churn_fraction=0.1,
        ),
        seed=0,
    ).generate()
    adapter = OnlineThresholdAdapter(
        OnlineAdaptationConfig(
            round_interval_s=15.0,
            clients_per_round=8 if SMOKE else 12,
            min_observations=8,
            observation_ttl_s=120.0,
            beta=1.25,
            personalization=0.5,
            initial_threshold=0.78,
            seed=0,
        )
    )
    adaptive = FleetSimulator(
        cache_factory=lambda user_id: MeanCache(
            encoder, MeanCacheConfig(similarity_threshold=0.78)
        ),
        service=SimulatedLLMService(LLMServiceConfig(seed=0)),
        adaptation=adapter,
    ).run(drift_trace)
    print()
    print(
        f"online adaptation on drifting traffic: {len(adapter.history)} rounds, "
        f"global τ 0.780 -> {adapter.global_threshold:.3f}; "
        f"hit rate {adaptive.hit_rate:.3f} "
        f"(true {adaptive.true_hit_rate:.3f}, false {adaptive.false_hit_rate:.3f})"
    )
    taus = sorted(adapter.threshold_for(uid) for uid in adapter.user_ids)
    print(f"personalized device thresholds span [{taus[0]:.2f}, {taus[-1]:.2f}]")

    # 6. Scenario matrix: two declarative specs from the zoo — an attacker
    #    front-running victims' first asks on a *shared* cache, and a 10x
    #    flash-crowd arrival spike — run through one driver that reports the
    #    same metric table for every scenario.
    scenario_specs = [
        ScenarioSpec(
            name="demo_poisoning",
            family="poisoning",
            description="hard-negative front-running on a shared cache",
            n_users=6 if SMOKE else 10,
            queries_per_user=10 if SMOKE else 30,
            shared_cache=True,
            params={"target_fraction": 0.5, "lead_s": 5.0},
        ),
        ScenarioSpec(
            name="demo_flash_crowd",
            family="arrival",
            n_users=6 if SMOKE else 10,
            queries_per_user=10 if SMOKE else 30,
            params={
                "kind": "flash_crowd",
                "flash_at_s": 20.0,
                "flash_duration_s": 30.0,
                "flash_multiplier": 10.0,
            },
        ),
    ]
    matrix = run_scenario_matrix(scenario_specs, encoder=encoder)
    print()
    print(matrix.format())
    poisoning = matrix.get("demo_poisoning")
    print(
        f"poisoning: {poisoning.extras['poison_served']} poison hits served, "
        f"victim false-hit rate {poisoning.metrics.false_hit_rate:.3f} "
        f"vs {poisoning.baseline.false_hit_rate:.3f} unpoisoned"
    )
    flash = matrix.get("demo_flash_crowd")
    print(
        f"flash crowd: peak {flash.extras['peak_arrivals_per_s']} arrivals/s "
        f"vs {flash.extras['baseline_peak_arrivals_per_s']} stationary; "
        f"hit rate delta {flash.extras['hit_rate_delta']:+.3f} "
        "(re-timing leaves query content untouched)"
    )

    # 7. Threshold-aware early termination on the index hot path: with
    #    ``early_stop_margin`` set, every lookup passes
    #    ``stop_score = tau + margin`` down to the index, which probes cells
    #    best-first and stops scanning a query the moment a candidate clears
    #    the admission threshold with margin to spare — the fleet serves on
    #    a threshold, so candidates beyond the first admissible one never
    #    change the decision.  Admissions must match the exhaustive cache.
    def build_cache(margin):
        return MeanCache(
            encoder,
            MeanCacheConfig(
                similarity_threshold=0.78,
                max_entries=4096,
                index_backend="ivf+sq8",
                index_params={"min_train_size": 32, "nprobe": 4, "seed": 0},
                early_stop_margin=margin,
            ),
        )

    seed_queries = list(dict.fromkeys(event.query for event in trace))
    probes = seed_queries[::3]  # re-ask a sample of what the cache holds
    exhaustive_cache, early_cache = build_cache(None), build_cache(0.05)
    for cache in (exhaustive_cache, early_cache):
        cache.populate(seed_queries)
        cache.index.maintenance()  # compact layout between windows, as the fleet does
        cache.index.reset_scan_stats()
    exhaustive_decisions = [d.hit for d in exhaustive_cache.lookup_batch(probes)]
    early_decisions = [d.hit for d in early_cache.lookup_batch(probes)]
    full_scan = exhaustive_cache.index.scan_stats
    early_scan = early_cache.index.scan_stats
    print()
    print(
        f"tau-aware early termination over {len(probes)} re-asked queries "
        f"(ivf+sq8, tau=0.78, margin=0.05):\n"
        f"  decisions identical to exhaustive scan: "
        f"{early_decisions == exhaustive_decisions} "
        f"({sum(early_decisions)}/{len(probes)} hits)\n"
        f"  early stops: {early_scan['early_stops']}, rows scanned "
        f"{early_scan['rows_scanned']} vs {full_scan['rows_scanned']} exhaustive "
        f"({1 - early_scan['rows_scanned'] / max(full_scan['rows_scanned'], 1):.0%} saved)"
    )


if __name__ == "__main__":
    main()
