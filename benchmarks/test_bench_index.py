"""Benchmark: incremental index insert/lookup throughput vs the seed path.

The seed cache rebuilt its embedding matrix with ``np.vstack`` on every
insert and re-normalized the whole corpus on every lookup; ``repro.index``
replaces both with amortized-O(1) appends into a pre-normalized float32
matrix and a single matmul per (batched) search.  This benchmark times both
generations on synthetic embeddings and records the results in
``BENCH_index.json`` at the repo root so later PRs can track the perf
trajectory.

Run with ``pytest benchmarks/test_bench_index.py -s``.
"""

import json
from pathlib import Path

from conftest import emit

from repro.experiments.index_bench import run_index_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_index.json"

N_ENTRIES = 10_000
DIM = 64
N_QUERIES = 200
TOP_K = 5


def test_index_insert_and_lookup_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_index_bench(
            n_entries=N_ENTRIES, dim=DIM, n_queries=N_QUERIES, top_k=TOP_K, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("Index microbenchmark", result.format())

    BENCH_JSON.write_text(json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8")
    emit("BENCH_index.json", f"written to {BENCH_JSON}")

    # Acceptance floor: at 10k entries the incremental index must enrol at
    # least 5x faster than the seed's per-insert np.vstack rebuild.  (In
    # practice the gap is orders of magnitude — the seed path is O(n^2).)
    assert result.insert_speedup >= 5.0, result.to_dict()
    # Lookups must not regress: pre-normalized storage skips the per-call
    # corpus pass, so per-query search should be at least as fast.
    assert result.lookup_speedup >= 1.0, result.to_dict()
    # The single-call batched search must also beat the seed per-query loop.
    # (It is not asserted against the per-query *index* loop: at this corpus
    # size both are dominated by the same matmul and differ only by noise.)
    assert result.batch_speedup >= 1.0, result.to_dict()
