"""Benchmark: index throughput vs the seed path + the ANN backend sweep.

Two index benchmarks are recorded into ``BENCH_index.json`` at the repo root
(field reference in ``docs/benchmarks.md``) so later PRs can track the perf
trajectory:

* ``microbench`` — the incremental :class:`repro.index.FlatIndex` against
  the seed cache's hot path (per-insert ``np.vstack`` rebuild, per-lookup
  corpus re-normalization);
* ``backends`` — recall@k vs lookup throughput vs bytes-per-entry of the
  approximate and quantized backends (IVF inverted lists, multi-probe LSH,
  int8 scalar quantization, product quantization, IVF-routed SQ8) against
  exact flat search at 10k and 100k entries on the standard clustered
  paraphrase workload;
* ``latency`` — single-query p50/p95/p99 of the quantized backends' fused
  scans against their decode-to-float reference path on the same index
  state, at 10^5 and 10^6 entries, with same-run relative regression gates
  (methodology in ``docs/benchmarks.md``);
* ``persistence`` — snapshot restore wall-time (full-copy vs mmap
  zero-copy) and bytes-per-entry at 10^6 entries, delta-append cost vs
  snapshot size, and the tiered fleet's bytes-vs-hit-rate trade against an
  all-exact fleet.

Run with ``pytest benchmarks/test_bench_index.py -s``.  Set
``REPRO_BENCH_SCALE`` (e.g. ``0.1`` in CI) to shrink the latency corpus
sizes proportionally; the gates adapt to the scaled sizes.
"""

import json
import os
from pathlib import Path

from conftest import emit

from repro.experiments.index_bench import (
    run_backend_sweep,
    run_index_bench,
    run_latency_bench,
)
from repro.experiments.persistence_bench import (
    format_persistence_report,
    run_delta_bench,
    run_restore_bench,
    run_tiered_fleet_bench,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_index.json"

N_ENTRIES = 10_000
DIM = 64
N_QUERIES = 200
TOP_K = 5

SWEEP_SIZES = (10_000, 100_000)
APPROX_BACKENDS = ("ivf", "lsh")
QUANTIZED_BACKENDS = ("sq8", "pq")
ROUTED_QUANTIZED_BACKENDS = ("ivf+sq8",)
MIN_RECALL = 0.9
MIN_BATCH_SPEEDUP_AT_100K = 10.0
# Quantized floors (ISSUE 4 acceptance): at 100k entries the memory-tier
# backends must keep >= 90% of the exact top-k while storing at most 0.30x
# of flat's bytes-per-entry (rows + routing + codec all counted).
MAX_QUANTIZED_BYTES_RATIO_AT_100K = 0.30
# The routed composition trades some of the memory win (inverted lists,
# row map) for sublinear scans; it must still beat flat's batched path.
MIN_ROUTED_QUANTIZED_BATCH_SPEEDUP_AT_100K = 2.0

# ---------------------------------------------------------------------- #
# Single-query latency gates (ISSUE 7): relative, same-run, per backend.
# ---------------------------------------------------------------------- #
# REPRO_BENCH_SCALE shrinks the latency corpus sizes for constrained
# runners (CI uses 0.1 -> 10k/100k); sizes are clamped so the workload
# stays meaningful and duplicates collapse.
LATENCY_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
LATENCY_BASE_SIZES = (100_000, 1_000_000)
LATENCY_SIZES = tuple(
    dict.fromkeys(max(5_000, int(s * LATENCY_BENCH_SCALE)) for s in LATENCY_BASE_SIZES)
)
LATENCY_QUERIES = 100
LATENCY_REPEATS = 2
LATENCY_WARMUP = 10


def _latency_p99_floors(n_entries):
    """Minimum reference/fused p99 ratio per backend at the gated size.

    The flat-scan backends (sq8, pq) score every row, so a single query
    measures in the tens/hundreds of milliseconds at 10^6 entries and the
    5x fused-scan floor is noise-immune.  The routed composition's fused
    queries land near a millisecond, where single-core scheduler bursts
    can inflate an individual p99 sample several-fold even under the
    best-of-``repeats`` protocol; its floor keeps headroom for that (the
    typical measured ratio at 10^6 is ~5x — see BENCH_index.json).  Below
    ~10^6 the routed backend's fixed routing cost dominates both paths and
    the fused scan has structurally less to win, hence the size tiers.
    """
    if n_entries >= 500_000:
        return {"sq8": 5.0, "pq": 5.0, "ivf+sq8": 3.0}
    if n_entries >= 50_000:
        return {"sq8": 4.0, "pq": 4.0, "ivf+sq8": 1.5}
    return {"sq8": 3.0, "pq": 3.0, "ivf+sq8": 1.1}


# ---------------------------------------------------------------------- #
# Persistence gates (ISSUE 9): crash-safe snapshots + mmap warm starts.
# ---------------------------------------------------------------------- #
# REPRO_BENCH_SCALE shrinks the snapshot sizes like the latency corpus;
# the mmap-restore floor adapts because the fixed manifest/entry-map cost
# has not amortized away at small snapshot sizes.
PERSISTENCE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESTORE_ENTRIES = max(50_000, int(1_000_000 * PERSISTENCE_SCALE))
DELTA_SMALL_ENTRIES = 10_000
DELTA_LARGE_ENTRIES = RESTORE_ENTRIES
# At 10^6 entries a full-copy restore reads + copies 256MB of float32 rows
# while the mmap path maps them and defers the id->row table: >=20x.  Below
# ~500k the fixed per-load costs (manifest parse, file opens) are a larger
# share of both paths, so the floor relaxes to 5x.
MIN_MMAP_SPEEDUP = 20.0 if RESTORE_ENTRIES >= 500_000 else 5.0
# Appending a 1k-row delta must cost a small fraction of rewriting the
# large snapshot, and must not scale with the snapshot being appended to.
MIN_DELTA_SPEEDUP_VS_FULL_SAVE = 10.0
MAX_DELTA_SIZE_SENSITIVITY = 10.0
# Fleet memory hierarchy: tiered fleet stores at most half the bytes per
# entry of the all-exact fleet while staying within 2pp of its hit rate.
MAX_TIERED_BYTES_RATIO = 0.5
MAX_TIERED_HIT_RATE_GAP = 0.02


def _write_payload(update):
    """Merge one benchmark's section into BENCH_index.json."""
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    if "microbench" not in payload and "n_entries" in payload:
        # Pre-sweep layout: the microbench dict was the whole file.
        payload = {"microbench": payload}
    payload.update(update)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_index_insert_and_lookup_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_index_bench(
            n_entries=N_ENTRIES, dim=DIM, n_queries=N_QUERIES, top_k=TOP_K, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("Index microbenchmark", result.format())

    _write_payload({"microbench": result.to_dict()})
    emit("BENCH_index.json", f"microbench section written to {BENCH_JSON}")

    # Acceptance floor: at 10k entries the incremental index must enrol at
    # least 5x faster than the seed's per-insert np.vstack rebuild.  (In
    # practice the gap is orders of magnitude — the seed path is O(n^2).)
    assert result.insert_speedup >= 5.0, result.to_dict()
    # Lookups must not regress: pre-normalized storage skips the per-call
    # corpus pass, so per-query search should be at least as fast.
    assert result.lookup_speedup >= 1.0, result.to_dict()
    # The single-call batched search must also beat the seed per-query loop.
    # (It is not asserted against the per-query *index* loop: at this corpus
    # size both are dominated by the same matmul and differ only by noise.)
    assert result.batch_speedup >= 1.0, result.to_dict()


def test_backend_recall_throughput_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_backend_sweep(
            sizes=SWEEP_SIZES, dim=DIM, n_queries=N_QUERIES, top_k=TOP_K, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("ANN backend sweep", result.format())

    _write_payload({"backends": result.to_dict()})
    emit("BENCH_index.json", f"backends section written to {BENCH_JSON}")

    for backend in APPROX_BACKENDS:
        for n_entries in SWEEP_SIZES:
            point = result.point(backend, n_entries)
            # Approximate search must keep at least 90% of the exact top-k
            # on the standard paraphrase workload at every size.
            assert point.recall_at_k >= MIN_RECALL, point.to_dict()
        # At 100k entries sublinear probing must buy an order of magnitude
        # of lookup throughput on the batched (fleet/serving) path.
        at_100k = result.point(backend, 100_000)
        assert at_100k.batch_speedup_vs_flat >= MIN_BATCH_SPEEDUP_AT_100K, (
            at_100k.to_dict()
        )

    for backend in QUANTIZED_BACKENDS + ROUTED_QUANTIZED_BACKENDS:
        for n_entries in SWEEP_SIZES:
            point = result.point(backend, n_entries)
            # Quantized scoring must stay inside the recall band the caches
            # operate in at every size.
            assert point.recall_at_k >= MIN_RECALL, point.to_dict()
    for backend in QUANTIZED_BACKENDS:
        # The memory floor is pinned at 100k, where fixed codec tables have
        # amortized away (at 10k a PQ codebook alone is ~6 bytes/entry).
        at_100k = result.point(backend, 100_000)
        assert (
            at_100k.bytes_per_entry_vs_flat <= MAX_QUANTIZED_BYTES_RATIO_AT_100K
        ), at_100k.to_dict()
    for backend in ROUTED_QUANTIZED_BACKENDS:
        # Routing over quantized rows must also buy back lookup throughput.
        at_100k = result.point(backend, 100_000)
        assert (
            at_100k.batch_speedup_vs_flat
            >= MIN_ROUTED_QUANTIZED_BATCH_SPEEDUP_AT_100K
        ), at_100k.to_dict()


def test_single_query_latency_gates(benchmark):
    result = benchmark.pedantic(
        lambda: run_latency_bench(
            sizes=LATENCY_SIZES,
            dim=DIM,
            n_queries=LATENCY_QUERIES,
            top_k=TOP_K,
            repeats=LATENCY_REPEATS,
            warmup=LATENCY_WARMUP,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Single-query latency", result.format())

    _write_payload({"latency": result.to_dict()})
    emit("BENCH_index.json", f"latency section written to {BENCH_JSON}")

    # Gates are *relative* (fused vs reference, same run, same index state):
    # absolute latency depends on the runner, but the fused scans' advantage
    # over the materializing reference path does not.  They apply at the
    # largest measured size, where the scan dominates per-query cost.
    largest = max(LATENCY_SIZES)
    for backend, floor in _latency_p99_floors(largest).items():
        p99_ratio = result.ratio(backend, largest, "p99_ms")
        p50_ratio = result.ratio(backend, largest, "p50_ms")
        context = {
            "backend": backend,
            "n_entries": largest,
            "p99_ratio": p99_ratio,
            "p50_ratio": p50_ratio,
            "floor": floor,
            "fused": result.point(backend, largest, "fused").to_dict(),
            "reference": result.point(backend, largest, "reference").to_dict(),
        }
        assert p99_ratio >= floor, context
        # The median must move too — a tail-only win would be noise.
        assert p50_ratio >= min(floor, 2.0), context
    # Fused scans must not cost recall: identical decision invariance is
    # pinned by tests/test_index_properties.py; here we only sanity-check
    # that the fused path produced real histograms at every size.
    for size in LATENCY_SIZES:
        for backend in QUANTIZED_BACKENDS + ROUTED_QUANTIZED_BACKENDS:
            assert result.point(backend, size, "fused").count == LATENCY_QUERIES


def test_persistence_gates(benchmark):
    def run():
        restore = run_restore_bench(n_entries=RESTORE_ENTRIES, dim=DIM, seed=7)
        delta = run_delta_bench(
            small_entries=DELTA_SMALL_ENTRIES,
            large_entries=DELTA_LARGE_ENTRIES,
            delta_rows=1_000,
            dim=DIM,
            seed=11,
        )
        tiered = run_tiered_fleet_bench(seed=13)
        return restore, delta, tiered

    restore, delta, tiered = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Persistence benchmark", format_persistence_report(restore, delta, tiered))

    _write_payload(
        {
            "persistence": {
                "restore": restore.to_dict(),
                "delta": delta.to_dict(),
                "tiered_fleet": tiered.to_dict(),
            }
        }
    )
    emit("BENCH_index.json", f"persistence section written to {BENCH_JSON}")

    # Warm-start floor: the mmap restore adopts the stored row matrix and
    # defers the id->row table, so restore time is O(1) in entries while
    # the full-copy path reads + copies the whole matrix.
    assert restore.mmap_speedup >= MIN_MMAP_SPEEDUP, restore.to_dict()
    # Delta floor: appending 1k rows costs a small fraction of rewriting
    # the snapshot, and does not grow with the snapshot being appended to.
    assert (
        delta.append_speedup_vs_full_save >= MIN_DELTA_SPEEDUP_VS_FULL_SAVE
    ), delta.to_dict()
    assert delta.size_sensitivity <= MAX_DELTA_SIZE_SENSITIVITY, delta.to_dict()
    # Memory-hierarchy floor: the tiered fleet halves stored bytes per
    # entry without giving up hit rate on duplicate-heavy fleet traffic.
    assert tiered.bytes_ratio <= MAX_TIERED_BYTES_RATIO, tiered.to_dict()
    assert tiered.hit_rate_gap <= MAX_TIERED_HIT_RATE_GAP, tiered.to_dict()
