"""Benchmark: index throughput vs the seed path + the ANN backend sweep.

Two index benchmarks are recorded into ``BENCH_index.json`` at the repo root
(field reference in ``docs/benchmarks.md``) so later PRs can track the perf
trajectory:

* ``microbench`` — the incremental :class:`repro.index.FlatIndex` against
  the seed cache's hot path (per-insert ``np.vstack`` rebuild, per-lookup
  corpus re-normalization);
* ``backends`` — recall@k vs lookup throughput vs bytes-per-entry of the
  approximate and quantized backends (IVF inverted lists, multi-probe LSH,
  int8 scalar quantization, product quantization, IVF-routed SQ8) against
  exact flat search at 10k and 100k entries on the standard clustered
  paraphrase workload.

Run with ``pytest benchmarks/test_bench_index.py -s``.
"""

import json
from pathlib import Path

from conftest import emit

from repro.experiments.index_bench import run_backend_sweep, run_index_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_index.json"

N_ENTRIES = 10_000
DIM = 64
N_QUERIES = 200
TOP_K = 5

SWEEP_SIZES = (10_000, 100_000)
APPROX_BACKENDS = ("ivf", "lsh")
QUANTIZED_BACKENDS = ("sq8", "pq")
ROUTED_QUANTIZED_BACKENDS = ("ivf+sq8",)
MIN_RECALL = 0.9
MIN_BATCH_SPEEDUP_AT_100K = 10.0
# Quantized floors (ISSUE 4 acceptance): at 100k entries the memory-tier
# backends must keep >= 90% of the exact top-k while storing at most 0.30x
# of flat's bytes-per-entry (rows + routing + codec all counted).
MAX_QUANTIZED_BYTES_RATIO_AT_100K = 0.30
# The routed composition trades some of the memory win (inverted lists,
# row map) for sublinear scans; it must still beat flat's batched path.
MIN_ROUTED_QUANTIZED_BATCH_SPEEDUP_AT_100K = 2.0


def _write_payload(update):
    """Merge one benchmark's section into BENCH_index.json."""
    payload = {}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    if "microbench" not in payload and "n_entries" in payload:
        # Pre-sweep layout: the microbench dict was the whole file.
        payload = {"microbench": payload}
    payload.update(update)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_index_insert_and_lookup_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_index_bench(
            n_entries=N_ENTRIES, dim=DIM, n_queries=N_QUERIES, top_k=TOP_K, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("Index microbenchmark", result.format())

    _write_payload({"microbench": result.to_dict()})
    emit("BENCH_index.json", f"microbench section written to {BENCH_JSON}")

    # Acceptance floor: at 10k entries the incremental index must enrol at
    # least 5x faster than the seed's per-insert np.vstack rebuild.  (In
    # practice the gap is orders of magnitude — the seed path is O(n^2).)
    assert result.insert_speedup >= 5.0, result.to_dict()
    # Lookups must not regress: pre-normalized storage skips the per-call
    # corpus pass, so per-query search should be at least as fast.
    assert result.lookup_speedup >= 1.0, result.to_dict()
    # The single-call batched search must also beat the seed per-query loop.
    # (It is not asserted against the per-query *index* loop: at this corpus
    # size both are dominated by the same matmul and differ only by noise.)
    assert result.batch_speedup >= 1.0, result.to_dict()


def test_backend_recall_throughput_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_backend_sweep(
            sizes=SWEEP_SIZES, dim=DIM, n_queries=N_QUERIES, top_k=TOP_K, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("ANN backend sweep", result.format())

    _write_payload({"backends": result.to_dict()})
    emit("BENCH_index.json", f"backends section written to {BENCH_JSON}")

    for backend in APPROX_BACKENDS:
        for n_entries in SWEEP_SIZES:
            point = result.point(backend, n_entries)
            # Approximate search must keep at least 90% of the exact top-k
            # on the standard paraphrase workload at every size.
            assert point.recall_at_k >= MIN_RECALL, point.to_dict()
        # At 100k entries sublinear probing must buy an order of magnitude
        # of lookup throughput on the batched (fleet/serving) path.
        at_100k = result.point(backend, 100_000)
        assert at_100k.batch_speedup_vs_flat >= MIN_BATCH_SPEEDUP_AT_100K, (
            at_100k.to_dict()
        )

    for backend in QUANTIZED_BACKENDS + ROUTED_QUANTIZED_BACKENDS:
        for n_entries in SWEEP_SIZES:
            point = result.point(backend, n_entries)
            # Quantized scoring must stay inside the recall band the caches
            # operate in at every size.
            assert point.recall_at_k >= MIN_RECALL, point.to_dict()
    for backend in QUANTIZED_BACKENDS:
        # The memory floor is pinned at 100k, where fixed codec tables have
        # amortized away (at 10k a PQ codebook alone is ~6 bytes/entry).
        at_100k = result.point(backend, 100_000)
        assert (
            at_100k.bytes_per_entry_vs_flat <= MAX_QUANTIZED_BYTES_RATIO_AT_100K
        ), at_100k.to_dict()
    for backend in ROUTED_QUANTIZED_BACKENDS:
        # Routing over quantized rows must also buy back lookup throughput.
        at_100k = result.point(backend, 100_000)
        assert (
            at_100k.batch_speedup_vs_flat
            >= MIN_ROUTED_QUANTIZED_BATCH_SPEEDUP_AT_100K
        ), at_100k.to_dict()
