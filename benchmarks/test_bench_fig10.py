"""Benchmark: Figure 10 — embedding compression (storage, search time, F-score).

Sweeps the number of cached queries and compares GPTCache, MeanCache and the
PCA-compressed MeanCache variants (768 → 64 dimensions).
"""

from conftest import emit

from repro.experiments.fig10_compression import run_fig10


def test_fig10_compression(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_fig10(bench_scale, seed=0, bundle=bundle, include_albert=True),
        rounds=1,
        iterations=1,
    )
    emit("Figure 10 (compression)", result.format())

    # Paper shape: compression removes most embedding storage (83% in the
    # paper; more here because our uncompressed dim is the same but contexts
    # are also compressed) and does not slow the search down.
    assert result.storage_saving() > 0.6
    assert result.search_speedup() > -0.1

    # Compressed MeanCache must still beat GPTCache on F-score at every
    # cache size (Figure 10c).
    gpt = result.series("GPTCache")["f_score"]
    comp = result.series("MeanCache-Compressed (MPNet)")["f_score"]
    assert (comp >= gpt).all()

    # F-score of the compressed variant stays close to the uncompressed one.
    full = result.series("MeanCache (MPNet)")["f_score"]
    assert (full - comp).max() < 0.25
