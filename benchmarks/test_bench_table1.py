"""Benchmark: Table I (standalone queries) and Figure 7 confusion matrices.

Regenerates the end-to-end comparison of GPTCache (fixed 0.7 threshold,
pretrained ALBERT-class encoder) against MeanCache (FL-fine-tuned encoders,
learned thresholds) on a cache workload with 30% duplicate probes, and prints
the same metric rows and confusion matrices the paper reports.
"""

from conftest import emit

from repro.experiments.table1 import run_table1


def test_table1_standalone(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table1(bench_scale, seed=0, bundle=bundle, include_albert=True),
        rounds=1,
        iterations=1,
    )
    emit("Table I (standalone) + Figure 7", result.format())

    gpt = result.systems["GPTCache"].metrics
    mpnet = result.systems["MeanCache (MPNet)"].metrics
    # Paper shape: MeanCache wins on F-score and precision; GPTCache produces
    # far more false hits; GPTCache recall stays high.
    assert mpnet["f_score"] > gpt["f_score"]
    assert mpnet["precision"] > gpt["precision"]
    assert result.systems["MeanCache (MPNet)"].matrix.fp < result.systems["GPTCache"].matrix.fp
    assert gpt["recall"] > 0.6
