"""Benchmark: fleet serving throughput at 100 and 1,000 simulated users.

Replays deterministic multi-user traffic (``repro.serving.WorkloadGenerator``)
through ``FleetSimulator`` — a local MeanCache per user in front of one
shared simulated LLM service — and records fleet lookup throughput, hit rate,
latency and cost in ``BENCH_fleet.json`` at the repo root so later scaling
PRs can track the trajectory.

Run with ``pytest benchmarks/test_bench_fleet.py -s``.
"""

import json
from pathlib import Path

from conftest import emit

from repro.experiments.fleet_bench import run_fleet_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

USER_COUNTS = (100, 1000)
QUERIES_PER_USER = 10


def test_fleet_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_fleet_bench(
            user_counts=USER_COUNTS, queries_per_user=QUERIES_PER_USER, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("Fleet serving benchmark", result.format())

    BENCH_JSON.write_text(json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8")
    emit("BENCH_fleet.json", f"written to {BENCH_JSON}")

    for n_users in USER_COUNTS:
        point = result.point(n_users)
        assert point.n_lookups == n_users * QUERIES_PER_USER
        # Sanity floors, not perf assertions: the fleet must actually serve
        # traffic (some of it from cache) at a non-degenerate rate.
        assert point.throughput_lookups_per_s > 10.0, point.to_dict()
        assert 0.0 < point.hit_rate < 1.0, point.to_dict()
        assert point.total_cost_usd > 0.0, point.to_dict()
