"""Benchmarks: fleet serving throughput and online τ adaptation.

``test_fleet_throughput`` replays deterministic multi-user traffic
(``repro.serving.WorkloadGenerator``) through ``FleetSimulator`` — a local
MeanCache per user in front of one shared simulated LLM service — and records
fleet lookup throughput, hit rate, latency and cost in ``BENCH_fleet.json``
at the repo root so later scaling PRs can track the trajectory.

``test_drift_adaptation`` (slower; CI runs it as its own benchmarks-job step
via ``-k drift``) replays one drifting trace through a static-τ and an
adaptive-τ fleet and merges the comparison into the same JSON under
``adaptive_vs_static``, asserting the adaptation floors: more verified
correct answers, fewer false hits, raw hit rate within noise of static.

Run with ``pytest benchmarks/test_bench_fleet.py -s``.
"""

import json
from pathlib import Path

from conftest import emit

from repro.experiments.fleet_bench import run_drift_adaptation_bench, run_fleet_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

USER_COUNTS = (100, 1000)
QUERIES_PER_USER = 10


def _merge_into_bench_json(key, payload):
    """Upsert one section of BENCH_fleet.json, preserving the others."""
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def test_fleet_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_fleet_bench(
            user_counts=USER_COUNTS, queries_per_user=QUERIES_PER_USER, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    emit("Fleet serving benchmark", result.format())

    payload = result.to_dict()
    if BENCH_JSON.exists():
        previous = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        if "adaptive_vs_static" in previous:
            payload["adaptive_vs_static"] = previous["adaptive_vs_static"]
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    emit("BENCH_fleet.json", f"written to {BENCH_JSON}")

    for n_users in USER_COUNTS:
        point = result.point(n_users)
        assert point.n_lookups == n_users * QUERIES_PER_USER
        # Sanity floors, not perf assertions: the fleet must actually serve
        # traffic (some of it from cache) at a non-degenerate rate.
        assert point.throughput_lookups_per_s > 10.0, point.to_dict()
        assert 0.0 < point.hit_rate < 1.0, point.to_dict()
        assert point.total_cost_usd > 0.0, point.to_dict()


def test_drift_adaptation(benchmark):
    result = benchmark.pedantic(
        lambda: run_drift_adaptation_bench(seed=0),
        rounds=1,
        iterations=1,
    )
    emit("Drift adaptation benchmark", result.format())

    _merge_into_bench_json("adaptive_vs_static", result.to_dict())
    emit("BENCH_fleet.json", f"adaptive_vs_static merged into {BENCH_JSON}")

    static, adaptive = result.static, result.adaptive
    assert static.n_lookups == adaptive.n_lookups > 0
    # Both fleets must actually serve traffic at a non-degenerate rate.
    assert static.throughput_lookups_per_s > 10.0, static.to_dict()
    assert adaptive.throughput_lookups_per_s > 10.0, adaptive.to_dict()
    # The loop must actually run rounds and move τ off the cold-start value.
    assert result.n_rounds > 10
    assert result.threshold_trajectory, "no τ trajectory recorded"
    assert any(abs(t - result.static_threshold) > 0.02 for t in result.threshold_trajectory)
    # Adaptation floors (margins are half the worst case observed over
    # seeds 0/3/7/11, so a real regression trips them, noise does not):
    # the adaptive fleet serves strictly more verified-correct answers...
    assert adaptive.true_hit_rate >= static.true_hit_rate + 0.002, result.to_dict()
    # ...at a strictly lower false-hit rate...
    assert adaptive.false_hit_rate <= static.false_hit_rate - 0.003, result.to_dict()
    # ...without giving up raw admissions beyond noise (raw hit rate counts
    # wrongly-served answers as wins, so a small dip is the false hits it
    # stopped serving).
    assert adaptive.hit_rate >= static.hit_rate - 0.025, result.to_dict()
