"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure and prints the same
rows/series the paper reports.  The experiment scale is controlled by the
``REPRO_SCALE`` environment variable:

* ``quick`` (default) — reduced workload sizes and FL rounds so the whole
  harness completes in a few minutes;
* ``paper`` — the paper's sizes (1000-query workloads, 20 clients, 50 FL
  rounds); expect a substantially longer run.

The FL training (system bundle) is built once per session and shared by every
benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import cached_system_bundle, resolve_scale

DEFAULT_BENCH_SCALE = os.environ.get("REPRO_SCALE", "quick")


@pytest.fixture(scope="session")
def bench_scale():
    """The resolved experiment scale used across the benchmark session."""
    return resolve_scale(DEFAULT_BENCH_SCALE)


@pytest.fixture(scope="session")
def bundle(bench_scale):
    """FL-trained encoders + datasets shared by all benchmarks."""
    return cached_system_bundle(bench_scale, seed=0, train_albert=True)


def emit(title: str, body: str) -> None:
    """Print a benchmark's regenerated table/series to the captured output."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
