"""Benchmark: the scenario-matrix evaluation harness with per-family floors.

``test_scenario_matrix`` runs every registered scenario spec (the default
zoo: adversarial poisoning, near-miss τ flooding, diurnal/flash-crowd
arrivals, mixed-domain cohorts, multi-tenant mixes, external log replay)
through :func:`repro.experiments.scenario_bench.run_scenario_matrix` with
the albert-sim encoder, writes the full matrix to ``BENCH_scenarios.json``
at the repo root, and asserts one or more CI floors **per scenario family**:

* poisoning — the attack must land (poison entries actually served, a
  positive false-hit delta on victims) yet stay bounded, and victims'
  verified-correct service must not collapse;
* flooding — the federated τ may never cross ``min_threshold`` (the clamp
  invariant, global and per-device), the attack must measurably drag τ
  versus the clean run, and honest users' false-hit inflation stays small;
* arrival — re-timing is content-preserving, so hit rates must match the
  stationary baseline almost exactly while the peak arrival rate actually
  spikes;
* mixed_domain — every cohort gets non-degenerate service and cross-domain
  contamination stays low;
* multi_tenant — the ISSUE floor: at provisioned capacity the noisy tenant
  may cost the quiet tenant at most 0.03 hit rate versus running alone
  (same seed), and even capacity-starved the degradation stays bounded;
* replay — imported logs must replay deterministically and match the
  direct run exactly.

CI runs this as its own benchmarks-job step via ``-k scenario``.
Run locally with ``pytest benchmarks/test_bench_scenarios.py -s``.
"""

import json
from pathlib import Path

from conftest import emit

from repro.experiments.scenario_bench import run_scenario_matrix

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def test_scenario_matrix(benchmark):
    matrix = benchmark.pedantic(run_scenario_matrix, rounds=1, iterations=1)
    emit("Scenario-matrix evaluation", matrix.format())

    payload = matrix.to_dict()
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    emit("BENCH_scenarios.json", f"written to {BENCH_JSON}")

    # The zoo must cover at least 5 distinct families, each with metrics.
    assert len(matrix.families) >= 5, matrix.families
    for result in matrix.results:
        assert result.metrics.n_events > 0, result.name
        assert 0.0 <= result.metrics.hit_rate <= 1.0, result.name
        assert result.metrics.total_cost_usd > 0.0, result.name

    # ---------------- poisoning ---------------- #
    poisoning = matrix.get("cache_poisoning")
    assert poisoning.extras["poison_served"] >= 1, poisoning.extras
    delta = poisoning.extras["false_hit_delta"]
    # The attack must be real but bounded: extra victim false hits in
    # (0, 0.2] versus the unpoisoned run of the same honest traffic.
    assert 0.0 < delta <= 0.2, poisoning.extras
    assert (
        poisoning.metrics.true_hit_rate
        >= poisoning.baseline.true_hit_rate - 0.05
    ), (poisoning.metrics, poisoning.baseline)

    # ---------------- flooding ---------------- #
    flooding = matrix.get("near_miss_flooding")
    floor = flooding.extras["tau_floor"]
    # Clamp invariant: no aggregated τ — global trajectory or any served
    # per-device value — ever crosses the configured floor.
    assert flooding.extras["min_global_tau"] >= floor - 1e-9, flooding.extras
    assert flooding.extras["min_served_tau"] >= floor - 1e-9, flooding.extras
    assert flooding.extras["n_rounds"] > 0, flooding.extras
    # The attack must actually drag τ versus the clean run of the same
    # honest traffic — otherwise the scenario is not exercising anything.
    assert (
        flooding.extras["final_global_tau"]
        < flooding.extras["baseline_final_tau"]
    ), flooding.extras
    # ... while honest users' false-hit inflation stays small thanks to
    # the clamp.
    assert flooding.extras["false_hit_delta"] <= 0.08, flooding.extras

    # ---------------- arrival ---------------- #
    for name in ("diurnal_cycle", "flash_crowd"):
        arrival = matrix.get(name)
        # Schedules re-time arrivals without touching query content, so the
        # hit rate must track the stationary baseline almost exactly.
        assert abs(arrival.extras["hit_rate_delta"]) <= 0.02, (name, arrival.extras)
        assert (
            arrival.metrics.n_events == arrival.baseline.n_events
        ), (name, arrival.metrics, arrival.baseline)
    flash = matrix.get("flash_crowd")
    # The flash window must concentrate real load: peak arrivals at least
    # 3x the stationary peak, total duration compressed.
    assert (
        flash.extras["peak_arrivals_per_s"]
        >= 3 * flash.extras["baseline_peak_arrivals_per_s"]
    ), flash.extras
    assert flash.extras["duration_s"] < flash.extras["baseline_duration_s"], (
        flash.extras
    )

    # ---------------- mixed_domain ---------------- #
    mixed = matrix.get("mixed_domain_cohorts")
    assert mixed.extras["min_cohort_hit_rate"] >= 0.05, mixed.extras
    assert mixed.extras["max_cohort_false_hit_rate"] <= 0.10, mixed.extras

    # ---------------- multi_tenant ---------------- #
    isolation = matrix.get("multi_tenant_isolation")
    # The ISSUE floor: at provisioned capacity, the noisy tenant reduces
    # the quiet tenant's hit rate by at most 0.03 versus running alone.
    assert isolation.extras["isolation_gap"] <= 0.03, isolation.extras
    assert isolation.extras["noisy_traffic_share"] >= 0.3, isolation.extras
    stressed = matrix.get("multi_tenant_stressed")
    # Capacity-starved, degradation is expected but must stay graceful.
    assert stressed.extras["isolation_gap"] <= 0.15, stressed.extras
    assert stressed.metrics.hit_rate > 0.0, stressed.metrics

    # ---------------- replay ---------------- #
    replay = matrix.get("external_trace_replay")
    assert replay.extras["replay_deterministic"], replay.extras
    assert replay.extras["hit_rate_matches_direct"], replay.extras
    assert replay.extras["cost_matches_direct"], replay.extras
