"""Benchmark: Figure 4 — prevalence of duplicate queries per participant."""

from conftest import emit

from repro.experiments.fig04_userstudy import run_fig04


def test_fig04_user_study(benchmark):
    result = benchmark.pedantic(lambda: run_fig04(), rounds=1, iterations=1)
    emit("Figure 4 (user study)", result.format())

    assert len(result.totals) == 20
    # Paper: ~31% of queries repeat an earlier query, on average.
    assert 0.28 <= result.mean_rate <= 0.34
    assert (result.duplicates <= result.totals).all()
