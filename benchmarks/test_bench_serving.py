"""Benchmark: live serving tier under threaded wall-clock load.

Drives ``repro.experiments.serving_bench`` — real client threads replaying a
10^4-user trace through a started :class:`~repro.serving.server.CacheServer`
— and records throughput, p50/p99 end-to-end latency, queue-depth/batch-size
distributions and shed rate in ``BENCH_serving.json`` at the repo root.

CI floors (relative, same-host — methodology in docs/benchmarks.md):

* cross-user micro-batching must beat batch-size-1 throughput on identical
  traffic (the amortization headline; both modes run seconds apart on the
  same host, so the ratio is robust to absolute host speed);
* nothing is shed at the benchmark's queue bound, every request completes;
* the batcher really coalesces (mean flush size well above 1) and the
  latency histogram is sane (p50 ≤ p99, both positive).

``REPRO_BENCH_SCALE`` (e.g. ``0.1`` in CI) shrinks the fleet for constrained
runners; the floors are scale-independent ratios.

Run with ``pytest benchmarks/test_bench_serving.py -s``.
"""

import json
import os
from pathlib import Path

from conftest import emit

from repro.experiments.serving_bench import run_serving_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SERVING_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
N_USERS = max(200, int(10_000 * SERVING_BENCH_SCALE))
QUERIES_PER_USER = 2
N_CLIENT_THREADS = 16


def test_serving_throughput_and_latency():
    from repro.embeddings.zoo import load_encoder

    result = run_serving_bench(
        n_users=N_USERS,
        queries_per_user=QUERIES_PER_USER,
        n_client_threads=N_CLIENT_THREADS,
        encoder=load_encoder("albert-sim"),
        seed=0,
    )
    emit("Wall-clock serving benchmark", result.format())
    BENCH_JSON.write_text(
        json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8"
    )
    emit("BENCH_serving.json", f"written to {BENCH_JSON}")

    batched, unbatched = result.batched, result.unbatched
    # Every offered request completed; the bench queue bound sheds nothing.
    for point in (batched, unbatched):
        assert point.n_requests == N_USERS * QUERIES_PER_USER
        assert point.shed == 0 and point.shed_rate == 0.0
        assert 0.0 < point.e2e_p50_ms <= point.e2e_p99_ms
        assert point.throughput_rps > 0
    # The micro-batcher really coalesces cross-user traffic...
    assert batched.mean_batch_size > 1.5
    assert unbatched.mean_batch_size == 1.0
    # ...and coalescing pays: same traffic, same caches, same host, measured
    # seconds apart — batched throughput must beat batch-size-1.
    assert result.batching_speedup > 1.05, (
        f"batching speedup {result.batching_speedup:.2f}x "
        f"({batched.throughput_rps:.0f} vs {unbatched.throughput_rps:.0f} rps)"
    )
    # Batching changes grouping, not decisions: hit rates agree.
    assert abs(batched.hit_rate - unbatched.hit_rate) < 0.01
