"""Benchmark: Table I (contextual queries) and Figures 8/9.

Regenerates the contextual-query experiment: a cache populated with standalone
queries and their follow-ups (with context chains), probed with duplicate
standalone, duplicate contextual and context-trap queries.  MeanCache's
context-chain verification must cut false hits dramatically relative to the
context-oblivious baseline.
"""

from conftest import emit

from repro.experiments.contextual import run_contextual


def test_table1_contextual(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_contextual(bench_scale, seed=0, bundle=bundle),
        rounds=1,
        iterations=1,
    )
    emit("Table I (contextual) + Figures 8-9", result.format())

    gpt = result.systems["GPTCache"]
    mc = result.systems["MeanCache"]
    # Paper shape: MeanCache has far fewer false hits on context traps
    # (3 vs 54 in the paper) and higher precision / F-score.
    assert mc.trap_false_hits < gpt.trap_false_hits
    assert mc.metrics["precision"] > gpt.metrics["precision"]
    assert mc.metrics["f_score"] > gpt.metrics["f_score"]
    # The ablation shows the win comes from the context check itself.
    no_ctx = result.systems["MeanCache (no context check)"]
    assert mc.trap_false_hits <= no_ctx.trap_false_hits
