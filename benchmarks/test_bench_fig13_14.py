"""Benchmark: Figures 13 and 14 — cosine-threshold sweeps for the trained encoders.

Sweeps τ from 0 to 1 against deployed-cache decisions on balanced validation
pairs and reports the optimum (paper: ≈0.83 for MPNet, ≈0.78 for ALBERT —
i.e. above GPTCache's fixed 0.7).
"""

from conftest import emit

from repro.experiments.fig13_14_threshold import run_fig13_14


def test_fig13_14_threshold_sweeps(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_fig13_14(bench_scale, seed=0, bundle=bundle, include_albert=True),
        rounds=1,
        iterations=1,
    )
    emit("Figures 13-14 (threshold sweeps)", result.format())

    mpnet = result.mpnet
    # The optimum is a valid threshold and improves on the fixed 0.7 setting.
    assert 0.0 <= mpnet.optimal_metrics["threshold"] <= 1.0
    assert mpnet.optimal_metrics["f1"] >= mpnet.fixed_threshold_metrics["f1"] - 1e-9
    # Paper claim: GPTCache's suggested 0.7 is suboptimal (the optimum is higher).
    assert mpnet.optimal_metrics["threshold"] >= 0.7
    if result.albert is not None:
        assert result.albert.optimal_metrics["threshold"] >= 0.7
