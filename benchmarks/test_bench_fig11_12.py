"""Benchmark: Figures 11 and 12 — FL training curves (MPNet / ALBERT).

Regenerates the per-round F1 / precision / recall / accuracy curves of the
global model during federated fine-tuning and reports the end-to-start
precision improvement (paper: +11% MPNet, +7% ALBERT).
"""

import numpy as np
from conftest import emit

from repro.experiments.fig11_12_fl_training import run_fig11_12


def test_fig11_12_fl_training_curves(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_fig11_12(bench_scale, seed=0, bundle=bundle, include_albert=True),
        rounds=1,
        iterations=1,
    )
    emit("Figures 11-12 (FL training curves)", result.format())

    curves = result.mpnet.curves
    assert len(curves["round"]) == bench_scale.fl_rounds
    finite = curves["f1"][np.isfinite(curves["f1"])]
    assert finite.size == bench_scale.fl_rounds
    assert np.all((finite >= 0.0) & (finite <= 1.0))
    # The learned global threshold settles inside (0, 1) and above GPTCache's
    # fixed 0.7 is the common outcome; at minimum it must be a valid value.
    assert 0.0 < result.mpnet.final_threshold < 1.0
    if result.albert is not None:
        assert len(result.albert.curves["round"]) == bench_scale.fl_rounds
