"""Benchmark: Figures 5 and 6 — per-query response time and hit/miss decisions.

LLM latency is simulated (calibrated to Llama-2 7B magnitudes); cache lookup
overhead is measured wall-clock.  The paper's qualitative claims: the cache
adds negligible overhead on unique queries and answers duplicates orders of
magnitude faster, while MeanCache makes far fewer false-hit decisions than
GPTCache.
"""

import numpy as np
from conftest import emit

from repro.experiments.fig05_latency import run_fig05


def test_fig05_response_times_and_fig06_decisions(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_fig05(bench_scale, seed=0, bundle=bundle),
        rounds=1,
        iterations=1,
    )
    emit("Figure 5 (response times)", result.format())

    base = result.traces["Llama 2"]
    mc = result.traces["Llama 2 + MeanCache"]
    gpt = result.traces["Llama 2 + GPTCache"]

    # Duplicate queries are served far faster on average from the local cache
    # (the mean still includes the duplicates the cache conservatively missed,
    # which pay the full LLM latency).
    assert result.speedup_on_duplicates("Llama 2 + MeanCache") > 2.0
    # Adding the cache does not meaningfully slow down the overall stream.
    assert mc.mean_latency_s <= base.mean_latency_s * 1.1

    # Figure 6: decision quality on the same probe stream.
    mc_metrics = result.decision_metrics("Llama 2 + MeanCache")
    gpt_metrics = result.decision_metrics("Llama 2 + GPTCache")
    emit(
        "Figure 6 (hit/miss decisions)",
        f"MeanCache decisions: {mc_metrics}\nGPTCache decisions:  {gpt_metrics}",
    )
    # On this (small) probe subset the decision quality of MeanCache must not
    # fall behind the baseline; the full Table I benchmark asserts the strict
    # false-hit ordering on the complete workload.
    assert mc_metrics["f_score"] >= gpt_metrics["f_score"] - 0.1
