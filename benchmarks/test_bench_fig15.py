"""Benchmark: Figure 15 — per-query embedding compute time and storage.

Measures the wall-clock time to embed a single query with each zoo encoder and
reports per-query embedding storage.  Paper shape: the Llama-2-class embedder
is far slower and needs >5x the storage of the 768-d models.
"""

from conftest import emit

from repro.experiments.fig15_model_cost import run_fig15


def test_fig15_embedding_cost(benchmark, bench_scale):
    n_queries = 50 if bench_scale.name == "quick" else 200
    result = benchmark.pedantic(
        lambda: run_fig15(n_queries=n_queries, repeats=2),
        rounds=1,
        iterations=1,
    )
    emit("Figure 15 (embedding cost)", result.format())

    llama = result.row("llama2-sim")
    mpnet = result.row("mpnet-sim")
    albert = result.row("albert-sim")
    # Storage matches the paper exactly (32 KB vs 6 KB per query).
    assert llama.embedding_storage_kb == 32.0
    assert mpnet.embedding_storage_kb == 6.0
    assert albert.embedding_storage_kb == 6.0
    # Compute ordering: Llama-class embedding is the most expensive.
    assert llama.mean_embed_time_s > mpnet.mean_embed_time_s
    assert llama.mean_embed_time_s > albert.mean_embed_time_s
