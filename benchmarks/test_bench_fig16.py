"""Benchmark: Figure 16 — Llama-2-class embeddings are weak for semantic matching.

Threshold sweep with the llama2-sim encoder; even at its optimal threshold its
F1 must stay well below the fine-tuned small encoders (paper: 0.75 vs 0.88+).
"""

from conftest import emit

from repro.experiments.fig13_14_threshold import run_fig13_14
from repro.experiments.fig16_llama_threshold import run_fig16


def test_fig16_llama_threshold_sweep(benchmark, bundle, bench_scale):
    result = benchmark.pedantic(
        lambda: run_fig16(bench_scale, seed=0, bundle=bundle),
        rounds=1,
        iterations=1,
    )
    emit("Figure 16 (Llama-2 threshold sweep)", result.format())

    assert 0.0 <= result.optimal_metrics["threshold"] <= 1.0
    # Compare against the fine-tuned MPNet sweep: llama must be clearly worse.
    mpnet = run_fig13_14(bench_scale, seed=0, bundle=bundle, include_albert=False).mpnet
    assert result.max_f1 < mpnet.optimal_metrics["f1"]
