"""Unit tests for the hashed featurizer."""

import numpy as np
import pytest

from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer, stable_token_hash
from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_token_hash("python") == stable_token_hash("python")

    def test_seed_changes_hash(self):
        assert stable_token_hash("python", seed=0) != stable_token_hash("python", seed=1)

    def test_different_tokens_differ(self):
        assert stable_token_hash("python") != stable_token_hash("java")

    def test_is_64_bit(self):
        assert 0 <= stable_token_hash("x") < 2**64


class TestFeaturizerConfig:
    def test_rejects_tiny_feature_space(self):
        with pytest.raises(ValueError):
            FeaturizerConfig(n_features=1)


class TestHashedFeaturizer:
    def test_output_shape_and_dtype(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=128))
        vec = feat.transform("sort a list in python")
        assert vec.shape == (128,)
        assert vec.dtype == np.float64

    def test_normalized_output(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=128, normalize=True))
        vec = feat.transform("sort a python list quickly")
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_unnormalized_output(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=128, normalize=False))
        vec = feat.transform("sort sort sort")
        assert np.linalg.norm(vec) > 0

    def test_empty_text_gives_zero_vector(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=64))
        assert np.allclose(feat.transform(""), 0.0)

    def test_deterministic(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=256))
        text = "merge two dictionaries in python"
        assert np.array_equal(feat.transform(text), feat.transform(text))

    def test_two_instances_same_config_agree(self):
        # Critical for federated clients: featurizers built from the same
        # config must produce identical features without exchanging state.
        a = HashedFeaturizer(FeaturizerConfig(n_features=256, seed=3))
        b = HashedFeaturizer(FeaturizerConfig(n_features=256, seed=3))
        text = "how to bake sourdough bread"
        assert np.array_equal(a.transform(text), b.transform(text))

    def test_different_seeds_give_different_features(self):
        a = HashedFeaturizer(FeaturizerConfig(n_features=256, seed=3))
        b = HashedFeaturizer(FeaturizerConfig(n_features=256, seed=4))
        text = "how to bake sourdough bread"
        assert not np.array_equal(a.transform(text), b.transform(text))

    def test_batch_matches_single(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=128))
        texts = ["sort a list", "reverse a string", "bake cookies"]
        batch = feat.transform_batch(texts)
        assert batch.shape == (3, 128)
        for i, text in enumerate(texts):
            assert np.allclose(batch[i], feat.transform(text))

    def test_overlapping_texts_share_features(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=512))
        a = feat.transform("sort a python list")
        b = feat.transform("order a python list")
        c = feat.transform("grill salmon fillets tonight")
        sim_ab = float(a @ b)
        sim_ac = float(a @ c)
        assert sim_ab > sim_ac

    def test_sublinear_tf_damps_repeats(self):
        base = FeaturizerConfig(n_features=128, sublinear_tf=False, normalize=False)
        damped = FeaturizerConfig(n_features=128, sublinear_tf=True, normalize=False)
        tok = Tokenizer(TokenizerConfig(char_ngram_max=0, remove_stopwords=False))
        raw = HashedFeaturizer(base, tok).transform("spam spam spam spam")
        sub = HashedFeaturizer(damped, tok).transform("spam spam spam spam")
        assert np.abs(sub).max() < np.abs(raw).max()

    def test_n_features_property(self):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=333))
        assert feat.n_features == 333
