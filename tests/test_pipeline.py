"""Unit tests for the shared lookup pipeline (repro.core.pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.baselines.keyword_cache import KeywordCache
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.core.context import ContextChain
from repro.core.pipeline import (
    AlwaysAdmit,
    CapacityEnroll,
    ChainContextVerify,
    DecideStage,
    EmbedStage,
    EncoderEmbed,
    ExactKeyRetrieve,
    IndexRetrieve,
    KeyEmbed,
    LookupPipeline,
    NoContextVerify,
    Probe,
    Selection,
    SimilarityThreshold,
    UnboundedEnroll,
)
from repro.embeddings.zoo import load_encoder
from repro.index import FlatIndex, IndexHit


class _VectorEmbed(EmbedStage):
    """Maps known query strings to fixed unit vectors (test double)."""

    def __init__(self, table):
        self.table = table
        self.calls = 0

    def encode_batch(self, queries):
        self.calls += 1
        return np.atleast_2d(np.array([self.table[q] for q in queries], dtype=np.float64))


class _SelectionDecide(DecideStage):
    """Returns the raw Selection (lets tests inspect stage outcomes)."""

    def decide(self, selection: Selection) -> Selection:
        return selection


def _unit(*coords):
    v = np.array(coords, dtype=np.float64)
    return v / np.linalg.norm(v)


@pytest.fixture()
def toy_pipeline():
    """A 2-entry vector pipeline with an adjustable threshold."""
    index = FlatIndex()
    index.add(_unit(1.0, 0.0), id=10)
    index.add(_unit(0.6, 0.8), id=11)
    embed = _VectorEmbed(
        {
            "east": _unit(1.0, 0.0),
            "northeast": _unit(0.8, 0.6),
            "north": _unit(0.0, 1.0),
        }
    )
    state = {"tau": 0.9}
    pipeline = LookupPipeline(
        embed=embed,
        retrieve=IndexRetrieve(index, top_k=2),
        threshold=SimilarityThreshold(lambda: state["tau"]),
        context_verify=NoContextVerify(),
        decide=_SelectionDecide(),
    )
    return pipeline, state, embed, index


class TestLookupPipeline:
    def test_batched_run_one_embed_call(self, toy_pipeline):
        pipeline, _, embed, _ = toy_pipeline
        selections = pipeline.run([Probe.make("east"), Probe.make("north")])
        assert embed.calls == 1
        assert [s.hit for s in selections] == [True, False]
        assert selections[0].best.id == 10
        assert selections[0].best.score == pytest.approx(1.0)

    def test_candidates_ranked_and_first_survivor_wins(self, toy_pipeline):
        pipeline, state, _, _ = toy_pipeline
        state["tau"] = 0.5
        (sel,) = pipeline.run([Probe.make("northeast")])
        # Both entries clear τ=0.5; the better-ranked one must win.
        assert len(sel.hits) == 2
        assert sel.best.id == 11
        assert sel.hits[0].score >= sel.hits[1].score

    def test_live_threshold_readback(self, toy_pipeline):
        pipeline, state, _, _ = toy_pipeline
        # cos(northeast, entry11) = 0.8*0.6 + 0.6*0.8 = 0.96
        state["tau"] = 0.99
        (sel99,) = pipeline.run([Probe.make("northeast")])
        assert not sel99.hit
        state["tau"] = 0.5
        (sel50,) = pipeline.run([Probe.make("northeast")])
        assert sel50.hit

    def test_empty_retrieve_skips_search(self, toy_pipeline):
        pipeline, _, _, _ = toy_pipeline
        empty = LookupPipeline(
            embed=pipeline.embed,
            retrieve=IndexRetrieve(FlatIndex(), top_k=2),
            threshold=pipeline.threshold,
            context_verify=pipeline.context_verify,
            decide=pipeline.decide,
        )
        (sel,) = empty.run([Probe.make("east")])
        assert not sel.hit
        assert sel.hits == []
        assert sel.search_time_s == 0.0

    def test_run_one_matches_run(self, toy_pipeline):
        pipeline, _, _, _ = toy_pipeline
        single = pipeline.run_one("east")
        (batched,) = pipeline.run([Probe.make("east")])
        assert single.hit == batched.hit
        assert single.best.id == batched.best.id

    def test_empty_batch(self, toy_pipeline):
        pipeline, _, _, _ = toy_pipeline
        assert pipeline.run([]) == []

    def test_stage_names(self, toy_pipeline):
        pipeline, _, _, _ = toy_pipeline
        names = pipeline.stage_names()
        assert names["retrieve"] == "IndexRetrieve"
        assert names["threshold"] == "SimilarityThreshold"
        assert names["enroll"] == "None"


class TestContextVerifyLaziness:
    def _pipeline(self, verifier):
        index = FlatIndex()
        index.add(_unit(1.0, 0.0), id=0)
        embed = _VectorEmbed({"east": _unit(1.0, 0.0), "north": _unit(0.0, 1.0)})
        return LookupPipeline(
            embed=embed,
            retrieve=IndexRetrieve(index, top_k=1),
            threshold=SimilarityThreshold(0.9),
            context_verify=verifier,
            decide=_SelectionDecide(),
        )

    def test_probe_context_embedded_only_on_candidate(self):
        calls = []

        def embed_context(texts):
            calls.append(tuple(texts))
            return ContextChain.empty()

        verifier = ChainContextVerify(
            embed_context=embed_context,
            entry_context=lambda _id: ContextChain.empty(),
            threshold=0.7,
        )
        pipeline = self._pipeline(verifier)
        (miss,) = pipeline.run([Probe.make("north", ("parent",))])
        assert not miss.hit
        assert calls == []  # no candidate cleared τ → context never embedded
        (hit,) = pipeline.run([Probe.make("east", ("parent",))])
        assert hit.hit and hit.context_checked
        assert calls == [("parent",)]  # embedded exactly once

    def test_context_mismatch_rejects_candidate(self):
        verifier = ChainContextVerify(
            embed_context=lambda texts: ContextChain(texts=tuple(texts)),
            # Cached entry is contextual; a standalone probe must not match.
            entry_context=lambda _id: ContextChain(texts=("some parent",)),
            threshold=0.7,
        )
        pipeline = self._pipeline(verifier)
        (sel,) = pipeline.run([Probe.make("east")])
        assert not sel.hit
        assert sel.context_checked


class TestExactKeyStages:
    def test_key_embed_and_exact_retrieve(self):
        embed = KeyEmbed(str.lower)
        retrieve = ExactKeyRetrieve({"hello": 3})
        keys = embed.encode_batch(["HeLLo", "missing"])
        assert keys == ["hello", "missing"]
        hits = retrieve.retrieve_batch(keys)
        assert hits[0] == [IndexHit(id=3, score=1.0)]
        assert hits[1] == []
        assert not retrieve.is_empty()
        assert ExactKeyRetrieve({}).is_empty()
        assert AlwaysAdmit().admit(IndexHit(id=0, score=-1.0))


class TestEnrollStages:
    def test_capacity_enroll_evicts_until_room(self):
        state = {"size": 5, "evicted": 0}

        def evict():
            state["size"] -= 1
            state["evicted"] += 1

        enroll = CapacityEnroll(
            size=lambda: state["size"],
            max_entries=3,
            evict_one=evict,
            insert=lambda q, r, context=(), embedding=None: None,
        )
        assert enroll.ensure_capacity() == 3  # 5 -> 2 (< 3 leaves room for one)
        assert state["evicted"] == 3

    def test_unbounded_enroll_never_evicts(self):
        inserted = []
        enroll = UnboundedEnroll(
            insert=lambda q, r, embedding=None: inserted.append((q, r))
        )
        assert enroll.ensure_capacity() == 0
        enroll.enroll("q", "r", context=("ignored",))
        assert inserted == [("q", "r")]


class TestCacheWiring:
    """Each variant is a stage substitution on the one pipeline."""

    def test_meancache_stages(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(verify_context=True))
        names = cache.pipeline.stage_names()
        assert names["embed"] == "EncoderEmbed"
        assert names["retrieve"] == "IndexRetrieve"
        assert names["threshold"] == "SimilarityThreshold"
        assert names["context_verify"] == "ChainContextVerify"
        assert names["enroll"] == "CapacityEnroll"

    def test_meancache_ablation_disables_context_stage(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(verify_context=False))
        assert not cache.pipeline.context_verify.enabled

    def test_verify_context_read_live_from_config(self, tiny_encoder):
        """Replacing cache.config wholesale must retoggle the stage."""
        cache = MeanCache(tiny_encoder, MeanCacheConfig(verify_context=True))
        assert cache.pipeline.context_verify.enabled
        cache.config = MeanCacheConfig(verify_context=False)
        assert not cache.pipeline.context_verify.enabled
        # And the decision path follows: a contextual entry matches a
        # standalone probe once verification is off.
        cache.config = MeanCacheConfig(verify_context=True, similarity_threshold=0.3)
        cache.insert("how can i sort a list in python", "r", context=["earlier turn"])
        assert not cache.lookup("how can i sort a list in python").hit
        cache.config = MeanCacheConfig(verify_context=False, similarity_threshold=0.3)
        assert cache.lookup("how can i sort a list in python").hit

    def test_gptcache_stages(self, tiny_encoder):
        cache = GPTCache(tiny_encoder, GPTCacheConfig())
        names = cache.pipeline.stage_names()
        assert names["embed"] == "EncoderEmbed"
        assert names["context_verify"] == "NoContextVerify"
        assert names["enroll"] == "UnboundedEnroll"

    def test_keyword_cache_swaps_retrieve(self):
        cache = KeywordCache()
        names = cache.pipeline.stage_names()
        assert names["embed"] == "KeyEmbed"
        assert names["retrieve"] == "ExactKeyRetrieve"
        assert names["threshold"] == "AlwaysAdmit"

    def test_set_threshold_is_live(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(similarity_threshold=0.999999))
        cache.insert("how can i sort a list in python", "use sorted()")
        assert not cache.lookup("what is the best way to order a python list").hit
        cache.set_threshold(0.2)
        assert cache.lookup("what is the best way to order a python list").hit

    def test_lookup_and_batch_agree_across_variants(self, tiny_encoder):
        queries = ["how can i sort a list in python", "plan a trip to japan"]
        probes = [
            "what is the best way to order a python list",
            "how do i reverse a string in python",
        ]
        mc_a = MeanCache(tiny_encoder.clone(), MeanCacheConfig(similarity_threshold=0.6))
        mc_b = MeanCache(tiny_encoder.clone(), MeanCacheConfig(similarity_threshold=0.6))
        mc_a.populate(queries)
        mc_b.populate(queries)
        sequential = [mc_a.lookup(p) for p in probes]
        batched = mc_b.lookup_batch(probes)
        for s, b in zip(sequential, batched):
            assert s.hit == b.hit
            assert s.entry_id == b.entry_id
            assert s.similarity == pytest.approx(b.similarity)

        kw_a, kw_b = KeywordCache(), KeywordCache()
        kw_a.populate(queries)
        kw_b.populate(queries)
        assert [kw_a.lookup(p) for p in probes] == kw_b.lookup_batch(probes)
