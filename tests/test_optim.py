"""Unit tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.embeddings.optim import SGD, Adam


def quadratic_grad(params):
    """Gradient of 0.5 * ||p||^2 for each parameter."""
    return [p.copy() for p in params]


class TestSGD:
    def test_basic_step(self):
        p = [np.array([1.0, -2.0])]
        SGD(lr=0.5).step(p, [np.array([1.0, 1.0])])
        assert np.allclose(p[0], [0.5, -2.5])

    def test_converges_on_quadratic(self):
        params = [np.array([5.0, -3.0]), np.array([[2.0, 2.0]])]
        opt = SGD(lr=0.2)
        for _ in range(100):
            opt.step(params, quadratic_grad(params))
        assert all(np.abs(p).max() < 1e-4 for p in params)

    def test_momentum_accelerates(self):
        def run(momentum):
            params = [np.array([10.0])]
            opt = SGD(lr=0.05, momentum=momentum)
            for _ in range(30):
                opt.step(params, quadratic_grad(params))
            return abs(params[0][0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        params = [np.array([1.0])]
        SGD(lr=0.1, weight_decay=1.0).step(params, [np.array([0.0])])
        assert params[0][0] < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1).step([np.zeros(2)], [np.zeros(2), np.zeros(2)])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1).step([np.zeros(2)], [np.zeros(3)])

    def test_reset_clears_momentum(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = [np.array([1.0])]
        opt.step(params, [np.array([1.0])])
        assert opt._velocity
        opt.reset()
        assert not opt._velocity

    def test_updates_in_place(self):
        p = np.array([1.0, 1.0])
        params = [p]
        SGD(lr=0.1).step(params, [np.ones(2)])
        assert params[0] is p  # same array object, mutated in place


class TestAdam:
    def test_converges_on_quadratic(self):
        params = [np.array([5.0, -3.0, 2.0])]
        opt = Adam(lr=0.1)
        for _ in range(300):
            opt.step(params, quadratic_grad(params))
        assert np.abs(params[0]).max() < 1e-3

    def test_first_step_size_close_to_lr(self):
        params = [np.array([1.0])]
        Adam(lr=0.01).step(params, [np.array([10.0])])
        # Adam's first update magnitude is ~lr regardless of gradient scale.
        assert abs(1.0 - params[0][0]) == pytest.approx(0.01, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(lr=0.1, beta1=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=-1.0)

    def test_reset_clears_state(self):
        opt = Adam(lr=0.1)
        params = [np.array([1.0])]
        opt.step(params, [np.array([1.0])])
        assert opt._t == 1
        opt.reset()
        assert opt._t == 0 and not opt._m and not opt._v

    def test_weight_decay(self):
        params = [np.array([1.0])]
        Adam(lr=0.1, weight_decay=1.0).step(params, [np.array([0.0])])
        assert params[0][0] < 1.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Adam(lr=0.1).step([np.zeros((2, 2))], [np.zeros((2, 3))])
