"""Property-based randomized suite: cross-backend index invariants.

Every registered backend must behave like the brute-force oracle (a plain
``{id: vector}`` dict searched with float64 cosine) up to its documented
score tolerance, under *any* interleaving of add / add_batch / remove /
clear / search.  Two drivers exercise that:

* seeded ``numpy`` random operation sequences (deterministic, long), and
* Hypothesis-generated operation lists (``derandomize=True`` so CI is
  stable), which shrink to minimal failing sequences.

Checked invariants (the ISSUE 4 checklist):

* **round-trips** — ``len``/``ids``/``in``/``get`` agree with the oracle
  after every operation, including swap-delete churn and clears;
* **search sanity** — returned ids are live, unique, scores are descending,
  inside [-1, 1], respect ``score_threshold``, and match the true cosine of
  the returned entry within the backend's tolerance; the exact backend must
  reproduce the oracle's top-k scores;
* **monotone top-k** — growing ``top_k`` never changes the head of the
  ranking (exact backend), and every hit list is sorted;
* **id-namespace integrity** — explicit ids, duplicate rejection, unknown
  removes, auto-id monotonicity across ``clear(reset_ids=False)``;
* **nbytes accounting** — the documented per-entry identities hold for the
  flat-storage backends and for both phases (staging / coded) of the
  quantized backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import QuantizedIndex, make_index

DIM = 16

#: backend name -> (constructor params sized for fast tests, score tolerance
#: vs the float64 oracle).  Tolerances: the float32 storage of the exact
#: backends rounds at ~1e-7; SQ8 adds per-dim int8 quantization error; PQ at
#: the test's deliberately coarse m=4/ksub=16 reconstructs loosely.
BACKENDS = {
    "flat": ({}, 1e-5),
    "ivf": ({"min_train_size": 24, "nprobe": 4, "seed": 7}, 1e-5),
    "lsh": ({"n_tables": 4, "n_bits": 6, "multiprobe": 2, "seed": 7}, 1e-5),
    # SQ8's tolerance is loose here because ranges trained on only 24
    # vectors clip later out-of-range adds; at production training sizes the
    # error is ~1e-3 (benchmarks/test_bench_index.py pins recall instead).
    # It still catches structural bugs — a stale or swapped row scores a
    # random cosine, |error| ~ 0.5-1.
    "sq8": ({"min_train_size": 24, "seed": 7}, 0.35),
    "pq": ({"m": 4, "ksub": 16, "min_train_size": 24, "seed": 7}, 0.6),
    "ivf+sq8": ({"min_train_size": 24, "nprobe": 4, "seed": 7}, 0.35),
}

BACKEND_NAMES = sorted(BACKENDS)


def make_backend(name: str):
    params, _tol = BACKENDS[name]
    return make_index(name, dim=DIM, **params)


# --------------------------------------------------------------------------- #
# Oracle
# --------------------------------------------------------------------------- #
def oracle_cosine(query: np.ndarray, vector: np.ndarray) -> float:
    q = np.asarray(query, dtype=np.float64)
    v = np.asarray(vector, dtype=np.float64)
    qn = np.linalg.norm(q)
    vn = np.linalg.norm(v)
    if qn < 1e-12 or vn < 1e-12:
        return 0.0
    return float(np.dot(q, v) / (qn * vn))


def oracle_topk(oracle: dict, query: np.ndarray, top_k: int):
    """Brute-force (score, id) ranking, best first."""
    scored = sorted(
        ((oracle_cosine(query, v), i) for i, v in oracle.items()),
        key=lambda pair: -pair[0],
    )
    return scored[:top_k]


# --------------------------------------------------------------------------- #
# Invariant checks
# --------------------------------------------------------------------------- #
def check_state(index, oracle: dict, name: str) -> None:
    """Structural round-trip invariants after any operation."""
    assert len(index) == len(oracle)
    ids = index.ids
    assert len(ids) == len(set(ids)), "duplicate ids exposed"
    assert set(ids) == set(oracle)
    for i in list(oracle)[:5]:
        assert i in index
    assert (max(oracle) + 10 if oracle else 10**9) not in index
    # nbytes accounting: zero iff empty, and the documented identity.
    if not oracle:
        assert index.nbytes == 0
    else:
        assert index.nbytes == expected_nbytes(index, len(oracle))


def expected_nbytes(index, n: int) -> int:
    """The per-entry storage identity each backend documents."""
    if isinstance(index, QuantizedIndex):
        if index.is_trained:
            return n * (index.code_width + 4 + 8)
        return n * (DIM * 4 + 4 + 8)
    # Flat storage (flat/ivf/lsh): dim float32 + float32 norm + int64 id.
    return n * (DIM * 4 + 4 + 8)


def check_search(index, oracle: dict, query: np.ndarray, name: str, tol: float) -> None:
    """Search-result invariants against the brute-force oracle."""
    top_k = 5
    hits = index.search(query, top_k=top_k)[0]
    assert len(hits) <= min(top_k, len(oracle))
    ids = [h.id for h in hits]
    assert len(ids) == len(set(ids)), "duplicate ids in one hit list"
    scores = [h.score for h in hits]
    assert all(-1.0 <= s <= 1.0 for s in scores)
    assert scores == sorted(scores, reverse=True), "scores not descending"
    for hit in hits:
        assert hit.id in oracle, "search returned a dead id"
        true = oracle_cosine(query, oracle[hit.id])
        assert abs(hit.score - true) <= tol, (
            f"{name}: reported score {hit.score} vs true cosine {true}"
        )
    # Thresholded search is a filtered version of the same ranking.
    cut = index.search(query, top_k=top_k, score_threshold=0.5)[0]
    assert all(h.score >= 0.5 for h in cut)
    assert [h.id for h in cut] == [h.id for h in hits if h.score >= 0.5]
    if name == "flat" and oracle:
        truth = oracle_topk(oracle, query, top_k)
        assert len(hits) == min(top_k, len(oracle))
        np.testing.assert_allclose(
            scores, [s for s, _ in truth], atol=tol, rtol=0.0
        )


def check_get(index, oracle: dict, name: str) -> None:
    """Stored-vector reconstruction: exact or codec-approximate."""
    for i in list(oracle)[:3]:
        got = index.get(i)
        true = np.asarray(oracle[i], dtype=np.float64)
        if isinstance(index, QuantizedIndex) and index.is_trained:
            # Approximate reconstruction: direction and magnitude survive up
            # to codec error (the decoded unit row is not exactly unit).
            assert oracle_cosine(got, true) > 0.5
            true_norm = float(np.linalg.norm(true))
            assert abs(float(np.linalg.norm(got)) - true_norm) <= 0.3 * max(
                true_norm, 1e-9
            )
        else:
            np.testing.assert_allclose(got, true, atol=1e-5, rtol=0.0)


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def apply_op(index, oracle: dict, op, rng: np.random.Generator) -> None:
    """Apply one (kind, *args) operation to the index and the oracle."""
    kind = op[0]
    if kind == "add":
        vec = np.random.default_rng(op[1]).normal(size=DIM)
        oracle[index.add(vec)] = vec
    elif kind == "add_batch":
        vecs = np.random.default_rng(op[2]).normal(size=(op[1], DIM))
        for i, v in zip(index.add_batch(vecs), vecs):
            oracle[i] = v
    elif kind == "remove":
        if oracle:
            victim = sorted(oracle)[op[1] % len(oracle)]
            index.remove(victim)
            del oracle[victim]
        else:
            with pytest.raises(KeyError):
                index.remove(12345)
    elif kind == "clear":
        before_next = max(oracle) + 1 if oracle else 0
        index.clear(reset_ids=op[1])
        oracle.clear()
        if not op[1] and before_next:
            # Auto-ids must stay monotonic across a non-resetting clear.
            probe = np.random.default_rng(0).normal(size=DIM)
            new_id = index.add(probe)
            assert new_id >= before_next
            oracle[new_id] = probe
    elif kind == "search":
        pass  # the post-op check always searches
    else:  # pragma: no cover - strategy bug
        raise AssertionError(kind)


def run_sequence(name: str, ops, rng: np.random.Generator) -> None:
    params, tol = BACKENDS[name]
    index = make_index(name, dim=DIM, **params)
    oracle: dict = {}
    for op in ops:
        apply_op(index, oracle, op, rng)
        check_state(index, oracle, name)
        if oracle:
            query = rng.normal(size=DIM)
            check_search(index, oracle, query, name, tol)
            # Probing with a stored vector must surface it (exact backends)
            # or at least stay score-consistent (approximate ones).
            some_id = sorted(oracle)[0]
            check_search(index, oracle, oracle[some_id], name, tol)
            check_get(index, oracle, name)
        else:
            assert index.search(rng.normal(size=DIM), top_k=3) == [[]]


def random_ops(rng: np.random.Generator, n_ops: int):
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.45:
            ops.append(("add", int(rng.integers(0, 2**31))))
        elif r < 0.6:
            ops.append(("add_batch", int(rng.integers(1, 7)), int(rng.integers(0, 2**31))))
        elif r < 0.85:
            ops.append(("remove", int(rng.integers(0, 2**31))))
        elif r < 0.9:
            ops.append(("clear", bool(rng.integers(0, 2))))
        else:
            ops.append(("search", int(rng.integers(0, 2**31))))
    return ops


# --------------------------------------------------------------------------- #
# Seeded random sequences (long, deterministic)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_operation_sequences(name, seed):
    rng = np.random.default_rng(seed * 1000 + 17)
    ops = random_ops(rng, 60)
    run_sequence(name, ops, rng)


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_growth_past_training_threshold(name):
    """Sequences long enough to cross lazy-training/repartition boundaries."""
    rng = np.random.default_rng(99)
    ops = [("add_batch", 6, int(rng.integers(0, 2**31))) for _ in range(20)]
    ops += random_ops(rng, 30)
    run_sequence(name, ops, rng)
    params, _tol = BACKENDS[name]
    index = make_index(name, dim=DIM, **params)
    index.add_batch(np.random.default_rng(5).normal(size=(120, DIM)))
    if isinstance(index, QuantizedIndex):
        assert index.is_trained
        assert index.nbytes < 120 * (DIM * 4 + 4 + 8)


# --------------------------------------------------------------------------- #
# Hypothesis-generated sequences (shrinking)
# --------------------------------------------------------------------------- #
_op_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 2**31 - 1)),
    st.tuples(st.just("add_batch"), st.integers(1, 6), st.integers(0, 2**31 - 1)),
    st.tuples(st.just("remove"), st.integers(0, 2**31 - 1)),
    st.tuples(st.just("clear"), st.booleans()),
    st.tuples(st.just("search"), st.integers(0, 2**31 - 1)),
)


@pytest.mark.parametrize("name", BACKEND_NAMES)
@settings(max_examples=15, deadline=None, derandomize=True)
@given(ops=st.lists(_op_strategy, min_size=1, max_size=30))
def test_hypothesis_operation_sequences(name, ops):
    run_sequence(name, ops, np.random.default_rng(1234))


# --------------------------------------------------------------------------- #
# Id-namespace integrity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_id_namespace_integrity(name):
    index = make_backend(name)
    rng = np.random.default_rng(3)
    first = index.add(rng.normal(size=DIM))
    explicit = index.add(rng.normal(size=DIM), id=1000)
    assert explicit == 1000
    with pytest.raises(ValueError):
        index.add(rng.normal(size=DIM), id=1000)
    with pytest.raises(ValueError):
        index.add_batch(rng.normal(size=(2, DIM)), ids=[first, 2000])
    with pytest.raises(ValueError):
        index.add_batch(rng.normal(size=(2, DIM)), ids=[7, 7])
    with pytest.raises(KeyError):
        index.remove(999)
    # Auto ids continue past the explicit maximum.
    assert index.add(rng.normal(size=DIM)) == 1001
    with pytest.raises(ValueError):
        index.add(rng.normal(size=DIM + 1))
    with pytest.raises(ValueError):
        index.search(rng.normal(size=DIM + 1))


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_monotone_topk_head(name):
    """Growing top_k keeps every hit list a descending, duplicate-free
    ranking; on the exact backend the head is literally a prefix."""
    params, _tol = BACKENDS[name]
    index = make_index(name, dim=DIM, **params)
    rng = np.random.default_rng(11)
    index.add_batch(rng.normal(size=(80, DIM)))
    query = rng.normal(size=DIM)
    previous = None
    for top_k in (1, 2, 4, 7):
        hits = index.search(query, top_k=top_k)[0]
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
        assert len({h.id for h in hits}) == len(hits)
        if name == "flat" and previous is not None:
            assert [h.id for h in hits][: len(previous)] == previous
        previous = [h.id for h in hits]


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_rebuild_round_trip(name):
    params, tol = BACKENDS[name]
    index = make_index(name, dim=DIM, **params)
    rng = np.random.default_rng(21)
    vecs = rng.normal(size=(60, DIM))
    index.add_batch(vecs)
    keep = list(range(0, 60, 2))
    index.rebuild(vecs[keep], ids=keep)
    oracle = {i: vecs[i] for i in keep}
    check_state(index, oracle, name)
    check_search(index, oracle, rng.normal(size=DIM), name, tol)
    with pytest.raises(ValueError):
        index.rebuild(vecs[:3], ids=[1, 2])


# --------------------------------------------------------------------------- #
# Hot-path optimizations are decision-invariant (ISSUE 7)
# --------------------------------------------------------------------------- #
# The fused ADC scans, scratch-buffer reuse, cell-major layout compaction and
# snapshot restore must all return the *same* hits as the straightforward
# reference path.  "Same" is exact (id, score) equality, not approximate:
# final scores come from the float64 decode-and-rescore of a deterministic
# candidate set (``det_topk`` is tie-closed), so any drift is a real bug in
# candidate selection or row bookkeeping, not floating-point noise.

from repro.index import load_index  # noqa: E402  (section-local import)

QUANTIZED_NAMES = ("sq8", "pq", "ivf+sq8")
STOP_SCORE_NAMES = ("ivf", "sq8", "pq", "ivf+sq8")


def hits_fingerprint(results):
    """Exact (id, score) transcript of a batched search result."""
    return [[(h.id, h.score) for h in hits] for hits in results]


def build_mutated(name: str, rng: np.random.Generator, n: int = 160):
    """A trained index that has seen growth, deletes and re-adds.

    Returns ``(index, oracle)`` so callers can keep checking structural
    invariants after maintenance or snapshot restore.
    """
    index = make_backend(name)
    oracle: dict = {}
    vecs = rng.normal(size=(n, DIM))
    for i, v in zip(index.add_batch(vecs), vecs):
        oracle[i] = v
    victims = sorted(oracle)[::3][: n // 4]
    for victim in victims:
        index.remove(victim)
        del oracle[victim]
    extra = rng.normal(size=(n // 4, DIM))
    for i, v in zip(index.add_batch(extra), extra):
        oracle[i] = v
    return index, oracle


@pytest.mark.parametrize("name", QUANTIZED_NAMES)
@pytest.mark.parametrize("maintained", [False, True])
def test_fused_scan_parity_on_mutated_index(name, maintained):
    """Fused scans == reference decode path, exactly, on churned indexes.

    Covers both the freshly-mutated layout and the post-``maintenance()``
    (repartitioned + cell-major compacted) layout.
    """
    rng = np.random.default_rng(42)
    index, oracle = build_mutated(name, rng)
    assert isinstance(index, QuantizedIndex) and index.is_trained
    if maintained:
        index.maintenance()
        check_state(index, oracle, name)
    queries = rng.normal(size=(8, DIM))
    assert index.fused_scan  # fused is the default
    fused_batch = hits_fingerprint(index.search(queries, top_k=5))
    fused_single = [
        hits_fingerprint(index.search(q, top_k=5))[0] for q in queries
    ]
    try:
        index.fused_scan = False
        assert not index.fused_scan
        ref_batch = hits_fingerprint(index.search(queries, top_k=5))
        ref_single = [
            hits_fingerprint(index.search(q, top_k=5))[0] for q in queries
        ]
    finally:
        index.fused_scan = True
    assert fused_batch == ref_batch
    # Batch size must not change decisions either (small batches take the
    # mirrored/serial paths, large ones the blocked batch path).
    assert fused_single == ref_single
    for qi, hits in enumerate(fused_batch):
        assert hits, f"query {qi} returned no hits"


@pytest.mark.parametrize("name", QUANTIZED_NAMES)
def test_snapshot_restore_parity(name, tmp_path):
    """Live, restored-fused and restored-reference hits are identical.

    Snapshots preserve row order byte-for-byte and the canonical scan order
    is a pure function of stored rows, so a restored index must replay the
    exact same decisions — including after ``maintenance()`` compacted the
    layout.
    """
    rng = np.random.default_rng(13)
    index, oracle = build_mutated(name, rng)
    index.maintenance()
    queries = rng.normal(size=(5, DIM))
    live = hits_fingerprint(index.search(queries, top_k=5))
    restored = load_index(index.save(tmp_path / name.replace("+", "_")))
    check_state(restored, oracle, name)
    assert hits_fingerprint(restored.search(queries, top_k=5)) == live
    try:
        restored.fused_scan = False
        assert hits_fingerprint(restored.search(queries, top_k=5)) == live
    finally:
        restored.fused_scan = True


@pytest.mark.parametrize("name", ("ivf+sq8",))
def test_maintenance_compacts_and_is_idempotent(name):
    rng = np.random.default_rng(7)
    index, oracle = build_mutated(name, rng)
    queries = rng.normal(size=(4, DIM))
    first = index.maintenance()
    assert first.get("layout_compacted") is True
    check_state(index, oracle, name)
    before = hits_fingerprint(index.search(queries, top_k=3))
    # A second call finds nothing to do and must not disturb decisions.
    second = index.maintenance()
    assert "layout_compacted" not in second
    assert hits_fingerprint(index.search(queries, top_k=3)) == before
    # Any mutation re-dirties the layout; maintenance compacts again.
    index.add(rng.normal(size=DIM))
    oracle[max(oracle) + 1] = None  # id bookkeeping not needed below
    third = index.maintenance()
    assert third.get("layout_compacted") is True


@pytest.mark.parametrize("name", STOP_SCORE_NAMES)
def test_stop_score_early_termination_invariant(name):
    """Threshold early termination is lossy only *above* the threshold.

    With an unreachable ``stop_score`` the scan must be exhaustive and
    byte-identical to a plain search; with a reachable one, either the scan
    still completed (identical hits) or it stopped early, in which case the
    returned top-1 must already satisfy the threshold (up to codec error)
    and the ``early_stops`` counter must record the shortcut.
    """
    params, tol = BACKENDS[name]
    rng = np.random.default_rng(31)
    index, oracle = build_mutated(name, rng)
    assert index.supports_stop_score
    probe_id = sorted(oracle)[len(oracle) // 2]
    query = oracle[probe_id]
    exhaustive = hits_fingerprint(index.search(query, top_k=3))

    def same_decisions(got, want):
        # The quantized backends rescore every candidate in float64 through
        # one code path, so their transcripts are byte-identical across scan
        # strategies.  The float IVF backend reports raw scan scores, and
        # BLAS picks different kernels for the per-cell vs single-block
        # candidate shapes — identical ids, scores equal to float32 ulps.
        if name == "ivf":
            ids_got = [[i for i, _ in hits] for hits in got]
            ids_want = [[i for i, _ in hits] for hits in want]
            if ids_got != ids_want:
                return False
            for hits_got, hits_want in zip(got, want):
                for (_, sg), (_, sw) in zip(hits_got, hits_want):
                    if abs(sg - sw) > 1e-6:
                        return False
            return True
        return got == want

    # Unreachable threshold: never stops, identical decisions.
    assert same_decisions(
        hits_fingerprint(index.search(query, top_k=3, stop_score=2.0)), exhaustive
    )
    # Reachable threshold: a stored-vector query scores ~1.0, so any cell
    # containing it clears 0.5 immediately.
    index.reset_scan_stats()
    stopped = hits_fingerprint(index.search(query, top_k=3, stop_score=0.5))[0]
    assert stopped, "stop_score search returned nothing for a stored vector"
    if not same_decisions([stopped], [exhaustive[0]]):
        assert index.scan_stats["early_stops"] >= 1
    assert stopped[0][1] >= 0.5 - tol
    assert stopped[0][0] == probe_id


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_scratch_reuse_keeps_searches_deterministic(name):
    """Interleaving batch shapes (which resizes/reuses the shared scratch
    buffers) never changes what an identical repeated query returns."""
    params, _tol = BACKENDS[name]
    index = make_index(name, dim=DIM, **params)
    rng = np.random.default_rng(17)
    index.add_batch(rng.normal(size=(120, DIM)))
    big = rng.normal(size=(8, DIM))
    small = rng.normal(size=(2, DIM))
    single = rng.normal(size=DIM)
    first = hits_fingerprint(index.search(big, top_k=5))
    for _ in range(3):
        index.search(single, top_k=7)
        index.search(small, top_k=1)
        assert hits_fingerprint(index.search(big, top_k=5)) == first
