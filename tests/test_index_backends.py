"""Cross-backend tests: registry, shared edge cases, recall floors.

Three layers:

* the backend registry (``make_index`` / ``register_index``) resolves names,
  rejects unknowns and accepts out-of-tree factories;
* every backend (flat / ivf / lsh) honours the same ``VectorIndex`` edge
  cases — empty-index lookups, remove-then-add id reuse, dim mismatches,
  ``rebuild`` round-trips — via one parametrized suite;
* the approximate backends keep recall@k ≥ 0.9 against exact flat search on
  the standard clustered paraphrase workload (the parity-style floor the
  benchmark sweep also enforces at scale).
"""

import numpy as np
import pytest

from conftest import make_tiny_encoder
from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.experiments.index_bench import make_ann_workload
from repro.index import (
    FlatIndex,
    IVFIndex,
    LSHIndex,
    VectorIndex,
    available_backends,
    make_index,
    register_index,
)
from repro.index.registry import _FACTORIES

BACKENDS = ["flat", "ivf", "lsh"]

# Small-corpus parameters that still exercise the approximate routing
# structures: IVF trains after 8 vectors and probes every cell, LSH uses
# wide buckets (4 bits) with directed multi-probe.
SMALL_PARAMS = {
    "flat": {},
    "ivf": {"min_train_size": 8, "nlist": 4, "nprobe": 4},
    "lsh": {"n_tables": 8, "n_bits": 4, "multiprobe": 2},
}


def small_index(backend: str, dim=8, **overrides) -> VectorIndex:
    params = dict(SMALL_PARAMS[backend])
    params.update(overrides)
    return make_index(backend, dim=dim, **params)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_make_index_types(self):
        assert isinstance(make_index("flat"), FlatIndex)
        assert isinstance(make_index("ivf"), IVFIndex)
        assert isinstance(make_index("lsh"), LSHIndex)

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(make_index("  IVF "), IVFIndex)

    def test_params_forwarded(self):
        index = make_index("ivf", dim=16, nprobe=3)
        assert index.dim == 16
        assert index.nprobe == 3
        lsh = make_index("lsh", n_tables=2, n_bits=6)
        assert (lsh.n_tables, lsh.n_bits) == (2, 6)

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="flat"):
            make_index("hnsw")

    def test_register_duplicate_rejected_unless_overwrite(self):
        with pytest.raises(ValueError):
            register_index("flat", FlatIndex)

    def test_register_custom_backend(self):
        register_index("flat64", lambda **kw: FlatIndex(dtype=np.float64, **kw))
        try:
            index = make_index("flat64", dim=4)
            assert isinstance(index, FlatIndex)
            assert index.dtype == np.float64
        finally:
            _FACTORIES.pop("flat64", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_index("  ", FlatIndex)


# --------------------------------------------------------------------------- #
# Shared edge cases, parametrized over every backend
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendEdgeCases:
    def test_is_a_vector_index(self, backend, rng):
        assert isinstance(small_index(backend), VectorIndex)

    def test_empty_index_lookup(self, backend, rng):
        index = small_index(backend)
        assert len(index) == 0
        assert index.search(np.ones(8), top_k=3) == [[]]
        assert index.search(np.ones((4, 8)), top_k=3) == [[], [], [], []]
        assert index.ids == []
        assert index.nbytes == 0

    def test_self_search_top1(self, backend, rng):
        index = small_index(backend)
        V = rng.normal(size=(32, 8))
        ids = index.add_batch(V)
        hits = index.search(V, top_k=1)
        assert [h[0].id for h in hits] == ids
        for h in hits:
            assert h[0].score == pytest.approx(1.0, abs=1e-5)

    def test_remove_then_add_id_reuse(self, backend, rng):
        index = small_index(backend)
        V = rng.normal(size=(24, 8))
        index.add_batch(V)
        index.remove(5)
        assert 5 not in index
        assert len(index) == 23
        replacement = rng.normal(size=8)
        assert index.add(replacement, id=5) == 5
        assert 5 in index
        np.testing.assert_allclose(index.get(5), replacement, atol=1e-6)
        # The reused id must be searchable and resolve to the new vector.
        hits = index.search(replacement, top_k=1)[0]
        assert hits and hits[0].id == 5

    def test_remove_unknown_raises(self, backend, rng):
        index = small_index(backend)
        index.add(rng.normal(size=8))
        with pytest.raises(KeyError):
            index.remove(99)

    def test_dim_mismatch_rejected(self, backend, rng):
        index = small_index(backend)
        index.add(rng.normal(size=8))
        with pytest.raises(ValueError):
            index.add(rng.normal(size=9))
        with pytest.raises(ValueError):
            index.search(rng.normal(size=9))
        with pytest.raises(ValueError):
            index.add_batch(rng.normal(size=(3, 9)))

    def test_rebuild_round_trip(self, backend, rng):
        index = small_index(backend)
        index.add_batch(rng.normal(size=(20, 8)))
        new_vectors = rng.normal(size=(12, 8))
        new_ids = list(range(100, 112))
        index.rebuild(new_vectors, ids=new_ids)
        assert len(index) == 12
        assert sorted(index.ids) == new_ids
        for i, id in enumerate(new_ids):
            np.testing.assert_allclose(index.get(id), new_vectors[i], atol=1e-6)
        hits = index.search(new_vectors, top_k=1)
        assert [h[0].id for h in hits] == new_ids
        # Round-trip again with the original contract: rebuild to empty.
        index.rebuild(np.empty((0, 8)), ids=[])
        assert len(index) == 0
        assert index.search(np.ones(8)) == [[]]

    def test_clear_and_reuse(self, backend, rng):
        index = small_index(backend)
        index.add_batch(rng.normal(size=(16, 8)))
        index.clear()
        assert len(index) == 0
        assert index.add(rng.normal(size=8)) == 0  # ids reset
        index.clear(reset_ids=False)
        assert index.add(rng.normal(size=8)) == 1  # ids keep counting

    def test_score_threshold_filters(self, backend, rng):
        index = small_index(backend)
        V = rng.normal(size=(16, 8))
        index.add_batch(V)
        hits = index.search(V[3], top_k=8, score_threshold=0.999)[0]
        assert hits and all(h.score >= 0.999 for h in hits)
        assert hits[0].id == 3

    def test_churn_consistency(self, backend, rng):
        """Random add/remove churn never desynchronises search from storage."""
        index = small_index(backend)
        V = rng.normal(size=(60, 8))
        live = {}
        for i in range(40):
            live[index.add(V[i])] = V[i]
        for id in list(live)[::3]:
            index.remove(id)
            del live[id]
        for i in range(40, 60):
            live[index.add(V[i])] = V[i]
        assert len(index) == len(live)
        assert sorted(index.ids) == sorted(live)
        for id, vec in live.items():
            hits = index.search(vec, top_k=1)[0]
            assert hits and hits[0].id == id


# --------------------------------------------------------------------------- #
# Recall floors on the standard workload (the parity-style test)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["ivf", "lsh"])
def test_recall_at_least_090_vs_flat(backend):
    n, dim, n_queries, top_k = 4_000, 32, 100, 5
    vectors, queries = make_ann_workload(n, dim=dim, n_queries=n_queries, seed=3)
    flat = FlatIndex(dim=dim)
    flat.add_batch(vectors)
    truth = flat.search(queries, top_k=top_k)
    index = make_index(backend, dim=dim)
    index.add_batch(vectors)
    got = index.search(queries, top_k=top_k)
    fractions = []
    for true_hits, got_hits in zip(truth, got):
        true_ids = {h.id for h in true_hits}
        fractions.append(len(true_ids & {h.id for h in got_hits}) / len(true_ids))
    assert float(np.mean(fractions)) >= 0.9


def test_ivf_untrained_matches_flat_exactly(rng=np.random.default_rng(11)):
    V = rng.normal(size=(50, 16))
    Q = rng.normal(size=(10, 16))
    flat = FlatIndex(dim=16)
    ivf = IVFIndex(dim=16, min_train_size=1_000)  # stays untrained
    flat.add_batch(V)
    ivf.add_batch(V)
    assert not ivf.is_trained
    for f_hits, i_hits in zip(flat.search(Q, top_k=5), ivf.search(Q, top_k=5)):
        assert [h.id for h in f_hits] == [h.id for h in i_hits]
        np.testing.assert_allclose(
            [h.score for h in f_hits], [h.score for h in i_hits], atol=1e-7
        )


def test_ivf_trains_and_repartitions(rng=np.random.default_rng(12)):
    ivf = IVFIndex(dim=8, min_train_size=32, nlist=4, nprobe=4, repartition_growth=2.0)
    ivf.add_batch(rng.normal(size=(31, 8)))
    assert not ivf.is_trained
    ivf.add(rng.normal(size=8))
    assert ivf.is_trained and ivf.nlist == 4
    # Growing past repartition_growth × trained size must retrain cleanly.
    ivf.add_batch(rng.normal(size=(40, 8)))
    assert ivf.is_trained
    assert len(ivf) == 72
    hits = ivf.search(ivf.get(0), top_k=1)[0]
    assert hits and hits[0].id == 0


def test_ivf_repartitions_under_plateau_churn(rng=np.random.default_rng(14)):
    """Eviction-style churn at constant size must still trigger retraining."""
    ivf = IVFIndex(dim=8, min_train_size=16, nlist=4, nprobe=4, repartition_growth=2.0)
    ids = ivf.add_batch(rng.normal(size=(16, 8)))
    assert ivf.is_trained
    first_training_marker = ivf._trained_size
    # Replace the whole corpus several times over without growing it.
    next_vecs = rng.normal(size=(64, 8))
    for i, vec in enumerate(next_vecs):
        ivf.remove(ids.pop(0))
        ids.append(ivf.add(vec))
    assert len(ivf) == 16
    # Mutations (64 adds + 64 removes) far exceed 2× the trained size, so
    # at least one retraining must have happened since the first.
    assert ivf._mutations_since_train < 32
    assert first_training_marker == 16  # sanity: the first training was at 16
    hits = ivf.search(next_vecs[-1], top_k=1)[0]
    assert hits and hits[0].id == ids[-1]


@pytest.mark.parametrize("backend", ["ivf", "lsh"])
def test_row_map_stays_bounded_under_churn(backend):
    """Monotonic entry ids must not grow the id→row table without bound."""
    rng = np.random.default_rng(15)
    index = small_index(backend)
    ids = index.add_batch(rng.normal(size=(64, 8)))
    # Sustained evict-oldest/insert-newest churn: ids only ever increase.
    for _ in range(5_000):
        index.remove(ids.pop(0))
        ids.append(index.add(rng.normal(size=8)))
    assert len(index) == 64
    # Lifetime-max id is ~5k, but the live span is 64 — the map must have
    # re-anchored instead of keeping a slot for every id ever issued.
    assert index._row_of.slots <= 4 * 1024
    for id in (ids[0], ids[-1]):
        hits = index.search(index.get(id), top_k=1)[0]
        assert hits and hits[0].id == id


@pytest.mark.parametrize("backend", ["ivf", "lsh"])
def test_row_map_handles_id_reuse_below_compacted_base(backend):
    """Explicit re-adds of old (low) ids stay correct after map compaction."""
    rng = np.random.default_rng(16)
    index = small_index(backend)
    ids = index.add_batch(rng.normal(size=(64, 8)))
    for _ in range(2_000):  # churn enough to re-anchor the map upward
        index.remove(ids.pop(0))
        ids.append(index.add(rng.normal(size=8)))
    low_vec = rng.normal(size=8)
    assert index.add(low_vec, id=0) == 0  # id 0 is far below any live id
    hits = index.search(low_vec, top_k=1)[0]
    assert hits and hits[0].id == 0
    for id in (0, ids[-1]):  # older entries must remain reachable too
        got = index.search(index.get(id), top_k=1)[0]
        assert got and got[0].id == id


def test_lsh_is_deterministic_per_seed(rng=np.random.default_rng(13)):
    V = rng.normal(size=(64, 8))
    Q = rng.normal(size=(8, 8))
    a = LSHIndex(dim=8, n_tables=4, n_bits=6, seed=9)
    b = LSHIndex(dim=8, n_tables=4, n_bits=6, seed=9)
    a.add_batch(V)
    b.add_batch(V)
    for ha, hb in zip(a.search(Q, top_k=3), b.search(Q, top_k=3)):
        assert [(h.id, h.score) for h in ha] == [(h.id, h.score) for h in hb]


# --------------------------------------------------------------------------- #
# Caches on approximate backends
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_meancache_runs_on_any_backend(backend):
    encoder = make_tiny_encoder()
    cache = MeanCache(
        encoder,
        MeanCacheConfig(
            similarity_threshold=0.8,
            index_backend=backend,
            index_params=SMALL_PARAMS[backend],
        ),
    )
    cache.insert("how do I sort a list in python", "use sorted()")
    cache.insert("what is the capital of france", "paris")
    hit = cache.lookup("how do I sort a list in python")
    assert hit.hit and hit.response == "use sorted()"
    miss = cache.lookup("completely unrelated gardening question")
    assert not miss.hit
    assert type(cache.index).__name__ == {
        "flat": "FlatIndex", "ivf": "IVFIndex", "lsh": "LSHIndex"
    }[backend]


def test_meancache_rejects_unknown_backend():
    with pytest.raises(ValueError, match="available"):
        MeanCacheConfig(index_backend="bogus")


def test_gptcache_runs_on_approximate_backend():
    cache = GPTCache(
        make_tiny_encoder(),
        GPTCacheConfig(index_backend="lsh", index_params=SMALL_PARAMS["lsh"]),
    )
    cache.insert("what's the weather like today", "sunny", user_id="u1")
    decision = cache.lookup("what's the weather like today")
    assert decision.hit
    assert type(cache.index).__name__ == "LSHIndex"


def test_gptcache_rejects_unknown_backend():
    with pytest.raises(ValueError, match="available"):
        GPTCacheConfig(index_backend="bogus")


def test_explicit_index_instance_wins_over_config():
    prebuilt = IVFIndex(dim=None, min_train_size=8, nlist=2, nprobe=2)
    cache = MeanCache(
        make_tiny_encoder(),
        MeanCacheConfig(index_backend="flat"),
        index=prebuilt,
    )
    assert cache.index is prebuilt


def test_injected_index_must_be_empty():
    """Cache entry ids and index ids share a namespace, so a pre-populated
    index would hold vectors unreachable by entry lookups — rejected."""
    populated = FlatIndex(dim=4)
    populated.add([1.0, 0.0, 0.0, 0.0])
    with pytest.raises(ValueError, match="empty"):
        MeanCache(make_tiny_encoder(), index=populated)
    with pytest.raises(ValueError, match="empty"):
        GPTCache(make_tiny_encoder(), index=populated)


def test_lsh_stored_keys_do_not_pin_the_batch_matrix():
    """Per-id key rows must own their memory: a view into the add_batch key
    matrix would keep the whole batch allocation alive while any single id
    from the batch survives eviction."""
    index = make_index("lsh", dim=8, **SMALL_PARAMS["lsh"])
    index.add_batch(np.random.default_rng(17).normal(size=(32, 8)))
    assert all(keys.base is None for keys in index._keys_of.values())


def test_row_map_anchors_after_clear_with_high_ids():
    """A rebuild late in a cache's life re-adds with large monotonic ids;
    the freshly cleared map must size by id span, not id magnitude."""
    rng = np.random.default_rng(18)
    index = make_index("lsh", dim=8, **SMALL_PARAMS["lsh"])
    index.add_batch(rng.normal(size=(32, 8)))
    high_ids = list(range(10_000_000, 10_000_032))
    index.rebuild(rng.normal(size=(32, 8)), ids=high_ids)
    assert sorted(index.ids) == high_ids
    assert index._row_of.slots <= 64
    hits = index.search(index.get(high_ids[0]), top_k=1)[0]
    assert hits and hits[0].id == high_ids[0]
