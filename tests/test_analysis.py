"""Tests for the repro.analysis static lint engine and its project rules.

Each rule gets fixture snippets (known-violation + known-clean) fed through
``AnalysisEngine.run_source``; suppression comments and the committed
baseline get behavioural tests; and a meta-test asserts the live repo is
violation-free modulo the committed baseline — the same gate CI runs via
``python -m repro.analysis src/repro``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisEngine, Baseline, Finding
from repro.analysis.engine import BASELINE_NAME, find_baseline

REPO_ROOT = Path(__file__).resolve().parents[1]
ENGINE = AnalysisEngine()


def run(source: str, rel: str = "repro/core/sample.py"):
    """Analyze a dedented snippet as if it lived at ``rel``."""
    return ENGINE.run_source(textwrap.dedent(source), rel=rel)


def rules_fired(source: str, rel: str = "repro/core/sample.py"):
    """The set of rule ids firing on the snippet."""
    return {finding.rule for finding in run(source, rel=rel)}


# --------------------------------------------------------------------------- #
# RPL001 concurrency contract
# --------------------------------------------------------------------------- #
class TestRPL001:
    def test_lock_creation_in_index_module_fires(self):
        snippet = """
        import threading

        class MyIndex:
            def __init__(self):
                self.lock = threading.Lock()
        """
        assert "RPL001" in rules_fired(snippet, rel="repro/index/myindex.py")

    def test_from_import_lock_in_index_module_fires(self):
        snippet = """
        from threading import RLock

        GUARD = RLock()
        """
        assert "RPL001" in rules_fired(snippet, rel="repro/index/myindex.py")

    def test_lock_creation_outside_index_is_fine(self):
        snippet = """
        import threading

        lock = threading.Lock()
        """
        assert "RPL001" not in rules_fired(snippet, rel="repro/serving/other.py")

    def test_unlocked_mutation_in_server_fires(self):
        snippet = """
        def flush(shard, events):
            return shard.executor.execute(events)
        """
        assert "RPL001" in rules_fired(snippet, rel="repro/serving/server.py")

    def test_mutation_under_shard_lock_is_fine(self):
        snippet = """
        def flush(shard, events):
            with shard.lock:
                return shard.executor.execute(events)
        """
        assert "RPL001" not in rules_fired(snippet, rel="repro/serving/server.py")

    def test_non_cache_receiver_is_fine(self):
        # asyncio.Event.clear() shares a name with index.clear() but is not
        # a cache-ish receiver.
        snippet = """
        def reset(self):
            self._arrival.clear()
        """
        assert "RPL001" not in rules_fired(snippet, rel="repro/serving/server.py")

    def test_cache_adapter_methods_exempt(self):
        snippet = """
        class CacheAdapter:
            def lookup(self, cache, queries):
                return cache.lookup_batch(queries)
        """
        assert "RPL001" not in rules_fired(snippet, rel="repro/serving/server.py")


# --------------------------------------------------------------------------- #
# RPL002 determinism
# --------------------------------------------------------------------------- #
class TestRPL002:
    def test_time_time_fires(self):
        snippet = """
        import time

        def stamp():
            return time.time()
        """
        assert "RPL002" in rules_fired(snippet)

    def test_from_imported_time_fires(self):
        snippet = """
        from time import time

        def stamp():
            return time()
        """
        assert "RPL002" in rules_fired(snippet)

    def test_perf_counter_is_fine(self):
        # Duration measurement is not a determinism input.
        snippet = """
        import time

        def measure():
            start = time.perf_counter()
            return time.perf_counter() - start, time.monotonic()
        """
        assert "RPL002" not in rules_fired(snippet)

    def test_clock_default_reference_is_fine(self):
        # Referencing time.time as an injectable default is the sanctioned
        # pattern; only *calls* are flagged.
        snippet = """
        import time

        def __init__(self, clock=time.time):
            self.clock = clock
        """
        assert "RPL002" not in rules_fired(snippet)

    def test_datetime_now_fires(self):
        snippet = """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
        assert "RPL002" in rules_fired(snippet)

    def test_unseeded_default_rng_fires_seeded_is_fine(self):
        bad = """
        import numpy as np

        def draw():
            return np.random.default_rng().normal()
        """
        good = """
        import numpy as np

        def draw(seed):
            return np.random.default_rng(seed).normal()
        """
        assert "RPL002" in rules_fired(bad)
        assert "RPL002" not in rules_fired(good)

    def test_global_numpy_rng_fires(self):
        snippet = """
        import numpy as np

        def draw():
            return np.random.rand(3)
        """
        assert "RPL002" in rules_fired(snippet)

    def test_stdlib_random_fires(self):
        snippet = """
        import random

        def draw():
            return random.random()
        """
        assert "RPL002" in rules_fired(snippet)


# --------------------------------------------------------------------------- #
# RPL003 hot-path allocation
# --------------------------------------------------------------------------- #
class TestRPL003:
    def test_allocator_in_search_fires(self):
        snippet = """
        import numpy as np

        def search(chunks):
            return np.concatenate(chunks)
        """
        assert "RPL003" in rules_fired(snippet, rel="repro/index/myindex.py")

    def test_allocator_reachable_via_helper_fires(self):
        snippet = """
        import numpy as np

        def _merge(chunks):
            return np.vstack(chunks)

        def lookup_batch(chunks):
            return _merge(chunks)
        """
        assert "RPL003" in rules_fired(snippet, rel="repro/index/myindex.py")

    def test_allocator_off_hot_path_is_fine(self):
        snippet = """
        import numpy as np

        def save(chunks):
            return np.vstack(chunks)
        """
        assert "RPL003" not in rules_fired(snippet, rel="repro/index/myindex.py")

    def test_out_of_scope_module_is_fine(self):
        snippet = """
        import numpy as np

        def search(chunks):
            return np.concatenate(chunks)
        """
        assert "RPL003" not in rules_fired(snippet, rel="repro/metrics/report.py")


# --------------------------------------------------------------------------- #
# RPL004 snapshot I/O discipline
# --------------------------------------------------------------------------- #
class TestRPL004:
    def test_bare_write_in_persistence_code_fires(self):
        snippet = """
        def save(path, payload):
            with open(path, "w") as f:
                f.write(payload)
        """
        assert "RPL004" in rules_fired(snippet, rel="repro/core/mystore.py")

    def test_np_save_fires(self):
        snippet = """
        import numpy as np

        def save(path, arr):
            np.save(path, arr)
        """
        assert "RPL004" in rules_fired(snippet, rel="repro/index/mysnap.py")

    def test_write_inside_atomic_stage_is_fine(self):
        snippet = """
        from repro.index.snapshot import atomic_snapshot_dir

        def save(path, payload):
            with atomic_snapshot_dir(path) as stage:
                with open(stage / "data.json", "w") as f:
                    f.write(payload)
        """
        assert "RPL004" not in rules_fired(snippet, rel="repro/core/mystore.py")

    def test_read_mode_is_fine(self):
        snippet = """
        def load(path):
            with open(path, "r") as f:
                return f.read()
        """
        assert "RPL004" not in rules_fired(snippet, rel="repro/core/mystore.py")

    def test_out_of_scope_module_is_fine(self):
        snippet = """
        def save(path, payload):
            with open(path, "w") as f:
                f.write(payload)
        """
        assert "RPL004" not in rules_fired(snippet, rel="repro/metrics/report.py")


# --------------------------------------------------------------------------- #
# RPL005 public-API hygiene
# --------------------------------------------------------------------------- #
class TestRPL005:
    def test_missing_docstring_fires(self):
        snippet = """
        def exported(x: int) -> int:
            return x
        """
        assert "RPL005" in rules_fired(snippet)

    def test_missing_annotations_fire(self):
        snippet = """
        def exported(x):
            \"\"\"Documented but untyped.\"\"\"
            return x
        """
        findings = run(snippet)
        messages = [f.message for f in findings if f.rule == "RPL005"]
        assert any("parameter annotations" in m for m in messages)
        assert any("return annotation" in m for m in messages)

    def test_clean_function_passes(self):
        snippet = """
        def exported(x: int) -> int:
            \"\"\"Documented and typed.\"\"\"
            return x
        """
        assert "RPL005" not in rules_fired(snippet)

    def test_private_symbols_exempt(self):
        snippet = """
        def _helper(x):
            return x

        class _Private:
            def method(self, x):
                return x
        """
        assert "RPL005" not in rules_fired(snippet)

    def test_public_method_needs_docstring_not_annotations(self):
        snippet = """
        class Exported:
            \"\"\"Documented.\"\"\"

            def method(self, x):
                return x
        """
        findings = [f for f in run(snippet) if f.rule == "RPL005"]
        assert len(findings) == 1
        assert "docstring" in findings[0].message


# --------------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------------- #
class TestSuppression:
    def test_same_line_suppression(self):
        snippet = """
        import time

        def stamp():
            return time.time()  # repro: ignore[RPL002]
        """
        assert "RPL002" not in rules_fired(snippet)

    def test_comment_line_above_suppression(self):
        snippet = """
        import time

        def stamp():
            # wall-time needed here; reviewed  # repro: ignore[RPL002]
            return time.time()
        """
        assert "RPL002" not in rules_fired(snippet)

    def test_wrong_rule_id_does_not_suppress(self):
        snippet = """
        import time

        def stamp():
            return time.time()  # repro: ignore[RPL004]
        """
        assert "RPL002" in rules_fired(snippet)

    def test_bare_ignore_suppresses_all_rules(self):
        snippet = """
        import time

        def stamp() -> float:
            \"\"\"Documented, so only the RPL002 line needs suppressing.\"\"\"
            return time.time()  # repro: ignore
        """
        assert rules_fired(snippet) == set()


# --------------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------------- #
def _finding(rule="RPL005", path="repro/x.py", message="msg", line=1):
    return Finding(rule=rule, path=path, line=line, col=0, message=message)


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        target = tmp_path / BASELINE_NAME
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.counts == baseline.counts

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").counts == {}

    def test_split_respects_counts(self):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        # Three occurrences of the baselined fingerprint: two absorbed, one new.
        findings = [_finding(line=n) for n in (1, 9, 30)]
        new, old = baseline.split(findings)
        assert len(old) == 2 and len(new) == 1

    def test_unrelated_finding_is_new(self):
        baseline = Baseline.from_findings([_finding()])
        new, old = baseline.split([_finding(message="other msg")])
        assert len(new) == 1 and not old

    def test_fingerprint_is_line_independent(self):
        baseline = Baseline.from_findings([_finding(line=10)])
        new, old = baseline.split([_finding(line=999)])
        assert not new and len(old) == 1


# --------------------------------------------------------------------------- #
# Engine plumbing + live-repo meta-test
# --------------------------------------------------------------------------- #
class TestEngine:
    def test_duplicate_rule_ids_rejected(self):
        rule = AnalysisEngine().rules[0]
        with pytest.raises(ValueError):
            AnalysisEngine(rules=[rule, rule])

    def test_unparsable_file_reports_rpl000(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = AnalysisEngine().run_paths([tmp_path])
        assert [f.rule for f in report.findings] == ["RPL000"]

    def test_json_report_shape(self):
        report = AnalysisEngine().run_paths([])
        data = json.loads(report.to_json())
        assert data["ok"] is True
        assert data["findings"] == []

    def test_live_repo_clean_modulo_baseline(self):
        """The repo gate: no new findings beyond the committed baseline."""
        src = REPO_ROOT / "src" / "repro"
        baseline_path = find_baseline([src])
        assert baseline_path is not None, "committed baseline.json not found"
        report = AnalysisEngine().run_paths([src], baseline=Baseline.load(baseline_path))
        assert report.ok, "new findings:\n" + report.to_text()

    def test_committed_baseline_not_stale(self):
        """Every baselined fingerprint still corresponds to a live finding.

        Guards against the baseline silently masking *future* regressions:
        fixing a baselined finding should shrink the baseline too.
        """
        src = REPO_ROOT / "src" / "repro"
        baseline = Baseline.load(find_baseline([src]))
        report = AnalysisEngine().run_paths([src], baseline=None)
        live = Baseline.from_findings(report.findings).counts
        stale = {
            key: count
            for key, count in baseline.counts.items()
            if live.get(key, 0) < count
        }
        assert not stale, f"baseline entries no longer firing: {sorted(stale)}"
