"""Unit tests for cosine similarity and top-k semantic search."""

import numpy as np
import pytest

from repro.embeddings.similarity import (
    SearchHit,
    cosine_similarity,
    pairwise_cosine,
    semantic_search,
)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_opposite_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([-1.0, 0.0])) == pytest.approx(-1.0)

    def test_matrix_output_shape(self, rng):
        A = rng.normal(size=(3, 5))
        B = rng.normal(size=(4, 5))
        assert cosine_similarity(A, B).shape == (3, 4)

    def test_scale_invariance(self, rng):
        a = rng.normal(size=8)
        b = rng.normal(size=8)
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(10 * a, 0.1 * b))

    def test_zero_vector_is_safe(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == pytest.approx(0.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(3), np.ones(4))


class TestPairwiseCosine:
    def test_matches_elementwise_cosine(self, rng):
        A = rng.normal(size=(6, 7))
        B = rng.normal(size=(6, 7))
        sims = pairwise_cosine(A, B)
        for i in range(6):
            assert sims[i] == pytest.approx(cosine_similarity(A[i], B[i]))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            pairwise_cosine(rng.normal(size=(3, 4)), rng.normal(size=(4, 4)))


class TestSemanticSearch:
    def test_finds_exact_match_first(self, rng):
        corpus = rng.normal(size=(50, 16))
        query = corpus[17]
        hits = semantic_search(query, corpus, top_k=3)[0]
        assert hits[0].index == 17
        assert hits[0].score == pytest.approx(1.0)

    def test_scores_sorted_descending(self, rng):
        corpus = rng.normal(size=(30, 8))
        hits = semantic_search(rng.normal(size=8), corpus, top_k=10)[0]
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_capped_by_corpus_size(self, rng):
        corpus = rng.normal(size=(4, 8))
        hits = semantic_search(rng.normal(size=8), corpus, top_k=10)[0]
        assert len(hits) == 4

    def test_threshold_filters_hits(self, rng):
        corpus = rng.normal(size=(20, 8))
        hits = semantic_search(rng.normal(size=8), corpus, top_k=20, score_threshold=2.0)[0]
        assert hits == []

    def test_empty_corpus(self):
        assert semantic_search(np.ones(4), np.zeros((0, 4)), top_k=3) == [[]]

    def test_multiple_queries(self, rng):
        corpus = rng.normal(size=(25, 8))
        queries = rng.normal(size=(3, 8))
        results = semantic_search(queries, corpus, top_k=2)
        assert len(results) == 3
        assert all(len(r) == 2 for r in results)

    def test_chunked_search_matches_unchunked(self, rng):
        corpus = rng.normal(size=(200, 8))
        query = rng.normal(size=8)
        full = semantic_search(query, corpus, top_k=5)[0]
        chunked = semantic_search(query, corpus, top_k=5, chunk_size=17)[0]
        assert [h.index for h in full] == [h.index for h in chunked]
        assert np.allclose([h.score for h in full], [h.score for h in chunked])

    def test_invalid_top_k(self, rng):
        with pytest.raises(ValueError):
            semantic_search(np.ones(4), rng.normal(size=(5, 4)), top_k=0)

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            semantic_search(np.ones(3), rng.normal(size=(5, 4)))

    def test_hit_is_named_tuple_like(self, rng):
        hits = semantic_search(np.ones(4), np.eye(4), top_k=1)[0]
        assert isinstance(hits[0], SearchHit)
        assert isinstance(hits[0].index, int)
