"""Golden-decision collector for the pipeline parity regression test.

The lookup pipeline refactor (``repro.core.pipeline``) must not change a
single hit/miss decision of any experiment.  This module runs the three
decision-producing experiments — Table I (standalone), Table I (contextual)
and Figure 5 — at ``quick`` scale and serializes every system's decision
stream to a canonical JSON structure:

* ``hits``   — the hit/miss bits as a ``"0"/"1"`` string (probe order);
* ``sims``   — each decision's similarity as ``float.hex()`` (bit-exact);
* ``matches``— the matched cache entry id (MeanCache) or matched query text
  (GPTCache), ``None`` on a miss.

``tests/fixtures/golden_decisions_quick.json`` was generated from the
pre-pipeline implementation (the seed's monolithic lookup loops) via::

    PYTHONPATH=src:tests python -m golden_decisions

and the parity test asserts that the current code reproduces it byte for
byte.  Regenerate only when a deliberate, documented decision-level change
lands.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

FIXTURE_PATH = Path(__file__).resolve().parent / "fixtures" / "golden_decisions_quick.json"

GOLDEN_SCALE = "quick"
GOLDEN_SEED = 0


def _summarize(decisions, matched_key) -> Dict[str, object]:
    """Canonical JSON summary of one system's decision stream."""
    hits = "".join("1" if d.hit else "0" for d in decisions)
    sims = [float(d.similarity).hex() for d in decisions]
    matches: List[Optional[object]] = [matched_key(d) if d.hit else None for d in decisions]
    return {"hits": hits, "sims": sims, "matches": matches}


def _meancache_match(decision):
    return decision.entry_id


def _gptcache_match(decision):
    return decision.matched_query


def collect_decision_summary(bundle=None) -> Dict[str, object]:
    """Run table1 / contextual / fig05 and summarize every decision stream."""
    from repro.experiments.common import cached_system_bundle, resolve_scale
    from repro.experiments.contextual import run_contextual
    from repro.experiments.fig05_latency import run_fig05
    from repro.experiments.table1 import (
        evaluate_gptcache_on_workload,
        evaluate_meancache_on_workload,
        run_table1,
    )
    from repro.baselines.gptcache import GPTCache, GPTCacheConfig
    from repro.core.cache import MeanCache, MeanCacheConfig
    from repro.datasets.semantic_pairs import generate_cache_workload

    resolved = resolve_scale(GOLDEN_SCALE)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=GOLDEN_SEED, train_albert=True)
    summary: Dict[str, object] = {"scale": resolved.name, "seed": GOLDEN_SEED}

    # --- Table I (standalone): re-run the workloads capturing raw decisions.
    workload = generate_cache_workload(
        n_cached=resolved.n_cached,
        n_probes=resolved.n_probes,
        duplicate_fraction=0.3,
        corpus=bundle.corpus,
        seed=GOLDEN_SEED + 100,
    )
    table1: Dict[str, object] = {}
    gpt = GPTCache(bundle.gptcache_encoder(), GPTCacheConfig(similarity_threshold=0.7))
    gpt.populate(workload.cached_queries)
    table1["GPTCache"] = _summarize(
        gpt.lookup_batch([p.text for p in workload.probes]), _gptcache_match
    )
    for label, trained in (
        ("MeanCache (MPNet)", bundle.meancache_mpnet),
        ("MeanCache (Albert)", bundle.meancache_albert),
    ):
        if trained is None:
            continue
        mc = MeanCache(
            trained.encoder.clone(),
            MeanCacheConfig(similarity_threshold=trained.threshold, verify_context=True),
        )
        mc.populate(workload.cached_queries)
        table1[label] = _summarize(
            mc.lookup_batch([p.text for p in workload.probes]), _meancache_match
        )
    summary["table1"] = table1

    # --- Table I (contextual): capture the experiment's own predictions.
    contextual = run_contextual(resolved.name, seed=GOLDEN_SEED, bundle=bundle)
    summary["contextual"] = {
        name: {"hits": "".join("1" if p else "0" for p in ev.predictions)}
        for name, ev in contextual.systems.items()
    }

    # --- Figure 5: per-probe hit/miss decisions of the two cached systems.
    fig05 = run_fig05(resolved.name, seed=GOLDEN_SEED, bundle=bundle)
    summary["fig05"] = {
        name: {"hits": "".join("1" if p else "0" for p in trace.predictions)}
        for name, trace in fig05.traces.items()
        if trace.predictions is not None
    }
    return summary


def main() -> None:
    summary = collect_decision_summary()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(summary, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
