"""Unit tests for the tokenizer."""

import pytest

from repro.embeddings.tokenizer import DEFAULT_STOPWORDS, Tokenizer, TokenizerConfig


class TestTokenizerConfig:
    def test_default_config_is_valid(self):
        cfg = TokenizerConfig()
        assert cfg.char_ngram_min <= cfg.char_ngram_max

    def test_invalid_ngram_range_rejected(self):
        with pytest.raises(ValueError):
            TokenizerConfig(char_ngram_min=5, char_ngram_max=3)

    def test_zero_min_ngram_rejected(self):
        with pytest.raises(ValueError):
            TokenizerConfig(char_ngram_min=0)


class TestWords:
    def test_lowercases(self):
        tok = Tokenizer()
        assert "python" in tok.words("PYTHON Plotting")

    def test_removes_stopwords(self):
        tok = Tokenizer()
        words = tok.words("what is the best way to sort a list")
        assert "the" not in words
        assert "sort" in words and "list" in words

    def test_keeps_stopwords_when_disabled(self):
        tok = Tokenizer(TokenizerConfig(remove_stopwords=False))
        assert "the" in tok.words("the list")

    def test_all_stopword_query_falls_back_to_raw_words(self):
        tok = Tokenizer()
        # Every token is a stop word; the tokenizer must not return nothing.
        words = tok.words("what is this")
        assert words, "a non-empty query must produce at least one token"

    def test_punctuation_is_not_a_token(self):
        tok = Tokenizer()
        words = tok.words("sort, a list!?")
        assert all(w.isalnum() or "'" in w for w in words)

    def test_empty_string(self):
        assert Tokenizer().words("") == []


class TestCharNgrams:
    def test_boundary_markers_present(self):
        tok = Tokenizer()
        grams = tok.char_ngrams("cat")
        assert "#ca" in grams and "at#" in grams

    def test_disabled_ngrams(self):
        tok = Tokenizer(TokenizerConfig(char_ngram_max=0))
        assert tok.char_ngrams("python") == []

    def test_short_word_shorter_than_ngram(self):
        tok = Tokenizer(TokenizerConfig(char_ngram_min=4, char_ngram_max=4))
        # marked form "#ab#" has length 4 -> exactly one gram
        assert tok.char_ngrams("ab") == ["#ab#"]

    def test_ngram_lengths_respected(self):
        cfg = TokenizerConfig(char_ngram_min=3, char_ngram_max=4)
        tok = Tokenizer(cfg)
        grams = tok.char_ngrams("sorting")
        assert all(3 <= len(g) <= 4 for g in grams)


class TestTokenize:
    def test_char_grams_are_prefixed(self):
        tok = Tokenizer()
        tokens = tok.tokenize("sort")
        assert "sort" in tokens
        assert any(t.startswith("cg:") for t in tokens)

    def test_deterministic(self):
        tok = Tokenizer()
        text = "How can I extend the battery life of my phone?"
        assert tok.tokenize(text) == tok.tokenize(text)

    def test_batch_matches_single(self):
        tok = Tokenizer()
        texts = ["sort a list", "bake a cake"]
        assert tok.tokenize_batch(texts) == [tok.tokenize(t) for t in texts]

    def test_shared_words_give_shared_tokens(self):
        tok = Tokenizer()
        t1 = set(tok.tokenize("sort a python list"))
        t2 = set(tok.tokenize("order a python list"))
        assert "python" in t1 & t2

    def test_scaffolding_words_are_stopwords(self):
        # Question scaffolding must not contribute tokens (it is shared by
        # nearly every query and would inflate unrelated similarity).
        assert {"how", "best", "way", "please"} <= DEFAULT_STOPWORDS
