"""Tests for the incremental vector index (repro.index).

The load-bearing property is *parity*: FlatIndex.search must agree with the
brute-force :func:`semantic_search` reference on the vectors it currently
holds — including after deletions (swap-with-last) and capacity growth —
up to the float32 storage tolerance.
"""

import numpy as np
import pytest

from conftest import make_tiny_encoder
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.embeddings.similarity import semantic_search
from repro.index import FlatIndex, IndexHit, VectorIndex

SCORE_ATOL = 1e-5  # float32 storage vs float64 reference


def assert_parity(index, vectors, ids, queries, top_k=5):
    """index.search must match brute-force search over (vectors, ids)."""
    got = index.search(queries, top_k=top_k)
    ref = semantic_search(queries, vectors, top_k=top_k)
    assert len(got) == len(ref)
    for got_hits, ref_hits in zip(got, ref):
        assert len(got_hits) == len(ref_hits)
        np.testing.assert_allclose(
            [h.score for h in got_hits], [h.score for h in ref_hits], atol=SCORE_ATOL
        )
        assert [h.id for h in got_hits] == [ids[h.index] for h in ref_hits]


class TestFlatIndexBasics:
    def test_is_a_vector_index(self):
        assert isinstance(FlatIndex(), VectorIndex)

    def test_empty_index_searches_empty(self):
        index = FlatIndex(dim=8)
        assert len(index) == 0
        assert index.search(np.ones(8), top_k=3) == [[]]
        assert index.search(np.ones((4, 8)), top_k=3) == [[], [], [], []]
        assert index.ids == []
        assert index.nbytes == 0

    def test_remove_from_empty_raises(self):
        with pytest.raises(KeyError):
            FlatIndex(dim=4).remove(0)

    def test_get_unknown_id_raises(self):
        index = FlatIndex(dim=4)
        index.add(np.ones(4))
        with pytest.raises(KeyError):
            index.get(99)

    def test_auto_ids_are_sequential(self, rng):
        index = FlatIndex()
        ids = [index.add(rng.normal(size=8)) for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_explicit_and_duplicate_ids(self, rng):
        index = FlatIndex()
        index.add(rng.normal(size=8), id=42)
        with pytest.raises(ValueError):
            index.add(rng.normal(size=8), id=42)
        # Auto ids continue past explicit ones.
        assert index.add(rng.normal(size=8)) == 43

    def test_dim_mismatch_rejected(self, rng):
        index = FlatIndex()
        index.add(rng.normal(size=8))
        with pytest.raises(ValueError):
            index.add(rng.normal(size=9))
        with pytest.raises(ValueError):
            index.search(rng.normal(size=9))

    def test_invalid_top_k(self, rng):
        index = FlatIndex()
        index.add(rng.normal(size=4))
        with pytest.raises(ValueError):
            index.search(np.ones(4), top_k=0)

    def test_get_roundtrips_raw_vector(self, rng):
        index = FlatIndex()
        v = rng.normal(size=16) * 3.7
        vid = index.add(v)
        np.testing.assert_allclose(index.get(vid), v, atol=1e-5)
        assert vid in index
        assert 123 not in index

    def test_zero_vector_is_safe(self):
        index = FlatIndex(dim=4)
        zid = index.add(np.zeros(4))
        hits = index.search(np.ones(4), top_k=1)[0]
        assert hits[0].id == zid
        assert hits[0].score == pytest.approx(0.0, abs=1e-6)

    def test_scores_clipped_to_unit_range(self, rng):
        index = FlatIndex()
        v = rng.normal(size=64)
        index.add(v)
        score = index.search(v, top_k=1)[0][0].score
        assert score <= 1.0
        assert score == pytest.approx(1.0, abs=1e-6)

    def test_threshold_filters(self, rng):
        index = FlatIndex()
        for _ in range(10):
            index.add(rng.normal(size=8))
        assert index.search(rng.normal(size=8), top_k=10, score_threshold=2.0) == [[]]

    def test_clear_resets(self, rng):
        index = FlatIndex()
        index.add_batch(rng.normal(size=(10, 8)))
        index.clear()
        assert len(index) == 0 and index.nbytes == 0
        assert index.add(rng.normal(size=8)) == 0  # ids reset too

    def test_clear_unpins_data_driven_dim(self, rng):
        index = FlatIndex()
        index.add(rng.normal(size=8))
        index.clear()
        index.add(rng.normal(size=16))  # a new dim is acceptable after clear
        assert index.dim == 16

    def test_clear_keeps_constructor_dim(self, rng):
        index = FlatIndex(dim=8)
        index.add(rng.normal(size=8))
        index.clear()
        with pytest.raises(ValueError):
            index.add(rng.normal(size=16))

    def test_matrix_nbytes_excludes_bookkeeping(self, rng):
        index = FlatIndex()
        index.add_batch(rng.normal(size=(10, 8)))
        assert index.matrix_nbytes == 10 * 8 * 4  # float32 rows only
        assert index.nbytes > index.matrix_nbytes  # norms + ids on top

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_nbytes_accounting_pinned(self, rng, dtype):
        """nbytes = matrix + one norm + one id per live row — exactly.

        Pins the storage-accounting identity so the norm column can neither
        be double-counted (inside the matrix term) nor silently dropped, for
        both storage dtypes and across growth and deletion.
        """
        dim, itemsize = 8, np.dtype(dtype).itemsize
        index = FlatIndex(dim=dim, dtype=dtype, initial_capacity=4)
        per_row = dim * itemsize + itemsize + 8  # row + norm + int64 id
        for n in (3, 4, 9, 64, 100):  # crosses several capacity doublings
            while len(index) < n:
                index.add(rng.normal(size=dim))
            assert index.nbytes == n * per_row
            assert index.matrix_nbytes == n * dim * itemsize
            assert index.nbytes - index.matrix_nbytes == n * (itemsize + 8)
        index.remove(index.ids[0])
        assert index.nbytes == 99 * per_row
        # The allocation itself is larger (capacity doubling) but must obey
        # the same per-row formula at capacity rows.
        assert index.allocated_nbytes == index.capacity * per_row
        assert index.allocated_nbytes >= index.nbytes
        index.clear()
        assert index.nbytes == 0 and index.allocated_nbytes == 0


class TestFlatIndexParity:
    def test_matches_brute_force_on_random_corpus(self, rng):
        X = rng.normal(size=(300, 24))
        index = FlatIndex()
        ids = index.add_batch(X)
        assert_parity(index, X, ids, rng.normal(size=(7, 24)), top_k=5)

    def test_matches_after_growth_past_capacity(self, rng):
        index = FlatIndex(initial_capacity=4)
        X = rng.normal(size=(100, 16))
        ids = [index.add(x) for x in X]
        assert index.capacity >= 100
        assert_parity(index, X, ids, rng.normal(size=(5, 16)), top_k=4)

    def test_matches_after_deletions(self, rng):
        X = rng.normal(size=(120, 16))
        index = FlatIndex()
        ids = index.add_batch(X)
        removed = set(rng.choice(ids, size=40, replace=False).tolist())
        for rid in removed:
            index.remove(rid)
        keep = [i for i in ids if i not in removed]
        assert sorted(index.ids) == sorted(keep)
        assert_parity(index, X[keep], keep, rng.normal(size=(6, 16)), top_k=5)

    def test_matches_after_interleaved_add_remove(self, rng):
        index = FlatIndex()
        live = {}
        for step in range(200):
            if live and rng.random() < 0.35:
                victim = int(rng.choice(list(live)))
                index.remove(victim)
                del live[victim]
            else:
                v = rng.normal(size=12)
                live[index.add(v)] = v
        keep = sorted(live)
        assert sorted(index.ids) == keep
        assert_parity(
            index, np.array([live[i] for i in keep]), keep, rng.normal(size=(4, 12)), top_k=3
        )

    def test_remove_down_to_empty_then_refill(self, rng):
        index = FlatIndex()
        ids = index.add_batch(rng.normal(size=(5, 8)))
        for i in ids:
            index.remove(i)
        assert len(index) == 0
        assert index.search(np.ones(8), top_k=2) == [[]]
        X = rng.normal(size=(10, 8))
        new_ids = index.add_batch(X)
        assert set(new_ids).isdisjoint(ids)  # ids are never recycled
        assert_parity(index, X, new_ids, rng.normal(size=(3, 8)), top_k=2)

    def test_rebuild_replaces_contents(self, rng):
        index = FlatIndex()
        index.add_batch(rng.normal(size=(20, 8)))
        Y = rng.normal(size=(15, 32))
        ids = [100 + i for i in range(15)]
        index.rebuild(Y, ids=ids)
        assert len(index) == 15 and index.dim == 32
        assert_parity(index, Y, ids, rng.normal(size=(4, 32)), top_k=3)

    def test_rebuild_respects_constructor_dim(self, rng):
        """A constructor-pinned dim constrains rebuild, matching clear()."""
        index = FlatIndex(dim=4)
        index.add_batch(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            index.rebuild(rng.normal(size=(2, 3)), ids=[0, 1])
        assert index.dim == 4
        # A data-driven dim may still change across rebuilds.
        free = FlatIndex()
        free.add_batch(rng.normal(size=(3, 4)))
        free.rebuild(rng.normal(size=(2, 7)), ids=[0, 1])
        assert free.dim == 7

    def test_rebuild_to_empty(self, rng):
        index = FlatIndex()
        index.add_batch(rng.normal(size=(5, 8)))
        index.rebuild([], [])
        assert len(index) == 0
        assert index.search(np.ones(8), top_k=2) == [[]]
        with pytest.raises(ValueError):
            index.rebuild(rng.normal(size=(2, 8)), ids=[0])  # misaligned still rejected

    def test_float64_mode_matches_reference_exactly(self, rng):
        X = rng.normal(size=(80, 16))
        index = FlatIndex(dtype=np.float64)
        ids = index.add_batch(X)
        q = rng.normal(size=16)
        got = index.search(q, top_k=5)[0]
        ref = semantic_search(q, X, top_k=5)[0]
        assert [h.id for h in got] == [ids[h.index] for h in ref]
        np.testing.assert_allclose(
            [h.score for h in got], [h.score for h in ref], atol=1e-12
        )

    def test_chunked_search_matches_unchunked(self, rng):
        X = rng.normal(size=(150, 8))
        chunked = FlatIndex(chunk_size=13)
        plain = FlatIndex()
        chunked.add_batch(X)
        plain.add_batch(X)
        q = rng.normal(size=(3, 8))
        for a, b in zip(chunked.search(q, top_k=6), plain.search(q, top_k=6)):
            assert [h.id for h in a] == [h.id for h in b]
            np.testing.assert_allclose([h.score for h in a], [h.score for h in b])

    def test_hits_are_index_hits(self, rng):
        index = FlatIndex()
        index.add(rng.normal(size=4))
        hit = index.search(rng.normal(size=4), top_k=1)[0][0]
        assert isinstance(hit, IndexHit)
        assert isinstance(hit.id, int) and isinstance(hit.score, float)


class TestLookupBatchEquivalence:
    def _queries(self):
        return [
            "How can I sort a list in python?",
            "What is the best way to order a python list?",
            "How do I plan a trip to japan?",
            "Tips for how to bake chocolate chip cookies",
        ]

    def test_batch_matches_sequential_lookups(self):
        seq_cache = MeanCache(make_tiny_encoder(seed=7), MeanCacheConfig(similarity_threshold=0.6))
        bat_cache = MeanCache(make_tiny_encoder(seed=7), MeanCacheConfig(similarity_threshold=0.6))
        cached = [f"question number {i} about subject {i % 5}" for i in range(30)]
        cached += self._queries()[:2]
        seq_cache.populate(cached)
        bat_cache.populate(cached)

        probes = self._queries() + [f"question number {i} about subject {i % 5}" for i in range(5)]
        sequential = [seq_cache.lookup(q) for q in probes]
        batched = bat_cache.lookup_batch(probes)

        assert len(batched) == len(sequential)
        for s, b in zip(sequential, batched):
            assert b.hit == s.hit
            assert b.response == s.response
            assert b.matched_query == s.matched_query
            assert b.entry_id == s.entry_id
            assert b.similarity == pytest.approx(s.similarity, abs=1e-6)
        assert bat_cache.stats.lookups == seq_cache.stats.lookups
        assert bat_cache.stats.hits == seq_cache.stats.hits
        assert bat_cache.stats.misses == seq_cache.stats.misses

    def test_batch_with_contexts_matches_sequential(self):
        enc = make_tiny_encoder(seed=9)
        seq_cache = MeanCache(enc.clone(), MeanCacheConfig(similarity_threshold=0.6))
        bat_cache = MeanCache(enc.clone(), MeanCacheConfig(similarity_threshold=0.6))
        parent = "How can I sort a list in python?"
        for cache in (seq_cache, bat_cache):
            cache.insert(parent, "use sorted()")
            cache.insert("Change the color to red", "set color='red'", context=[parent])
        probes = ["Change the color to red", "Change the color to red", parent]
        contexts = [[parent], ["Tips for how to bake chocolate chip cookies"], []]
        sequential = [seq_cache.lookup(q, context=c) for q, c in zip(probes, contexts)]
        batched = bat_cache.lookup_batch(probes, contexts=contexts)
        for s, b in zip(sequential, batched):
            assert b.hit == s.hit
            assert b.entry_id == s.entry_id

    def test_batch_on_empty_cache_all_miss(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        decisions = cache.lookup_batch(["query one alpha", "query two beta"])
        assert [d.hit for d in decisions] == [False, False]
        assert cache.stats.lookups == 2 and cache.stats.misses == 2

    def test_batch_validates_inputs(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        assert cache.lookup_batch([]) == []
        with pytest.raises(ValueError):
            cache.lookup_batch(["ok query", "  "])
        with pytest.raises(ValueError):
            cache.lookup_batch(["ok query"], contexts=[[], []])

    def test_batch_overheads_are_amortized(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        cache.populate([f"question number {i} about subject {i}" for i in range(10)])
        decisions = cache.lookup_batch([f"probe number {i}" for i in range(4)])
        embed_times = {d.embed_time_s for d in decisions}
        search_times = {d.search_time_s for d in decisions}
        assert len(embed_times) == 1 and len(search_times) == 1
        assert embed_times.pop() > 0


class TestCacheIndexIntegration:
    def test_cache_exposes_its_index(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        cache.populate(["alpha bravo", "charlie delta"])
        assert isinstance(cache.index, FlatIndex)
        assert len(cache.index) == 2
        assert sorted(cache.index.ids) == [e.entry_id for e in cache.entries]

    def test_eviction_keeps_index_and_entries_aligned(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(max_entries=4))
        for i in range(12):
            cache.insert(f"query number {i} about topic {i}", f"r{i}")
        assert len(cache) == 4 and len(cache.index) == 4
        assert sorted(cache.index.ids) == sorted(e.entry_id for e in cache.entries)

    def test_rebuild_embeddings_keeps_search_working(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(similarity_threshold=0.9))
        cache.insert("sort a python list", "resp")
        cache.insert("bake chocolate cookies", "resp2")
        cache.remove(cache.entries[0].entry_id)
        cache.rebuild_embeddings()
        assert cache.lookup("bake chocolate cookies").hit


class TestPrenormalizedZeroCopy:
    """The prenormalized fast path must not copy or allocate per call.

    ISSUE 7 regression guards: the fleet's hot path hands the index an
    already-normalized, contiguous float32 query block, and the index must
    pass it straight to the kernel (zero copies) while scoring into reused
    scratch buffers (zero steady-state allocations).
    """

    def _unit_queries(self, rng, n, dim):
        q = rng.normal(size=(n, dim))
        q /= np.linalg.norm(q, axis=1, keepdims=True)
        return np.ascontiguousarray(q, dtype=np.float32)

    def test_flat_passthrough_shares_memory(self, rng):
        index = FlatIndex(dim=32)
        index.add_batch(rng.normal(size=(50, 32)))
        q = self._unit_queries(rng, 4, 32)
        prepared = index._prepare_queries(q, prenormalized=True)
        assert prepared is q
        assert np.shares_memory(prepared, q)
        # A non-contiguous batch pays exactly one cast into scratch — never
        # a silent chain of intermediate copies.
        odd = np.asfortranarray(q)
        prepared = index._prepare_queries(odd, prenormalized=True)
        assert not np.shares_memory(prepared, odd)
        np.testing.assert_array_equal(prepared, q)

    def test_quantized_passthrough_shares_memory(self, rng):
        from repro.index import make_index

        index = make_index("sq8", dim=32, min_train_size=24, seed=7)
        index.add_batch(rng.normal(size=(64, 32)))
        assert index.is_trained
        q = self._unit_queries(rng, 4, 32)
        unit, qf = index._prepare_queries(q, prenormalized=True)
        assert np.shares_memory(qf, q)

    def test_prenormalized_matches_default_path_bitwise(self, rng):
        index = FlatIndex(dim=32)
        index.add_batch(rng.normal(size=(200, 32)))
        q64 = rng.normal(size=(6, 32))
        q64 /= np.linalg.norm(q64, axis=1, keepdims=True)
        q32 = np.ascontiguousarray(q64, dtype=np.float32)
        default = index.search(q32, top_k=5)
        fast = index.search(q32, top_k=5, prenormalized=True)
        assert [[(h.id, h.score) for h in hits] for hits in default] == [
            [(h.id, h.score) for h in hits] for hits in fast
        ]

    def test_steady_state_search_allocates_nothing_query_shaped(self, rng):
        import gc
        import tracemalloc

        index = FlatIndex(dim=32)
        index.add_batch(rng.normal(size=(4000, 32)))
        q = self._unit_queries(rng, 16, 32)
        # Warm the scratch buffers and any lazy caches.
        for _ in range(5):
            index.search(q, top_k=5, prenormalized=True)
        gc.collect()
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        for _ in range(20):
            index.search(q, top_k=5, prenormalized=True)
        retained, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Retained growth is the regression signal: a path that re-allocates
        # score matrices or grows a cache leaks query-shaped arrays every
        # call (a fresh (16, 4000) float32 block is 256 KB; 20 calls > 5 MB).
        # The scratch-backed path retains only the returned hit objects
        # (~12 KB measured).  Transient top-k temporaries inside one call
        # are bounded separately and loosely.
        assert retained - base < 120_000, f"retained {retained - base} bytes"
        assert peak - base < 8_000_000, f"peak {peak - base} bytes"
