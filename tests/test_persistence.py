"""Persistence round-trips: save → load → identical lookup decisions.

Covers the snapshot subsystem end to end:

* every index backend round-trips bit-exactly (ids, searched ids *and*
  ``float.hex`` scores), including after swap-delete churn and while
  quantized backends are still in their untrained staging phase;
* corrupted, foreign-format and future-version manifests are rejected with
  :class:`~repro.index.SnapshotError` instead of half-restoring;
* ``MeanCache``/``GPTCache`` snapshots reproduce decision streams
  byte-exactly, preserve stats and eviction order, and a saved+reloaded
  MeanCache replays the golden fixture's Table I decision stream (the
  acceptance criterion of ISSUE 4);
* ``FleetSimulator.checkpoint``/``restore`` warm-starts a fleet whose
  second-half run matches an uninterrupted fleet exactly, and deduplicates
  a shared central cache;
* crash safety: a save killed mid-write (after arrays, before the manifest)
  leaves the previous snapshot loadable and the torn stage never loadable,
  saves fully replace the target directory (no stale arrays/delta logs),
  embeddings persist at the index's native dtype, the append-only delta log
  replays/compacts correctly (torn trailing line included), and
  ``load_index(mmap=True)`` restores without copying the row matrix
  (tracemalloc ceiling).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from conftest import make_tiny_encoder

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.index import SnapshotError, load_index, make_index
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving.fleet import FleetConfig, FleetSimulator
from repro.serving.workload import Trace, WorkloadConfig, WorkloadGenerator

DIM = 16

BACKENDS = {
    "flat": {},
    "ivf": {"min_train_size": 32, "nprobe": 4, "seed": 3},
    "lsh": {"n_tables": 4, "n_bits": 6, "multiprobe": 2, "seed": 3},
    "sq8": {"min_train_size": 32, "seed": 3},
    "pq": {"m": 4, "ksub": 16, "min_train_size": 32, "seed": 3},
    "ivf+sq8": {"min_train_size": 32, "nprobe": 4, "seed": 3},
}


def hit_signature(results):
    """Bit-exact signature of a search result set."""
    return [[(h.id, float(h.score).hex()) for h in hits] for hits in results]


# --------------------------------------------------------------------------- #
# Index round-trips
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(BACKENDS))
@pytest.mark.parametrize("n", [0, 10, 120])
def test_index_round_trip_identical_searches(name, n, tmp_path):
    """n=10 keeps quantized backends untrained (staging phase); n=120 trains."""
    index = make_index(name, dim=DIM, **BACKENDS[name])
    rng = np.random.default_rng(n + 1)
    if n:
        index.add_batch(rng.normal(size=(n, DIM)))
        for victim in list(index.ids)[:: max(n // 7, 1)]:
            index.remove(victim)
    queries = rng.normal(size=(8, DIM))
    before = index.search(queries, top_k=5)

    index.save(tmp_path / "snap")
    loaded = load_index(tmp_path / "snap")

    assert type(loaded) is type(index)
    assert len(loaded) == len(index)
    assert loaded.ids == index.ids
    assert loaded.dim == index.dim
    assert loaded.nbytes == index.nbytes
    assert hit_signature(loaded.search(queries, top_k=5)) == hit_signature(before)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_index_round_trip_stays_usable(name, tmp_path):
    """A loaded index keeps mutating correctly (ids stay monotonic, etc.)."""
    index = make_index(name, dim=DIM, **BACKENDS[name])
    rng = np.random.default_rng(8)
    index.add_batch(rng.normal(size=(50, DIM)))
    index.remove(index.ids[0])
    index.save(tmp_path / "snap")
    loaded = load_index(tmp_path / "snap")

    new_id = loaded.add(rng.normal(size=DIM))
    assert new_id == 50  # next_id survived the round trip
    loaded.remove(new_id)
    with pytest.raises(ValueError):
        loaded.add(rng.normal(size=DIM), id=loaded.ids[0])
    assert len(loaded.search(rng.normal(size=DIM), top_k=3)[0]) == 3


@pytest.mark.parametrize("name", ["sq8", "pq", "ivf", "ivf+sq8"])
def test_trained_but_empty_snapshot_recycles(name, tmp_path):
    """Train, drain to empty, save → load → save again must round-trip.

    Regression: restoring a trained-then-drained snapshot allocates no
    storage, so post-restore code must not touch ``_ids``/``_codes``.
    """
    index = make_index(name, dim=DIM, **BACKENDS[name])
    index.add_batch(np.random.default_rng(0).normal(size=(40, DIM)))
    assert index.is_trained
    for i in list(index.ids):
        index.remove(i)
    index.save(tmp_path / "a")
    loaded = load_index(tmp_path / "a")
    assert loaded.is_trained and len(loaded) == 0
    loaded.save(tmp_path / "b")
    again = load_index(tmp_path / "b")
    vec = np.random.default_rng(1).normal(size=DIM)
    new_id = again.add(vec)
    assert new_id == 40  # next_id survived two cycles
    # Query with the stored vector itself: routed backends probe its own
    # cell, so the hit is guaranteed even at tiny nprobe.
    assert [h.id for h in again.search(vec)[0]] == [new_id]


def test_load_rejects_unknown_backend(tmp_path):
    path = _saved_index(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    manifest["backend"] = "backend-from-the-future"
    (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(SnapshotError, match="unknown index backend"):
        load_index(path)


def test_load_rejects_bad_params(tmp_path):
    path = _saved_index(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    manifest["params"] = {"no_such_kwarg": 1}
    (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(SnapshotError, match="rejects"):
        load_index(path)


def test_load_index_restores_rng_continuity(tmp_path):
    """Post-load training/repartition draws continue the saved RNG stream."""
    a = make_index("ivf", dim=DIM, min_train_size=32, seed=5)
    b = make_index("ivf", dim=DIM, min_train_size=32, seed=5)
    rng = np.random.default_rng(0)
    grow = rng.normal(size=(200, DIM))
    a.add_batch(grow[:60])
    b.add_batch(grow[:60])
    a.save(tmp_path / "snap")
    loaded = load_index(tmp_path / "snap")
    # Push both past the repartition threshold; the retrained partitions
    # must match because the RNG state was serialized.
    loaded.add_batch(grow[60:])
    b.add_batch(grow[60:])
    queries = rng.normal(size=(5, DIM))
    assert hit_signature(loaded.search(queries)) == hit_signature(b.search(queries))


# --------------------------------------------------------------------------- #
# Manifest validation
# --------------------------------------------------------------------------- #
def _saved_index(tmp_path):
    index = make_index("flat", dim=DIM)
    index.add_batch(np.random.default_rng(0).normal(size=(5, DIM)))
    path = tmp_path / "snap"
    index.save(path)
    return path


def test_load_rejects_missing_snapshot(tmp_path):
    with pytest.raises(SnapshotError, match="no snapshot manifest"):
        load_index(tmp_path / "nowhere")


def test_load_rejects_corrupted_manifest(tmp_path):
    path = _saved_index(tmp_path)
    (path / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(SnapshotError, match="corrupted snapshot manifest"):
        load_index(path)


def test_load_rejects_foreign_format(tmp_path):
    path = _saved_index(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    manifest["format"] = "somebody-elses-checkpoint"
    (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(SnapshotError, match="format"):
        load_index(path)


def test_load_rejects_future_version(tmp_path):
    path = _saved_index(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    manifest["version"] = 999
    (path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(SnapshotError, match="unsupported version"):
        load_index(path)


def test_load_rejects_missing_arrays(tmp_path):
    path = _saved_index(tmp_path)
    shutil.rmtree(path / "arrays")
    with pytest.raises(SnapshotError, match="no snapshot arrays"):
        load_index(path)


def test_unregistered_base_index_save_raises_snapshot_error(tmp_path):
    from repro.index import QuantizedIndex
    from repro.index.quantized import ScalarQuantizer

    with pytest.raises(SnapshotError, match="does not support snapshots"):
        QuantizedIndex(ScalarQuantizer(), dim=DIM).save(tmp_path / "x")


def test_meancache_load_rejects_truncated_manifest_payload(tmp_path):
    encoder = make_tiny_encoder()
    cache = MeanCache(encoder, MeanCacheConfig())
    cache.populate(["a question here"])
    cache.save(tmp_path / "mc")
    manifest = json.loads((tmp_path / "mc" / "manifest.json").read_text())
    del manifest["config"]
    (tmp_path / "mc" / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="corrupted manifest payload"):
        MeanCache.load(tmp_path / "mc", encoder)


def test_cache_load_rejects_index_snapshot(tmp_path):
    """Format tags keep the snapshot kinds from being cross-loaded."""
    path = _saved_index(tmp_path)
    with pytest.raises(SnapshotError, match="format"):
        MeanCache.load(path, make_tiny_encoder())


# --------------------------------------------------------------------------- #
# Cache round-trips
# --------------------------------------------------------------------------- #
def _populated_meancache(encoder, **config_kwargs):
    cache = MeanCache(encoder, MeanCacheConfig(**config_kwargs))
    queries = [f"how do I configure widget {i}" for i in range(30)]
    contexts = [["setting up widgets"] if i % 3 == 0 else [] for i in range(30)]
    cache.populate(queries, contexts=contexts)
    # Touch entries so policy order and hit counters are non-trivial.
    cache.lookup_batch(queries[:10], contexts=contexts[:10])
    return cache


@pytest.mark.parametrize("policy", ["lru", "lfu", "fifo"])
def test_meancache_round_trip_decisions_and_policy(policy, tmp_path):
    encoder = make_tiny_encoder()
    cache = _populated_meancache(
        encoder, max_entries=40, eviction_policy=policy, index_backend="flat"
    )
    probes = [f"how do I configure widget {i}" for i in range(0, 45, 3)]
    probe_ctx = [["setting up widgets"]] * len(probes)
    before = cache.lookup_batch(probes, contexts=probe_ctx)

    cache.save(tmp_path / "mc")
    loaded = MeanCache.load(tmp_path / "mc", encoder.clone())

    # State parity straight after load (before any new lookups mutate it).
    assert loaded.stats.insertions == cache.stats.insertions
    assert len(loaded) == len(cache)
    assert [e.hit_count for e in loaded.entries] == [e.hit_count for e in cache.entries]

    after = loaded.lookup_batch(probes, contexts=probe_ctx)
    assert [(d.hit, d.entry_id, float(d.similarity).hex()) for d in before] == [
        (d.hit, d.entry_id, float(d.similarity).hex()) for d in after
    ]
    # Replaying identical hit traffic leaves both policies in the same
    # state (LRU/LFU re-touch the same ids in the same order), so from here
    # the caches must evict in lock-step.
    # Eviction order must continue exactly where the saved cache left off:
    # fill both to capacity and compare which entries survive.
    for i in range(20):
        cache.insert(f"new query {i}", "r")
        loaded.insert(f"new query {i}", "r")
    assert [e.entry_id for e in cache.entries] == [e.entry_id for e in loaded.entries]


@pytest.mark.parametrize(
    "backend,params",
    [
        ("ivf", {"min_train_size": 16, "seed": 2}),
        ("lsh", {"n_tables": 4, "n_bits": 5, "seed": 2}),
        ("sq8", {"min_train_size": 16, "seed": 2}),
    ],
)
def test_meancache_round_trip_on_every_backend(backend, params, tmp_path):
    encoder = make_tiny_encoder()
    cache = _populated_meancache(
        encoder, index_backend=backend, index_params=params
    )
    probes = [f"how do I configure widget {i}" for i in range(0, 60, 2)]
    before = cache.lookup_batch(probes)
    cache.save(tmp_path / "mc")
    loaded = MeanCache.load(tmp_path / "mc", encoder.clone())
    assert type(loaded.index).__name__ == type(cache.index).__name__
    after = loaded.lookup_batch(probes)
    assert [(d.hit, d.entry_id, float(d.similarity).hex()) for d in before] == [
        (d.hit, d.entry_id, float(d.similarity).hex()) for d in after
    ]


def test_meancache_load_rejects_tampered_entries(tmp_path):
    encoder = make_tiny_encoder()
    cache = _populated_meancache(encoder)
    cache.save(tmp_path / "mc")
    entries = json.loads((tmp_path / "mc" / "entries.json").read_text())
    entries.pop()
    (tmp_path / "mc" / "entries.json").write_text(json.dumps(entries))
    with pytest.raises(SnapshotError, match="inconsistent"):
        MeanCache.load(tmp_path / "mc", encoder)


def test_meancache_load_backfills_attached_store(tmp_path):
    from repro.core.storage import InMemoryStore

    encoder = make_tiny_encoder()
    cache = _populated_meancache(encoder)
    cache.save(tmp_path / "mc")
    store = InMemoryStore()
    loaded = MeanCache.load(tmp_path / "mc", encoder, store=store)
    assert len(store) == len(loaded)
    some = loaded.entries[0]
    assert store.get(f"entry:{some.entry_id}")["query"] == some.query
    # The mirror keeps tracking mutations, as it does for a live cache.
    loaded.remove(some.entry_id)
    assert f"entry:{some.entry_id}" not in store


def test_gptcache_load_rejects_tampered_entries(tmp_path):
    encoder = make_tiny_encoder()
    cache = GPTCache(encoder, GPTCacheConfig())
    cache.populate([f"question number {i}" for i in range(5)])
    cache.save(tmp_path / "gpt")
    entries = json.loads((tmp_path / "gpt" / "entries.json").read_text())
    entries.pop()
    (tmp_path / "gpt" / "entries.json").write_text(json.dumps(entries))
    with pytest.raises(SnapshotError, match="inconsistent"):
        GPTCache.load(tmp_path / "gpt", encoder=encoder)


def test_gptcache_round_trip_decisions(tmp_path):
    encoder = make_tiny_encoder()
    cache = GPTCache(encoder, GPTCacheConfig())
    cache.populate([f"question number {i}" for i in range(25)], user_id="alice")
    cache.populate(["what is the weather"], user_id="bob")
    probes = [f"question number {i}" for i in range(0, 40, 2)]
    before = cache.lookup_batch(probes)
    cache.save(tmp_path / "gpt")
    loaded = GPTCache.load(tmp_path / "gpt", encoder=encoder)
    assert loaded.users() == cache.users()
    assert loaded.lookups == cache.lookups
    after = loaded.lookup_batch(probes)
    assert [(d.hit, d.matched_query, float(d.similarity).hex()) for d in before] == [
        (d.hit, d.matched_query, float(d.similarity).hex()) for d in after
    ]
    # Enrolment keeps working: ids are list positions in the baseline.
    loaded.insert("a brand new question", "r")
    assert len(loaded) == len(cache) + 1


# --------------------------------------------------------------------------- #
# Golden-fixture byte-exactness through a save/load cycle
# --------------------------------------------------------------------------- #
def test_saved_and_reloaded_meancache_reproduces_golden_decisions():
    """A snapshot round-trip must not perturb a single golden decision.

    Rebuilds the golden fixture's Table I MeanCache (MPNet) setup, saves it,
    reloads it with a fresh encoder clone, and asserts the reloaded cache's
    decision stream matches ``golden_decisions_quick.json`` byte for byte
    (hit bits, ``float.hex`` similarities, matched entry ids).
    """
    import tempfile

    from golden_decisions import FIXTURE_PATH, GOLDEN_SCALE, GOLDEN_SEED

    from repro.datasets.semantic_pairs import generate_cache_workload
    from repro.experiments.common import cached_system_bundle, resolve_scale

    assert FIXTURE_PATH.exists(), "golden fixture missing"
    golden = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
    expected = golden["table1"]["MeanCache (MPNet)"]

    resolved = resolve_scale(GOLDEN_SCALE)
    bundle = cached_system_bundle(resolved, seed=GOLDEN_SEED, train_albert=True)
    workload = generate_cache_workload(
        n_cached=resolved.n_cached,
        n_probes=resolved.n_probes,
        duplicate_fraction=0.3,
        corpus=bundle.corpus,
        seed=GOLDEN_SEED + 100,
    )
    trained = bundle.meancache_mpnet
    cache = MeanCache(
        trained.encoder.clone(),
        MeanCacheConfig(similarity_threshold=trained.threshold, verify_context=True),
    )
    cache.populate(workload.cached_queries)

    with tempfile.TemporaryDirectory() as tmp:
        cache.save(Path(tmp) / "mc")
        loaded = MeanCache.load(Path(tmp) / "mc", trained.encoder.clone())

    decisions = loaded.lookup_batch([p.text for p in workload.probes])
    assert "".join("1" if d.hit else "0" for d in decisions) == expected["hits"]
    assert [float(d.similarity).hex() for d in decisions] == expected["sims"]
    assert [d.entry_id if d.hit else None for d in decisions] == expected["matches"]


# --------------------------------------------------------------------------- #
# Fleet checkpoint / warm-start
# --------------------------------------------------------------------------- #
def _split_trace(seed=11, n_users=5):
    trace = WorkloadGenerator(
        WorkloadConfig(n_users=n_users, queries_per_user=8, duplicate_rate=0.5),
        seed=seed,
    ).generate()
    events = sorted(trace.events, key=lambda e: (e.time_s, e.user_id))
    half = len(events) // 2
    return (
        Trace(events=events[:half], n_users=n_users),
        Trace(events=events[half:], n_users=n_users),
    )


def _fleet(encoder, factory):
    return FleetSimulator(
        cache_factory=factory,
        service=SimulatedLLMService(LLMServiceConfig(seed=0)),
        config=FleetConfig(batch_window_s=0.25),
    )


def test_fleet_checkpoint_warm_start_matches_continuous_run(tmp_path):
    encoder = make_tiny_encoder()
    first, second = _split_trace()
    factory = lambda uid: MeanCache(encoder, MeanCacheConfig())

    continuous = _fleet(encoder, factory)
    continuous.run(first)
    expected = continuous.run(second)

    interrupted = _fleet(encoder, factory)
    interrupted.run(first)
    interrupted.checkpoint(tmp_path / "ckpt")

    resumed = _fleet(encoder, factory)
    resumed.restore(tmp_path / "ckpt", loader=lambda p: MeanCache.load(p, encoder))
    got = resumed.run(second)

    assert {u: (s.lookups, s.hits) for u, s in got.per_user.items()} == {
        u: (s.lookups, s.hits) for u, s in expected.per_user.items()
    }


def test_fleet_checkpoint_deduplicates_shared_cache(tmp_path):
    encoder = make_tiny_encoder()
    first, second = _split_trace(seed=21)
    shared = GPTCache(encoder, GPTCacheConfig())
    sim = _fleet(encoder, lambda uid: shared)
    sim.run(first)
    sim.checkpoint(tmp_path / "ckpt")
    manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
    assert set(manifest["users"].values()) == {"cache_0"}

    resumed = _fleet(encoder, lambda uid: GPTCache(encoder, GPTCacheConfig()))
    resumed.restore(
        tmp_path / "ckpt", loader=lambda p: GPTCache.load(p, encoder=encoder)
    )
    # All restored users share one instance, as before the checkpoint.
    caches = {id(a.cache) for a in resumed.caches.values()}
    assert len(caches) == 1
    resumed.run(second)


def test_fleet_checkpoint_rejects_unsaveable_cache(tmp_path):
    class NoSave:
        def lookup_batch(self, queries):
            return [None for _ in queries]

        def insert(self, query, response):
            pass

    sim = FleetSimulator(cache_factory=lambda uid: NoSave())
    trace = WorkloadGenerator(
        WorkloadConfig(n_users=1, queries_per_user=2), seed=0
    ).generate()
    sim.run(trace)
    with pytest.raises(SnapshotError, match="no save"):
        sim.checkpoint(tmp_path / "ckpt")


# --------------------------------------------------------------------------- #
# Crash safety: atomic saves, delta log, native dtype, zero-copy restore
# --------------------------------------------------------------------------- #
def _decision_signature(cache, probes):
    return [
        (d.hit, d.entry_id, float(d.similarity).hex())
        for d in cache.lookup_batch(probes)
    ]


def test_kill_mid_save_preserves_previous_snapshot(tmp_path, monkeypatch):
    """A save that dies after writing arrays must not touch the old snapshot.

    The manifest is the commit point: it is written last inside the staged
    ``tmp-`` sibling, so a crash before it leaves the published directory
    byte-identical and the torn stage unloadable (and cleaned up).
    """
    import repro.core.cache as cache_module

    encoder = make_tiny_encoder()
    cache = _populated_meancache(encoder)
    probes = [f"how do I configure widget {i}" for i in range(0, 45, 3)]
    expected = _decision_signature(cache, probes)
    target = tmp_path / "mc"
    cache.save(target)

    # Mutate the live cache, then kill the next save right before the
    # manifest (arrays + entries already written into the stage).
    cache.insert("a brand new question", "a brand new response")

    def exploding_write_manifest(path, manifest):
        raise OSError("simulated crash before manifest commit")

    monkeypatch.setattr(cache_module, "write_manifest", exploding_write_manifest)
    with pytest.raises(OSError, match="simulated crash"):
        cache.save(target)
    monkeypatch.undo()

    # No torn stage left behind, and the published snapshot is the old one.
    assert [p.name for p in tmp_path.iterdir()] == ["mc"]
    loaded = MeanCache.load(target, encoder.clone())
    assert len(loaded) == len(cache) - 1
    assert _decision_signature(loaded, probes) == expected


def test_kill_mid_save_stage_is_never_loadable(tmp_path, monkeypatch):
    """If the stage *did* survive a crash, its missing manifest rejects it."""
    import repro.index.snapshot as snapshot_module

    index = make_index("flat", dim=DIM)
    index.add_batch(np.random.default_rng(0).normal(size=(12, DIM)))

    staged = []
    real_write_arrays = snapshot_module.write_arrays

    def capturing_write_arrays(path, arrays):
        real_write_arrays(path, arrays)
        staged.append(Path(path))
        raise OSError("simulated crash after arrays")

    monkeypatch.setattr(snapshot_module, "write_arrays", capturing_write_arrays)
    with pytest.raises(OSError, match="simulated crash"):
        index.save(tmp_path / "snap")
    monkeypatch.undo()

    # The stage was cleaned up on the failure path; even if a hard kill had
    # left it on disk, loading it must fail (arrays but no manifest).
    (stage,) = staged
    assert not stage.exists()
    shutil.rmtree(tmp_path / "snap", ignore_errors=True)
    real_write_arrays(tmp_path / "snap", {"vectors": np.zeros((3, DIM))})
    with pytest.raises(SnapshotError, match="no snapshot manifest"):
        load_index(tmp_path / "snap")


def test_save_replaces_whole_directory(tmp_path):
    """Saving a small snapshot over a big one leaves no stale files behind.

    Regression for in-place overwrites: the big snapshot's extra arrays and
    its delta log must vanish, not linger to corrupt the next load.
    """
    from repro.index import append_delta, delta_log_size

    big = make_index("flat", dim=DIM)
    big.add_batch(np.random.default_rng(0).normal(size=(200, DIM)))
    path = tmp_path / "snap"
    big.save(path)
    append_delta(path, vectors=np.zeros((2, DIM)), ids=[900, 901])
    assert (path / "deltas.jsonl").exists()

    small = make_index("flat", dim=DIM)
    small.add_batch(np.random.default_rng(1).normal(size=(3, DIM)))
    small.save(path)

    assert not (path / "deltas.jsonl").exists()
    assert not (path / "deltas").exists()
    loaded = load_index(path)
    assert loaded.ids == small.ids
    assert len(loaded) == 3


def test_meancache_persists_native_index_dtype(tmp_path):
    """Embeddings round-trip at the index's dtype — no silent float64 blowup."""
    encoder = make_tiny_encoder()
    cache = _populated_meancache(encoder)
    native = np.dtype(cache.index.dtype)
    assert native == np.float32  # the flat index stores float32 rows
    path = tmp_path / "mc"
    cache.save(path)

    on_disk = np.load(path / "arrays" / "embeddings.npy", allow_pickle=False)
    assert on_disk.dtype == native

    loaded = MeanCache.load(path, encoder.clone())
    assert all(e.embedding.dtype == native for e in loaded.entries)
    # Stability: a second save/load cycle changes nothing.
    loaded.save(tmp_path / "mc2")
    again = np.load(tmp_path / "mc2" / "arrays" / "embeddings.npy")
    np.testing.assert_array_equal(again, on_disk)


def test_delta_log_replays_and_compacts(tmp_path):
    """append → load replays; torn trailing line is ignored; compact folds."""
    from repro.index import append_delta, compact_snapshot, delta_log_size

    rng = np.random.default_rng(4)
    index = make_index("flat", dim=DIM)
    index.add_batch(rng.normal(size=(20, DIM)))
    path = tmp_path / "snap"
    index.save(path)

    extra = rng.normal(size=(3, DIM))
    append_delta(path, vectors=extra, ids=[100, 101, 102])
    append_delta(path, removed=[0, 101])
    assert delta_log_size(path) == (2, 3)

    # A torn trailing line (crash mid-append) must be skipped, not fatal.
    with open(path / "deltas.jsonl", "a", encoding="utf-8") as fh:
        fh.write('{"seq": 3, "ids": [99')

    loaded = load_index(path)
    assert set(loaded.ids) == (set(index.ids) | {100, 102}) - {0}
    queries = rng.normal(size=(4, DIM))
    expected = hit_signature(loaded.search(queries, top_k=5))

    compact_snapshot(path)
    assert delta_log_size(path) == (0, 0)
    compacted = load_index(path)
    assert compacted.ids == loaded.ids
    assert hit_signature(compacted.search(queries, top_k=5)) == expected

    # Skipping replay yields the base snapshot unchanged (now = compacted).
    base_only = load_index(path, replay_deltas=False)
    assert base_only.ids == compacted.ids


def test_delta_log_rejects_mid_file_corruption(tmp_path):
    """Only the *trailing* line may be torn; earlier corruption is fatal."""
    from repro.index import append_delta

    index = make_index("flat", dim=DIM)
    index.add_batch(np.random.default_rng(5).normal(size=(8, DIM)))
    path = tmp_path / "snap"
    index.save(path)
    append_delta(path, vectors=np.zeros((1, DIM)), ids=[50])
    append_delta(path, removed=[50])
    lines = (path / "deltas.jsonl").read_text(encoding="utf-8").splitlines()
    lines[0] = lines[0][: len(lines[0]) // 2]
    (path / "deltas.jsonl").write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(SnapshotError, match="corrupted delta log"):
        load_index(path)


def test_mmap_load_is_zero_copy(tmp_path):
    """The mmap restore must not allocate the row matrix (tier-1 smoke).

    numpy reports its buffer allocations to tracemalloc, so the full-copy
    load's peak includes the whole storage matrix while the mmap load's
    peak must stay far below it.
    """
    import tracemalloc

    n, dim = 20_000, 64
    matrix_bytes = n * dim * 4
    index = make_index("flat", dim=dim)
    index.add_batch(
        np.random.default_rng(6).normal(size=(n, dim)).astype(np.float32)
    )
    path = tmp_path / "snap"
    index.save(path)

    tracemalloc.start()
    full = load_index(path)
    _, full_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del full

    tracemalloc.start()
    mapped = load_index(path, mmap=True)
    _, mmap_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert full_peak >= matrix_bytes  # the copying path really copies
    assert mmap_peak < matrix_bytes / 10  # the mmap path really doesn't
    assert mapped.mmap_backed
    # First mutation materializes a private copy — correctness over laziness.
    mapped.add(np.zeros(dim, dtype=np.float32))
    assert not mapped.mmap_backed
    assert len(mapped) == n + 1
