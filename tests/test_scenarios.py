"""Tests for the scenario zoo (trace construction, registry, matrix driver).

Construction tests are encoder-free: every scenario family is a pure,
seeded trace transform, so correctness (victim streams untouched by the
attacker, cohort membership, tenant stream identity, log import fidelity)
is asserted on the traces themselves.  The matrix driver is exercised
end-to-end at tiny-encoder scale — one small spec per family — plus the
empty/singleton smoke the CI benchmarks job relies on.
"""

from __future__ import annotations

import pytest

from conftest import make_tiny_encoder

from repro.datasets.corpus import Corpus
from repro.experiments.scenario_bench import run_scenario, run_scenario_matrix
from repro.serving import (
    CohortSpec,
    FloodingConfig,
    MultiTenantConfig,
    PoisoningConfig,
    ScenarioSpec,
    WorkloadConfig,
    WorkloadGenerator,
    available_scenarios,
    build_cohort_trace,
    build_flooding_trace,
    build_multi_tenant_trace,
    get_scenario,
    inject_poisoning,
    merge_traces,
    register_scenario,
    relabel_users,
    trace_from_logs,
    trace_to_logs,
)
from repro.serving.scenarios import _REGISTRY


@pytest.fixture(scope="module")
def tiny_encoder():
    return make_tiny_encoder()


# --------------------------------------------------------------------------- #
# Trace surgery
# --------------------------------------------------------------------------- #
class TestTraceSurgery:
    def test_relabel_users_prefixes_every_event(self):
        trace = WorkloadGenerator(WorkloadConfig(n_users=3, queries_per_user=5)).generate()
        relabelled = relabel_users(trace, "tenant-a/")
        assert all(uid.startswith("tenant-a/") for uid in relabelled.user_ids)
        assert len(relabelled) == len(trace)
        # Only the ids change.
        for before, after in zip(trace.events, relabelled.events):
            assert after.query == before.query
            assert after.time_s == before.time_s

    def test_merge_traces_interleaves_in_time_order(self):
        a = relabel_users(
            WorkloadGenerator(WorkloadConfig(n_users=2, queries_per_user=5), seed=1).generate(),
            "a-",
        )
        b = relabel_users(
            WorkloadGenerator(WorkloadConfig(n_users=2, queries_per_user=5), seed=2).generate(),
            "b-",
        )
        merged = merge_traces(a, b)
        assert len(merged) == len(a) + len(b)
        times = [e.time_s for e in merged]
        assert times == sorted(times)
        assert set(merged.user_ids) == set(a.user_ids) | set(b.user_ids)

    def test_merge_traces_rejects_user_id_collisions(self):
        trace = WorkloadGenerator(WorkloadConfig(n_users=2, queries_per_user=5)).generate()
        with pytest.raises(ValueError, match="collide"):
            merge_traces(trace, trace)


# --------------------------------------------------------------------------- #
# Poisoning construction
# --------------------------------------------------------------------------- #
class TestPoisoning:
    def test_victim_stream_is_untouched(self):
        corpus = Corpus(seed=0)
        base = WorkloadGenerator(
            WorkloadConfig(n_users=4, queries_per_user=15), corpus=corpus, seed=0
        ).generate()
        poisoned, info = inject_poisoning(base, corpus, seed=0)
        victim_events = [
            e for e in poisoned.events if not e.user_id.startswith("attacker-")
        ]
        assert [e.to_dict() for e in victim_events] == [
            e.to_dict() for e in base.events
        ]
        assert info.n_targets == len(poisoned) - len(base)
        assert info.n_targets > 0

    def test_poison_leads_its_target(self):
        corpus = Corpus(seed=0)
        base = WorkloadGenerator(
            WorkloadConfig(n_users=4, queries_per_user=15), corpus=corpus, seed=0
        ).generate()
        config = PoisoningConfig(lead_s=5.0, target_fraction=1.0)
        poisoned, info = inject_poisoning(base, corpus, config, seed=0)
        poison_events = [e for e in poisoned.events if e.query in info.poison_queries]
        assert poison_events
        first_ask = {}
        for e in base.events:
            first_ask.setdefault(e.intent_key, e.time_s)
        for poison in poison_events:
            # Each poison arrives before *some* victim first-ask by
            # construction; all of them precede the trace's end.
            assert poison.time_s < base.duration_s
        assert all(uid.startswith("attacker-") for uid in info.attacker_ids)

    def test_deterministic_under_seed(self):
        corpus = Corpus(seed=0)
        base = WorkloadGenerator(
            WorkloadConfig(n_users=3, queries_per_user=10), corpus=corpus, seed=0
        ).generate()
        once, _ = inject_poisoning(base, corpus, seed=5)
        twice, _ = inject_poisoning(base, corpus, seed=5)
        assert once.to_dict() == twice.to_dict()
        other, _ = inject_poisoning(base, corpus, seed=6)
        assert other.to_dict() != once.to_dict()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PoisoningConfig(target_fraction=0.0)
        with pytest.raises(ValueError):
            PoisoningConfig(lead_s=0.0)
        with pytest.raises(ValueError):
            PoisoningConfig(attacker_shards=0)


# --------------------------------------------------------------------------- #
# Flooding / cohorts / tenancy construction
# --------------------------------------------------------------------------- #
class TestStreamBuilders:
    def test_flooding_keeps_honest_stream_identical(self):
        honest_config = WorkloadConfig(n_users=3, queries_per_user=10)
        trace, honest_ids, flooder_ids = build_flooding_trace(
            honest_config, FloodingConfig(n_flooders=2, queries_per_flooder=20), seed=0
        )
        solo = WorkloadGenerator(honest_config, seed=0).generate()
        honest_events = [e for e in trace.events if e.user_id in set(honest_ids)]
        assert sorted(honest_ids) == sorted(solo.user_ids)
        assert [e.to_dict() for e in honest_events] == [
            e.to_dict() for e in solo.events
        ]
        assert all(uid.startswith("flood-") for uid in flooder_ids)
        flood_events = [e for e in trace.events if e.user_id in set(flooder_ids)]
        assert len(flood_events) == 2 * 20
        # The flood is dominated by re-asks (the near-miss mining bait).
        duplicates = sum(1 for e in flood_events if e.kind == "duplicate")
        assert duplicates / len(flood_events) > 0.7

    def test_cohorts_partition_users_and_domains(self):
        cohorts = [
            CohortSpec(name="west", domains=("programming", "science"), n_users=2, queries_per_user=8),
            CohortSpec(name="east", domains=("cooking", "travel"), n_users=3, queries_per_user=8),
        ]
        trace, members = build_cohort_trace(cohorts, seed=0)
        assert set(members) == {"west", "east"}
        assert len(members["west"]) == 2 and len(members["east"]) == 3
        assert set(trace.user_ids) == set(members["west"]) | set(members["east"])
        for name, ids in members.items():
            assert all(uid.startswith(f"{name}-") for uid in ids)
        # Intents stay inside each cohort's domain slice.
        west_corpus = Corpus(seed=0, domains=["programming", "science"])
        west_intents = {
            i.key for d in west_corpus.domains for i in west_corpus.intents_for_domain(d)
        }
        for e in trace.events:
            if e.user_id in set(members["west"]) and e.intent_key:
                assert e.intent_key in west_intents

    def test_cohort_name_collision_rejected(self):
        with pytest.raises(ValueError):
            build_cohort_trace(
                [CohortSpec(name="x", domains=("cooking",)), CohortSpec(name="x", domains=("travel",))]
            )

    def test_multi_tenant_quiet_stream_identical_solo_and_mixed(self):
        mixed, quiet_alone, quiet_ids, noisy_ids = build_multi_tenant_trace(
            MultiTenantConfig(
                n_quiet_users=3,
                queries_per_quiet_user=10,
                n_noisy_users=1,
                queries_per_noisy_user=30,
            ),
            seed=0,
        )
        quiet_in_mixed = [e for e in mixed.events if e.user_id in set(quiet_ids)]
        assert [e.to_dict() for e in quiet_in_mixed] == [
            e.to_dict() for e in quiet_alone.events
        ]
        noisy_events = [e for e in mixed.events if e.user_id in set(noisy_ids)]
        assert len(noisy_events) == 30
        # The noisy tenant floods *unique* traffic (cache-useless churn).
        assert all(e.kind == "unique" for e in noisy_events)


# --------------------------------------------------------------------------- #
# External log import/export
# --------------------------------------------------------------------------- #
class TestLogImport:
    def test_round_trip_preserves_replayable_fields(self):
        trace = WorkloadGenerator(WorkloadConfig(n_users=3, queries_per_user=8)).generate()
        back = trace_from_logs(trace_to_logs(trace), normalize_time=False)
        assert len(back) == len(trace)
        for before, after in zip(trace.events, back.events):
            assert after.time_s == before.time_s
            assert after.user_id == before.user_id
            assert after.query == before.query
            assert after.context == before.context
            assert after.intent_key == before.intent_key

    def test_custom_field_names_and_epoch_normalization(self):
        records = [
            {"ts": 1700000012.5, "uid": "u1", "text": "later", "topic": "b"},
            {"ts": 1700000002.5, "uid": "u0", "text": "earlier", "topic": "a"},
        ]
        trace = trace_from_logs(
            records,
            time_key="ts",
            user_key="uid",
            query_key="text",
            intent_key="topic",
            context_key=None,
        )
        assert [e.query for e in trace.events] == ["earlier", "later"]
        assert trace.events[0].time_s == 0.0
        assert trace.events[1].time_s == 10.0
        assert trace.metadata["source"] == "external_logs"

    def test_string_context_becomes_single_turn(self):
        trace = trace_from_logs(
            [{"timestamp": 0.0, "user": "u", "prompt": "q", "context": "prior turn"}]
        )
        assert trace.events[0].context == ("prior turn",)
        assert trace.events[0].is_followup

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match="timestamp"):
            trace_from_logs([{"user": "u", "prompt": "q"}])
        with pytest.raises(ValueError, match="user"):
            trace_from_logs([{"timestamp": 0.0, "prompt": "q"}])


# --------------------------------------------------------------------------- #
# Spec registry
# --------------------------------------------------------------------------- #
class TestScenarioRegistry:
    def test_default_zoo_is_registered_with_five_plus_families(self):
        names = available_scenarios()
        specs = [get_scenario(n) for n in names]
        assert len({s.family for s in specs}) >= 5

    def test_register_rejects_silent_collisions(self):
        spec = ScenarioSpec(name="collision-probe", family="replay")
        register_scenario(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(ScenarioSpec(name="collision-probe", family="arrival"))
            replaced = register_scenario(
                ScenarioSpec(name="collision-probe", family="arrival"), replace=True
            )
            assert get_scenario("collision-probe") is replaced
        finally:
            _REGISTRY.pop("collision-probe", None)

    def test_unknown_scenario_error_lists_registry(self):
        with pytest.raises(KeyError, match="registered"):
            get_scenario("no-such-scenario")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="family"):
            ScenarioSpec(name="x", family="chaos")
        with pytest.raises(ValueError):
            ScenarioSpec(name="", family="replay")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="replay", n_users=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="replay", similarity_threshold=1.5)

    def test_spec_serializes_to_json_shape(self):
        spec = ScenarioSpec(
            name="x", family="flooding", params={"n_flooders": 2}, adaptation={"seed": 3}
        )
        d = spec.to_dict()
        assert d["family"] == "flooding"
        assert d["params"] == {"n_flooders": 2}
        assert d["adaptation"] == {"seed": 3}


# --------------------------------------------------------------------------- #
# Matrix driver (tiny-encoder scale)
# --------------------------------------------------------------------------- #
def _tiny_spec(family: str, **kwargs) -> ScenarioSpec:
    defaults = dict(
        name=f"tiny-{family}", family=family, n_users=3, queries_per_user=8
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


TINY_SPECS = [
    _tiny_spec("poisoning", shared_cache=True),
    _tiny_spec(
        "flooding",
        params={"n_flooders": 2, "queries_per_flooder": 30},
        adaptation={"round_interval_s": 10.0, "min_observations": 6, "min_threshold": 0.5},
    ),
    _tiny_spec("arrival", params={"kind": "flash_crowd", "flash_at_s": 10.0}),
    _tiny_spec(
        "mixed_domain",
        params={
            "cohorts": [
                {"name": "west", "domains": ["programming"], "n_users": 2, "queries_per_user": 6},
                {"name": "east", "domains": ["cooking"], "n_users": 2, "queries_per_user": 6},
            ]
        },
    ),
    _tiny_spec(
        "multi_tenant",
        shared_cache=True,
        params={"n_quiet_users": 2, "queries_per_quiet_user": 8, "n_noisy_users": 1, "queries_per_noisy_user": 16},
    ),
    _tiny_spec("replay"),
]


class TestMatrixDriver:
    @pytest.mark.parametrize("spec", TINY_SPECS, ids=lambda s: s.family)
    def test_every_family_runs_and_reports_metrics(self, spec, tiny_encoder):
        result = run_scenario(spec, encoder=tiny_encoder, encoder_name="tiny")
        assert result.family == spec.family
        assert result.metrics.n_events > 0
        assert 0.0 <= result.metrics.hit_rate <= 1.0
        assert result.metrics.total_cost_usd > 0.0
        payload = result.to_dict()
        assert payload["spec"]["name"] == spec.name
        assert set(payload["metrics"]) == {
            "n_events",
            "hit_rate",
            "true_hit_rate",
            "false_hit_rate",
            "mean_latency_s",
            "total_cost_usd",
            "throughput_lookups_per_s",
        }

    def test_empty_matrix_needs_no_encoder(self, monkeypatch):
        """The CI smoke: an empty spec list must not touch the encoder zoo."""

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("encoder loaded for an empty matrix")

        monkeypatch.setattr("repro.embeddings.zoo.load_encoder", boom)
        matrix = run_scenario_matrix([])
        assert len(matrix) == 0
        assert matrix.families == []
        assert matrix.to_dict()["scenarios"] == {}

    def test_singleton_matrix(self, tiny_encoder):
        matrix = run_scenario_matrix(
            [_tiny_spec("replay", name="tiny-singleton")],
            encoder=tiny_encoder,
            encoder_name="tiny",
        )
        assert len(matrix) == 1
        assert matrix.get("tiny-singleton").extras["replay_deterministic"]
        with pytest.raises(KeyError):
            matrix.get("absent")
        assert "tiny-singleton" in matrix.format()

    def test_flooding_spec_without_adaptation_rejected(self, tiny_encoder):
        spec = _tiny_spec("flooding", name="tiny-flood-bare")
        with pytest.raises(ValueError, match="adaptation"):
            run_scenario(spec, encoder=tiny_encoder)

    def test_matrix_none_runs_registered_zoo_names(self):
        # Resolution only — the full default zoo is the benchmark's job.
        assert set(available_scenarios()) >= {
            "cache_poisoning",
            "near_miss_flooding",
            "flash_crowd",
            "multi_tenant_isolation",
            "external_trace_replay",
        }
