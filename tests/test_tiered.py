"""TieredCache hierarchy: promotion/demotion, parity, persistence, threads.

Pins the tiered cache's contract (ISSUE 9):

* **tier disjointness** — an entry lives in exactly one tier at any moment
  (demotion removes from L1, promotion removes from L2), so no probe can
  score the same entry twice across the hierarchy;
* **decision parity** — on duplicate-heavy traffic the hierarchy produces
  the same hit/miss stream as a single unbounded exact MeanCache, and
  duplicate probes *within one batch* all hit (promotions are applied only
  after every probe is matched);
* **persistence** — Hypothesis-driven op sequences (insert / remove /
  flush / compact / save) round-trip through save, mmap load and delta
  replay with byte-identical match scores;
* **concurrency** — many TieredCache instances sharing one QuantizedTier
  keep the tier consistent under a thread hammer, both raw and behind
  :class:`~repro.serving.server.CacheServer` shard locks.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tiny_encoder

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.core.tiered import QuantizedTier, TieredCache
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving.server import CacheServer, ServerConfig

# L2 stays in its exact float staging phase below min_train_size, which
# makes tier scores identical to flat search — the parity tests rely on
# that; the quantized regime is exercised by the trained-tier tests.
UNTRAINED = {"min_train_size": 10_000}


# Lexically diverse intents: under the tiny encoder their pairwise
# similarity tops out well below the τ=0.85 used here, so only exact
# re-asks hit and near-neighbour shadowing cannot blur tier attribution.
TOPICS = [
    "database sharding",
    "oven temperature for sourdough",
    "tax deductions",
    "quantum entanglement",
    "marathon training",
    "guitar tuning",
    "visa applications",
    "composting",
    "kubernetes ingress",
    "sleep schedules",
    "oil painting",
    "telescope lenses",
    "french grammar",
    "bicycle repair",
    "solar panels",
    "chess openings",
    "typescript generics",
    "orchid care",
    "espresso grind size",
    "drywall anchors",
]
TAU = 0.85


def _queries(n):
    assert n <= len(TOPICS)
    return [f"how do I handle {t}" for t in TOPICS[:n]]


def _tiered(encoder, l1_entries=4, **kwargs):
    kwargs.setdefault("l2_params", UNTRAINED)
    return TieredCache(
        encoder,
        MeanCacheConfig(max_entries=l1_entries, similarity_threshold=TAU),
        **kwargs,
    )


def _tier_queries(cache):
    l1 = {e.query for e in cache.l1.entries}
    l2 = {e.query for e in cache.l2.entries}
    return l1, l2


# --------------------------------------------------------------------------- #
# Promotion / demotion invariants
# --------------------------------------------------------------------------- #
def test_l1_eviction_demotes_into_l2():
    cache = _tiered(make_tiny_encoder(), l1_entries=4)
    queries = _queries(10)
    for q in queries:
        cache.insert(q, f"response to {q}")
    assert len(cache.l1) == 4
    assert len(cache.l2) == 6
    assert len(cache) == 10
    # Demotion preserves the payload: the oldest inserts now live in L2.
    l1, l2 = _tier_queries(cache)
    assert l1 | l2 == set(queries)
    assert not (l1 & l2), "an entry must live in exactly one tier"
    # Demotions are movement, not data loss: nothing was evicted for real.
    assert cache.stats.evictions == 0
    assert cache.l2.stats.insertions == 6


def test_l2_hit_promotes_back_into_l1():
    encoder = make_tiny_encoder()
    cache = _tiered(encoder, l1_entries=2)
    queries = _queries(6)
    for q in queries:
        cache.insert(q, f"response to {q}")
    victim = queries[0]  # FIFO-demoted long ago
    assert victim in {e.query for e in cache.l2.entries}

    decision = cache.lookup(victim)
    assert decision.hit
    assert decision.response == f"response to {victim}"
    # The entry moved: now resident in L1, gone from L2.
    l1, l2 = _tier_queries(cache)
    assert victim in l1 and victim not in l2
    assert not (l1 & l2)
    assert cache.l2.stats.hits == 1
    # Promotion re-used the tier's stored vector: probing the promoted
    # entry again hits straight from L1 without touching L2.
    l2_lookups = cache.l2.stats.lookups
    assert cache.lookup(victim).hit
    assert cache.l2.stats.lookups == l2_lookups


def test_l1_hit_never_probes_l2():
    cache = _tiered(make_tiny_encoder(), l1_entries=8)
    for q in _queries(4):
        cache.insert(q, "r")
    assert len(cache.l2) == 0
    for q in _queries(4):
        assert cache.lookup(q).hit
    assert cache.l2.stats.lookups == 0


def test_entry_never_scored_twice_per_probe():
    """Tiers stay disjoint throughout a churny trace, so the candidate
    sets the two indexes can score never overlap for any single probe."""
    cache = _tiered(make_tiny_encoder(), l1_entries=3)
    rng = np.random.default_rng(0)
    queries = _queries(12)
    for step in range(60):
        q = queries[int(rng.integers(len(queries)))]
        decision = cache.lookup(q)
        if not decision.hit:
            cache.insert(q, f"response to {q}")
        l1, l2 = _tier_queries(cache)
        assert not (l1 & l2), f"tiers overlap at step {step}: {l1 & l2}"
        assert len(cache) == len(l1) + len(l2)


def test_promote_on_hit_false_leaves_entry_in_l2():
    cache = _tiered(make_tiny_encoder(), l1_entries=2, promote_on_hit=False)
    queries = _queries(6)
    for q in queries:
        cache.insert(q, f"response to {q}")
    victim = queries[0]
    decision = cache.lookup(victim)
    assert decision.hit and decision.response == f"response to {victim}"
    assert victim in {e.query for e in cache.l2.entries}


def test_l2_capacity_evicts_fifo_for_real():
    cache = _tiered(make_tiny_encoder(), l1_entries=2, l2_max_entries=3)
    queries = _queries(10)
    for q in queries:
        cache.insert(q, "r")
    assert len(cache.l1) == 2 and len(cache.l2) == 3
    assert cache.stats.evictions == 5  # truly dropped, not demoted
    assert cache.lookup(queries[0]).hit is False  # oldest are gone


# --------------------------------------------------------------------------- #
# Decision parity with a single unbounded exact cache
# --------------------------------------------------------------------------- #
def _duplicate_heavy_trace(n_intents=14, n_probes=80, seed=3):
    rng = np.random.default_rng(seed)
    intents = _queries(n_intents)
    return [intents[int(rng.integers(n_intents))] for _ in range(n_probes)]


def test_hit_stream_parity_with_unbounded_exact_cache():
    """L1 ∪ L2 must decide hit/miss exactly like one big exact cache.

    The tiered cache holds the same entry set split across tiers; with the
    L2 in its exact staging phase every tier score equals the flat score,
    so the fall-through scan reproduces the single cache's decisions.
    Responses must match too on this trace: probes are exact duplicates,
    so both caches return the enrolled response for every hit.
    """
    encoder = make_tiny_encoder()
    tiered = _tiered(encoder, l1_entries=3)
    exact = MeanCache(
        encoder, MeanCacheConfig(max_entries=100_000, similarity_threshold=TAU)
    )

    stream = []
    for q in _duplicate_heavy_trace():
        d_t = tiered.lookup(q)
        d_e = exact.lookup(q)
        assert d_t.hit == d_e.hit, f"hit-bit divergence on {q!r}"
        if d_t.hit:
            assert d_t.response == d_e.response
        else:
            tiered.insert(q, f"response to {q}")
            exact.insert(q, f"response to {q}")
        stream.append(d_t.hit)
    assert any(stream), "trace produced no hits — not duplicate-heavy"
    assert tiered.l2.stats.lookups > 0, "L2 was never probed — L1 too large"
    assert tiered.stats.hits == exact.stats.hits
    assert tiered.stats.lookups == exact.stats.lookups


def test_duplicate_probes_in_one_batch_all_hit():
    """Promotion is deferred past matching, so in-batch duplicates of a
    demoted entry must all hit even though the first match moves it."""
    encoder = make_tiny_encoder()
    cache = _tiered(encoder, l1_entries=2)
    queries = _queries(6)
    for q in queries:
        cache.insert(q, f"response to {q}")
    victim = queries[0]
    assert victim in {e.query for e in cache.l2.entries}

    batch = [victim, queries[-1], victim, victim]
    decisions = cache.lookup_batch(batch)
    assert [d.hit for d in decisions] == [True, True, True, True]
    assert {d.response for d in decisions[::2]} == {f"response to {victim}"}
    # All duplicates resolved to the same (promoted) entry, scored once
    # per probe in the tier that held it at batch start.
    assert len({d.entry_id for d in decisions[::2] if d.entry_id is not None}) <= 2
    l1, l2 = _tier_queries(cache)
    assert not (l1 & l2)


def test_context_verification_applies_in_l2():
    """A demoted contextual entry must still be context-gated on the
    fall-through path, exactly like the L1 pipeline's ContextVerify."""
    encoder = make_tiny_encoder()
    cache = _tiered(encoder, l1_entries=1)
    cache.insert(
        "how do I reset the flux capacitor",
        "contextual answer",
        context=["talking about time machines"],
    )
    # Push it out of L1 into L2.
    cache.insert("an entirely different question", "other")
    assert len(cache.l2) == 1

    wrong_ctx = cache.lookup(
        "how do I reset the flux capacitor",
        context=["discussing sourdough starters and baking bread today"],
    )
    right_ctx = cache.lookup(
        "how do I reset the flux capacitor",
        context=["talking about time machines"],
    )
    assert not wrong_ctx.hit
    assert right_ctx.hit and right_ctx.response == "contextual answer"
    assert right_ctx.context_verified


def test_combined_stats_view():
    cache = _tiered(make_tiny_encoder(), l1_entries=2)
    queries = _queries(5)
    for q in queries:
        cache.insert(q, "r")
    assert cache.lookup(queries[0]).hit  # L2 hit
    assert cache.lookup("utterly unrelated brand new text").hit is False
    stats = cache.stats
    assert stats.lookups == 2
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.insertions == 5
    tiers = cache.tier_stats()
    assert tiers["l1"].lookups == 2
    assert tiers["l2"].hits == 1
    breakdown = cache.storage_breakdown()
    assert breakdown["l1_entries"] == len(cache.l1)
    assert breakdown["l2_entries"] == len(cache.l2)
    assert breakdown["l1_bytes"] > 0 and breakdown["l2_bytes"] > 0


# --------------------------------------------------------------------------- #
# Persistence round-trips (Hypothesis op sequences)
# --------------------------------------------------------------------------- #
DIM = 16


def _probe_signature(tier, probes):
    """Byte-exact signature of the tier's match decisions for ``probes``."""
    out = []
    for p in probes:
        found = tier.match(p, top_k=5, threshold=-2.0, verify_context=False)
        out.append(
            (found[0], float(found[1]).hex()) if found is not None else None
        )
    return out


def _tier_state(tier):
    return sorted(
        (e.entry_id, e.query, e.response, tuple(e.context.texts))
        for e in tier.entries
    )


@st.composite
def op_sequences(draw):
    """insert / remove / flush / maintenance / save op streams."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 2**31 - 1)),
                st.tuples(st.just("remove"), st.integers(0, 200)),
                st.tuples(st.just("flush"), st.just(0)),
                st.tuples(st.just("maintenance"), st.just(0)),
                st.tuples(st.just("save"), st.just(0)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    # Lead with an insert so there is always something to persist.
    return [("insert", draw(st.integers(0, 2**31 - 1)))] + ops


@settings(max_examples=20, deadline=None, derandomize=True)
@given(ops=op_sequences(), data=st.data())
def test_tier_op_sequences_round_trip_through_snapshots(ops, data, tmp_path_factory):
    """Any op sequence → flush → load (copy and mmap) restores the exact
    tier: same entries, same ids, byte-identical match scores, and the
    loaded tier keeps accepting mutations with monotonic ids."""
    tmp_path = tmp_path_factory.mktemp("tier")
    tier = QuantizedTier(
        dim=DIM,
        backend="sq8",
        params={"min_train_size": 24, "seed": 0},
        snapshot_dir=tmp_path / "snap",
        compact_every=4,
    )
    for step, (op, arg) in enumerate(ops):
        if op == "insert":
            rng = np.random.default_rng(arg)
            tier.insert(
                f"query {step} seeded {arg}",
                f"response {step}",
                embedding=rng.normal(size=DIM),
            )
        elif op == "remove" and len(tier):
            victim = tier.entries[arg % len(tier)].entry_id
            tier.pop(victim)
        elif op == "flush":
            tier.flush()
        elif op == "maintenance":
            tier.maintenance()
        elif op == "save":
            tier.save(tmp_path / "snap")
    tier.flush()

    probes = np.random.default_rng(99).normal(size=(6, DIM))
    expected_state = _tier_state(tier)
    expected_sig = _probe_signature(tier, probes)
    expected_next = tier._next_id

    for mmap in (False, True):
        loaded = QuantizedTier.load(tmp_path / "snap", mmap=mmap)
        assert _tier_state(loaded) == expected_state
        assert _probe_signature(loaded, probes) == expected_sig
        assert loaded._next_id == expected_next
    # The loaded tier stays live: new ids continue past the snapshot.
    loaded.snapshot_dir = None
    new_id = loaded.insert("post-restore query", "r", np.zeros(DIM))
    assert new_id == expected_next


def test_tier_maintenance_compacts_delta_log(tmp_path):
    from repro.index import delta_log_size

    tier = QuantizedTier(
        dim=DIM, params=UNTRAINED, snapshot_dir=tmp_path / "snap", compact_every=3
    )
    rng = np.random.default_rng(1)
    tier.insert("baseline", "r", rng.normal(size=DIM))
    tier.flush()  # writes the full baseline snapshot
    for i in range(3):
        tier.insert(f"delta {i}", "r", rng.normal(size=DIM))
        tier.flush()
    assert delta_log_size(tmp_path / "snap")[0] == 3
    tier.maintenance()  # 3 >= compact_every → fold into a full snapshot
    assert delta_log_size(tmp_path / "snap")[0] == 0
    loaded = QuantizedTier.load(tmp_path / "snap")
    assert _tier_state(loaded) == _tier_state(tier)


def test_tiered_cache_save_load_round_trip(tmp_path):
    encoder = make_tiny_encoder()
    cache = _tiered(encoder, l1_entries=3)
    queries = _queries(9)
    for q in queries:
        cache.insert(q, f"response to {q}")
    probes = queries[::2] + ["something never enrolled at all"]
    before = [
        (d.hit, d.response, float(d.similarity).hex())
        for d in [cache.lookup(q) for q in probes]
    ]
    # Lookups promoted entries — capture the post-lookup layout.
    layout = (_tier_queries(cache), len(cache.l1), len(cache.l2))

    cache.save(tmp_path / "tc")
    for mmap in (False, True):
        loaded = TieredCache.load(tmp_path / "tc", encoder.clone(), mmap=mmap)
        assert (_tier_queries(loaded), len(loaded.l1), len(loaded.l2)) == layout
        after = [
            (d.hit, d.response, float(d.similarity).hex())
            for d in [loaded.lookup(q) for q in probes]
        ]
        assert after == before
        # Demotion wiring survived the load: overflow still lands in L2.
        grown = len(loaded.l2)
        for i in range(4):
            loaded.insert(f"fresh post-load query {i}", "r")
        assert len(loaded.l2) > grown


# --------------------------------------------------------------------------- #
# Concurrency: a shared tier hammered through many owners
# --------------------------------------------------------------------------- #
N_THREADS = 6
OPS_PER_THREAD = 40


def test_shared_tier_thread_hammer_raw():
    """N caches (one per thread) share one QuantizedTier; interleaved
    insert/lookup churn must leave the tier internally consistent."""
    encoder = make_tiny_encoder()
    shared = QuantizedTier(params=dict(UNTRAINED))
    caches = [
        TieredCache(encoder, MeanCacheConfig(max_entries=3), l2=shared)
        for _ in range(N_THREADS)
    ]
    errors = []

    def worker(tid):
        try:
            cache = caches[tid]
            for i in range(OPS_PER_THREAD):
                q = f"thread {tid} question number {i % 10}"
                if not cache.lookup(q).hit:
                    cache.insert(q, f"answer {tid}/{i}")
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append((tid, exc))

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors

    # Tier invariants: entries dict and quantized index agree exactly.
    assert sorted(e.entry_id for e in shared.entries) == sorted(shared.index.ids)
    assert len(shared) == len(shared.index)
    counters = shared.stats
    assert counters.insertions >= len(shared)
    assert counters.lookups == counters.hits + counters.misses


def test_shared_tier_hammer_with_runtime_checker(monkeypatch):
    """The raw shared-tier hammer with the tier's lock tracked.

    Under ``REPRO_DEBUG_CONCURRENCY=1`` the QuantizedTier's internal RLock
    becomes a :class:`~repro.analysis.runtime.TrackedLock`, so this churn
    additionally exercises the lock-order cycle detector across the
    per-thread interleavings; CI re-runs the whole suite under the flag.
    """
    monkeypatch.setenv("REPRO_DEBUG_CONCURRENCY", "1")
    from repro.analysis.runtime import TrackedLock, reset_registry

    reset_registry()
    try:
        encoder = make_tiny_encoder()
        shared = QuantizedTier(params=dict(UNTRAINED))
        assert isinstance(shared.lock, TrackedLock)
        caches = [
            TieredCache(encoder, MeanCacheConfig(max_entries=3), l2=shared)
            for _ in range(N_THREADS)
        ]
        errors = []

        def worker(tid):
            try:
                cache = caches[tid]
                for i in range(OPS_PER_THREAD // 2):
                    q = f"tracked thread {tid} question number {i % 10}"
                    if not cache.lookup(q).hit:
                        cache.insert(q, f"answer {tid}/{i}")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((tid, exc))

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert sorted(e.entry_id for e in shared.entries) == sorted(shared.index.ids)
    finally:
        reset_registry()


@pytest.mark.serving
def test_tiered_cache_behind_server_shard_locks():
    """TieredCache slots in as the shard-local cache with a shared L2;
    a client-thread hammer through CacheServer must keep every tier
    consistent and resolve every request."""
    encoder = make_tiny_encoder()
    shared = QuantizedTier(params=dict(UNTRAINED))
    server = CacheServer(
        cache_factory=lambda uid: TieredCache(
            encoder, MeanCacheConfig(max_entries=3), l2=shared
        ),
        service=SimulatedLLMService(LLMServiceConfig(seed=0), thread_safe=True),
        config=ServerConfig(n_shards=4, max_batch_size=8, max_batch_wait_s=0.002),
    )
    queries_of_thread = {
        tid: [f"user {tid} asks question {i % 8}" for i in range(20)]
        for tid in range(N_THREADS)
    }
    responses = {}
    errors = []

    def client(tid):
        try:
            for i, query in enumerate(queries_of_thread[tid]):
                future = server.submit_threadsafe(f"user-{tid}", query)
                responses[(tid, i)] = future.result(timeout=60)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append((tid, exc))

    server.start()
    try:
        threads = [
            threading.Thread(target=client, args=(tid,))
            for tid in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        server.stop()
    assert not errors, errors
    assert len(responses) == N_THREADS * 20

    # Each user's repeated queries eventually hit (their own enrolments).
    assert any(r.hit for r in responses.values())
    # Shared tier stayed consistent across all shard owners.
    assert sorted(e.entry_id for e in shared.entries) == sorted(shared.index.ids)
    report = server.storage_report()
    assert report["n_caches"] == N_THREADS
    assert report["total_entries"] >= len(shared)
    assert report["l2_bytes"] >= 0
