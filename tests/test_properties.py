"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.policy import LFUPolicy, LRUPolicy
from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer
from repro.embeddings.pca import PCA
from repro.embeddings.similarity import cosine_similarity, pairwise_cosine, semantic_search
from repro.federated.aggregation import aggregate_thresholds, fedavg
from repro.federated.messages import buffer_to_parameters, parameters_to_buffer
from repro.metrics.classification import confusion_matrix

# Bounded, finite float arrays for numerical properties.
finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def vector_pairs(draw, max_dim=16):
    dim = draw(st.integers(min_value=2, max_value=max_dim))
    a = draw(hnp.arrays(np.float64, dim, elements=finite_floats))
    b = draw(hnp.arrays(np.float64, dim, elements=finite_floats))
    return a, b


class TestCosineProperties:
    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_bounded_in_unit_interval(self, pair):
        a, b = pair
        sim = cosine_similarity(a, b)
        assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9

    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a), abs=1e-9)

    @given(vector_pairs(), st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, pair, scale):
        a, b = pair
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(scale * a, b), abs=1e-8)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_is_one(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        X = rng.normal(size=(n, d))
        sims = pairwise_cosine(X, X)
        assert np.allclose(sims, 1.0)


class TestSemanticSearchProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_is_truly_the_best(self, n_corpus, dim, top_k, seed):
        rng = np.random.default_rng(seed)
        corpus = rng.normal(size=(n_corpus, dim))
        query = rng.normal(size=dim)
        hits = semantic_search(query, corpus, top_k=top_k)[0]
        all_sims = cosine_similarity(query, corpus).ravel()
        expected_best = float(np.max(all_sims))
        assert hits[0].score == pytest.approx(expected_best, abs=1e-9)
        assert len(hits) == min(top_k, n_corpus)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestFeaturizerProperties:
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs")), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_norm_at_most_one(self, text):
        feat = HashedFeaturizer(FeaturizerConfig(n_features=128))
        vec = feat.transform(text)
        assert vec.shape == (128,)
        assert np.linalg.norm(vec) <= 1.0 + 1e-9

    @given(st.lists(st.sampled_from(["sort", "list", "python", "bake", "cookies", "trip"]), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_token_order_invariance(self, tokens):
        # Bag-of-features: permuting tokens must not change the vector.
        feat = HashedFeaturizer(FeaturizerConfig(n_features=256))
        a = feat.transform(" ".join(tokens))
        b = feat.transform(" ".join(reversed(tokens)))
        assert np.allclose(a, b)


class TestFedAvgProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=40, deadline=None)
    def test_average_stays_in_coordinatewise_hull(self, n_clients, n_params, seed):
        rng = np.random.default_rng(seed)
        shapes = [tuple(rng.integers(1, 4, size=2)) for _ in range(n_params)]
        clients = [[rng.normal(size=s) for s in shapes] for _ in range(n_clients)]
        weights = rng.integers(1, 10, size=n_clients).astype(float)
        out = fedavg(clients, list(weights))
        for j in range(n_params):
            stacked = np.stack([c[j] for c in clients])
            assert np.all(out[j] <= stacked.max(axis=0) + 1e-9)
            assert np.all(out[j] >= stacked.min(axis=0) - 1e-9)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_threshold_mean_bounded(self, thresholds):
        agg = aggregate_thresholds(thresholds)
        assert min(thresholds) - 1e-12 <= agg <= max(thresholds) + 1e-12


class TestMessageProperties:
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_identity(self, n_params, seed):
        rng = np.random.default_rng(seed)
        params = [rng.normal(size=tuple(rng.integers(1, 5, size=rng.integers(1, 3)))) for _ in range(n_params)]
        buffer, spec = parameters_to_buffer(params)
        restored = buffer_to_parameters(buffer, spec)
        assert len(restored) == len(params)
        for a, b in zip(params, restored):
            assert a.shape == b.shape
            assert np.allclose(a, b)


class TestConfusionMatrixProperties:
    @given(
        st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200)
    )
    @settings(max_examples=80, deadline=None)
    def test_counts_sum_and_metric_bounds(self, labelled):
        y_true = [a for a, _ in labelled]
        y_pred = [b for _, b in labelled]
        cm = confusion_matrix(y_true, y_pred)
        assert cm.total == len(labelled)
        for value in (cm.precision(), cm.recall(), cm.accuracy(), cm.f1(), cm.fbeta(0.5)):
            assert 0.0 <= value <= 1.0
        # Fbeta lies between min and max of precision/recall when both nonzero.
        p, r = cm.precision(), cm.recall()
        if p > 0 and r > 0:
            assert min(p, r) - 1e-12 <= cm.fbeta(0.5) <= max(p, r) + 1e-12


class TestPCAProperties:
    @given(
        st.integers(min_value=6, max_value=30),
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=30, deadline=None)
    def test_variance_ratio_bounded_and_monotone(self, n, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        k = min(3, min(n, d) - 1)
        pca = PCA(n_components=max(k, 1)).fit(X)
        ratios = pca.explained_variance_ratio_
        assert np.all(ratios >= -1e-12) and ratios.sum() <= 1.0 + 1e-9
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)


class TestPolicyProperties:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "access", "remove"]), st.integers(0, 9)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_policies_never_track_ghost_entries(self, ops):
        for policy in (LRUPolicy(), LFUPolicy()):
            live = set()
            for op, key in ops:
                if op == "insert":
                    policy.record_insert(key)
                    live.add(key)
                elif op == "access":
                    policy.record_access(key)
                else:
                    policy.record_remove(key)
                    live.discard(key)
            assert len(policy) == len(live)
            if live:
                victim = policy.select_victim()
                assert victim in live
