"""Unit tests for the training objectives, including numerical gradient checks."""

import numpy as np
import pytest

from repro.embeddings.losses import (
    combined_multitask_loss,
    contrastive_loss,
    multiple_negatives_ranking_loss,
)


def _unit_rows(rng, n, d):
    x = rng.normal(size=(n, d))
    return x / np.linalg.norm(x, axis=1, keepdims=True)


class TestContrastiveLoss:
    def test_identical_positive_pair_has_zero_loss(self):
        e = np.array([[1.0, 0.0], [0.0, 1.0]])
        loss, ga, gb = contrastive_loss(e, e.copy(), np.array([1, 1]))
        assert loss == pytest.approx(0.0)
        assert np.allclose(ga, 0.0) and np.allclose(gb, 0.0)

    def test_distant_negative_pair_has_zero_loss(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[-1.0, 0.0]])
        loss, ga, gb = contrastive_loss(a, b, np.array([0]), margin=1.0)
        assert loss == pytest.approx(0.0)
        assert np.allclose(ga, 0.0)

    def test_close_negative_pair_is_penalised(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.99, np.sqrt(1 - 0.99**2)]])
        loss, _, _ = contrastive_loss(a, b, np.array([0]), margin=1.0)
        assert loss > 0.0

    def test_positive_loss_grows_with_distance(self):
        a = np.array([[1.0, 0.0]])
        near = np.array([[0.99, np.sqrt(1 - 0.99**2)]])
        far = np.array([[0.0, 1.0]])
        near_loss, _, _ = contrastive_loss(a, near, np.array([1]))
        far_loss, _, _ = contrastive_loss(a, far, np.array([1]))
        assert far_loss > near_loss

    def test_gradient_antisymmetry(self, rng):
        a = _unit_rows(rng, 6, 8)
        b = _unit_rows(rng, 6, 8)
        labels = np.array([1, 0, 1, 0, 1, 0])
        _, ga, gb = contrastive_loss(a, b, labels)
        assert np.allclose(ga, -gb)

    def test_numerical_gradient(self, rng):
        a = _unit_rows(rng, 4, 6)
        b = _unit_rows(rng, 4, 6)
        labels = np.array([1, 0, 1, 0])
        _, ga, _ = contrastive_loss(a, b, labels, margin=1.0)
        eps = 1e-6
        for i in (0, 2):
            for j in (0, 3):
                ap = a.copy(); ap[i, j] += eps
                am = a.copy(); am[i, j] -= eps
                lp, _, _ = contrastive_loss(ap, b, labels, margin=1.0)
                lm, _, _ = contrastive_loss(am, b, labels, margin=1.0)
                numeric = (lp - lm) / (2 * eps)
                assert numeric == pytest.approx(ga[i, j], abs=1e-5)

    def test_empty_batch(self):
        loss, ga, gb = contrastive_loss(np.zeros((0, 4)), np.zeros((0, 4)), np.zeros(0))
        assert loss == 0.0 and ga.shape == (0, 4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contrastive_loss(np.zeros((2, 4)), np.zeros((3, 4)), np.zeros(2))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contrastive_loss(np.zeros((2, 4)), np.zeros((2, 4)), np.zeros(3))


class TestMNRLoss:
    def test_perfectly_aligned_pairs_have_low_loss(self, rng):
        anchors = _unit_rows(rng, 8, 16)
        loss_aligned, _, _ = multiple_negatives_ranking_loss(anchors, anchors.copy())
        shuffled = anchors[::-1].copy()
        loss_shuffled, _, _ = multiple_negatives_ranking_loss(anchors, shuffled)
        assert loss_aligned < loss_shuffled

    def test_gradients_push_diagonal_up(self, rng):
        anchors = _unit_rows(rng, 5, 8)
        positives = _unit_rows(rng, 5, 8)
        loss, ga, _ = multiple_negatives_ranking_loss(anchors, positives, scale=10.0)
        # Taking a small step along -grad should decrease the loss.
        stepped = anchors - 0.01 * ga
        loss2, _, _ = multiple_negatives_ranking_loss(stepped, positives, scale=10.0)
        assert loss2 < loss

    def test_numerical_gradient(self, rng):
        anchors = _unit_rows(rng, 4, 5)
        positives = _unit_rows(rng, 4, 5)
        _, ga, gp = multiple_negatives_ranking_loss(anchors, positives, scale=5.0)
        eps = 1e-6
        i, j = 1, 2
        ap = anchors.copy(); ap[i, j] += eps
        am = anchors.copy(); am[i, j] -= eps
        lp, _, _ = multiple_negatives_ranking_loss(ap, positives, scale=5.0)
        lm, _, _ = multiple_negatives_ranking_loss(am, positives, scale=5.0)
        assert (lp - lm) / (2 * eps) == pytest.approx(ga[i, j], abs=1e-5)
        pp = positives.copy(); pp[i, j] += eps
        pm = positives.copy(); pm[i, j] -= eps
        lp, _, _ = multiple_negatives_ranking_loss(anchors, pp, scale=5.0)
        lm, _, _ = multiple_negatives_ranking_loss(anchors, pm, scale=5.0)
        assert (lp - lm) / (2 * eps) == pytest.approx(gp[i, j], abs=1e-5)

    def test_empty_batch(self):
        loss, ga, gp = multiple_negatives_ranking_loss(np.zeros((0, 4)), np.zeros((0, 4)))
        assert loss == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multiple_negatives_ranking_loss(np.zeros((2, 4)), np.zeros((2, 5)))


class TestCombinedLoss:
    def test_reduces_to_contrastive_when_mnr_disabled(self, rng):
        a = _unit_rows(rng, 6, 8)
        b = _unit_rows(rng, 6, 8)
        labels = np.array([1, 0, 1, 0, 1, 0])
        c_loss, c_ga, _ = contrastive_loss(a, b, labels)
        loss, ga, _ = combined_multitask_loss(a, b, labels, mnr_weight=0.0)
        assert loss == pytest.approx(c_loss)
        assert np.allclose(ga, c_ga)

    def test_mnr_term_only_touches_positive_rows(self, rng):
        a = _unit_rows(rng, 6, 8)
        b = _unit_rows(rng, 6, 8)
        labels = np.array([1, 0, 1, 0, 1, 0])
        _, ga_no_mnr, _ = combined_multitask_loss(a, b, labels, mnr_weight=0.0)
        _, ga_mnr, _ = combined_multitask_loss(a, b, labels, mnr_weight=1.0)
        neg_rows = labels < 0.5
        assert np.allclose(ga_no_mnr[neg_rows], ga_mnr[neg_rows])
        assert not np.allclose(ga_no_mnr[~neg_rows], ga_mnr[~neg_rows])

    def test_single_positive_skips_mnr(self, rng):
        a = _unit_rows(rng, 3, 8)
        b = _unit_rows(rng, 3, 8)
        labels = np.array([1, 0, 0])
        loss_with, _, _ = combined_multitask_loss(a, b, labels, mnr_weight=5.0)
        loss_without, _, _ = combined_multitask_loss(a, b, labels, mnr_weight=0.0)
        assert loss_with == pytest.approx(loss_without)

    def test_weights_scale_loss(self, rng):
        a = _unit_rows(rng, 6, 8)
        b = _unit_rows(rng, 6, 8)
        labels = np.array([1, 1, 1, 0, 0, 0])
        loss1, _, _ = combined_multitask_loss(a, b, labels, contrastive_weight=1.0, mnr_weight=0.0)
        loss2, _, _ = combined_multitask_loss(a, b, labels, contrastive_weight=2.0, mnr_weight=0.0)
        assert loss2 == pytest.approx(2.0 * loss1)
