"""Unit tests for the siamese encoder."""

import numpy as np
import pytest

from conftest import make_tiny_encoder
from repro.embeddings.model import EncoderConfig, SiameseEncoder
from repro.embeddings.pca import PCA
from repro.embeddings.similarity import cosine_similarity


class TestConfigValidation:
    def test_negative_anisotropy_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(anisotropy=-0.1)

    def test_negative_text_noise_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(text_noise=-0.1)

    def test_zero_hidden_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(hidden_dim=0)


class TestForward:
    def test_embeddings_are_unit_norm(self, tiny_encoder):
        emb = tiny_encoder.encode(["sort a list in python", "bake a cake"])
        norms = np.linalg.norm(emb, axis=1)
        assert np.allclose(norms, 1.0)

    def test_single_text_returns_vector(self, tiny_encoder):
        emb = tiny_encoder.encode("sort a list in python")
        assert emb.shape == (tiny_encoder.config.output_dim,)

    def test_batch_shape(self, tiny_encoder):
        emb = tiny_encoder.encode(["a", "b", "c"])
        assert emb.shape == (3, tiny_encoder.config.output_dim)

    def test_deterministic(self, tiny_encoder):
        text = "merge two sorted arrays"
        assert np.allclose(tiny_encoder.encode(text), tiny_encoder.encode(text))

    def test_same_config_same_embeddings(self):
        a = make_tiny_encoder(seed=9)
        b = make_tiny_encoder(seed=9)
        text = "merge two sorted arrays"
        assert np.allclose(a.encode(text), b.encode(text))

    def test_paraphrase_closer_than_unrelated(self, tiny_encoder):
        q = tiny_encoder.encode("How can I sort a list in python?")
        dup = tiny_encoder.encode("What is the best way to order a python list?")
        other = tiny_encoder.encode("Tips for how to grill salmon fillets")
        assert cosine_similarity(q, dup) > cosine_similarity(q, other)

    def test_anisotropy_raises_unrelated_similarity(self):
        flat = make_tiny_encoder(seed=4, anisotropy=0.0)
        skew = make_tiny_encoder(seed=4, anisotropy=2.0)
        a, b = "sort a python list", "grill salmon fillets tonight"
        sim_flat = cosine_similarity(flat.encode(a), flat.encode(b))
        sim_skew = cosine_similarity(skew.encode(a), skew.encode(b))
        assert sim_skew > sim_flat


class TestBackward:
    def test_numerical_gradient_of_parameters(self, tiny_encoder):
        texts = ["sort a list in python", "bake chocolate cookies"]
        X = tiny_encoder.featurize(texts)
        target = np.ones((2, tiny_encoder.config.output_dim)) / np.sqrt(tiny_encoder.config.output_dim)

        def loss_value():
            E = tiny_encoder.forward(X)
            return float(0.5 * np.sum((E - target) ** 2))

        cache = {}
        E = tiny_encoder.forward(X, cache)
        grads = tiny_encoder.backward(cache, E - target)
        params = [tiny_encoder.W1, tiny_encoder.b1, tiny_encoder.W2, tiny_encoder.b2]
        eps = 1e-6
        # Spot-check a few coordinates of every parameter tensor.
        rng = np.random.default_rng(0)
        for p, g in zip(params, grads):
            flat_idx = rng.choice(p.size, size=3, replace=False)
            for idx in flat_idx:
                orig = p.flat[idx]
                p.flat[idx] = orig + eps
                up = loss_value()
                p.flat[idx] = orig - eps
                down = loss_value()
                p.flat[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(g.flat[idx], rel=1e-3, abs=1e-6)


class TestParameters:
    def test_get_set_roundtrip(self, tiny_encoder):
        # Same architecture/config (same seed -> same featurizer hash and
        # anisotropy direction); transferring parameters must transfer the
        # embedding function exactly.  This is what FedAvg relies on.
        params = tiny_encoder.get_parameters()
        tiny_encoder.train_on_pairs([("a b c", "a b c d", 1)] * 4, epochs=1)
        other = make_tiny_encoder(seed=tiny_encoder.config.seed)
        other.set_parameters(params)
        tiny_encoder.set_parameters(params)
        text = "reverse a linked list"
        assert np.allclose(tiny_encoder.encode(text), other.encode(text))

    def test_get_parameters_returns_copies(self, tiny_encoder):
        params = tiny_encoder.get_parameters()
        params[0][:] = 0.0
        assert not np.allclose(tiny_encoder.W1, 0.0)

    def test_set_wrong_count_rejected(self, tiny_encoder):
        with pytest.raises(ValueError):
            tiny_encoder.set_parameters(tiny_encoder.get_parameters()[:2])

    def test_set_wrong_shape_rejected(self, tiny_encoder):
        params = tiny_encoder.get_parameters()
        params[0] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            tiny_encoder.set_parameters(params)

    def test_parameter_count(self, tiny_encoder):
        cfg = tiny_encoder.config
        expected = (
            cfg.n_features * cfg.hidden_dim
            + cfg.hidden_dim
            + cfg.hidden_dim * cfg.output_dim
            + cfg.output_dim
        )
        assert tiny_encoder.parameter_count() == expected

    def test_state_dict_roundtrip(self, tiny_encoder):
        state = tiny_encoder.state_dict()
        other = make_tiny_encoder(seed=tiny_encoder.config.seed)
        other.W2[:] = 0.0
        other.load_state_dict(state)
        assert np.allclose(other.W2, tiny_encoder.W2)

    def test_clone_is_independent(self, tiny_encoder):
        clone = tiny_encoder.clone()
        clone.W1[:] = 0.0
        assert not np.allclose(tiny_encoder.W1, 0.0)


class TestTraining:
    def test_training_reduces_loss(self, tiny_encoder):
        pairs = [
            ("sort a list in python", "order a python list", 1),
            ("sort a list in python", "grill salmon fillets", 0),
            ("extend my phone battery", "improve my smartphone battery life", 1),
            ("extend my phone battery", "write a cover letter", 0),
            ("bake chocolate chip cookies", "make cookies with chocolate chips", 1),
            ("bake chocolate chip cookies", "plan a trip to japan", 0),
        ] * 4
        # Disable the MNR term here: the toy batch repeats identical positive
        # pairs, which makes in-batch negatives identical to the positives and
        # gives MNR an irreducible floor.  The contrastive objective must
        # decrease monotonically enough to end below its starting value.
        losses = tiny_encoder.train_on_pairs(pairs, epochs=5, batch_size=8, mnr_weight=0.0)
        assert len(losses) == 5
        assert losses[-1] < losses[0]

    def test_training_improves_separation(self, tiny_encoder):
        dup = ("sort a list in python", "order a python list")
        neg = ("sort a list in python", "reverse a list in python")
        before_gap = cosine_similarity(
            tiny_encoder.encode(dup[0]), tiny_encoder.encode(dup[1])
        ) - cosine_similarity(tiny_encoder.encode(neg[0]), tiny_encoder.encode(neg[1]))
        pairs = [(*dup, 1), (*neg, 0)] * 16
        tiny_encoder.train_on_pairs(pairs, epochs=8, batch_size=8)
        after_gap = cosine_similarity(
            tiny_encoder.encode(dup[0]), tiny_encoder.encode(dup[1])
        ) - cosine_similarity(tiny_encoder.encode(neg[0]), tiny_encoder.encode(neg[1]))
        assert after_gap > before_gap

    def test_empty_pairs_is_noop(self, tiny_encoder):
        before = tiny_encoder.get_parameters()
        losses = tiny_encoder.train_on_pairs([], epochs=3)
        assert losses == [0.0, 0.0, 0.0]
        after = tiny_encoder.get_parameters()
        assert all(np.allclose(b, a) for b, a in zip(before, after))


class TestPCAIntegration:
    def test_fit_pca_changes_embedding_dim(self, tiny_encoder):
        texts = [f"question number {i} about topic {i % 7}" for i in range(40)]
        tiny_encoder.fit_pca(texts, n_components=8)
        assert tiny_encoder.embedding_dim == 8
        emb = tiny_encoder.encode("a new question", compress=True)
        assert emb.shape == (8,)

    def test_uncompressed_encode_still_available(self, tiny_encoder):
        texts = [f"question number {i} about topic {i % 7}" for i in range(40)]
        tiny_encoder.fit_pca(texts, n_components=8)
        emb = tiny_encoder.encode("a new question", compress=False)
        assert emb.shape == (tiny_encoder.config.output_dim,)

    def test_attach_unfitted_pca_rejected(self, tiny_encoder):
        with pytest.raises(ValueError):
            tiny_encoder.attach_pca(PCA(n_components=4))

    def test_attach_wrong_dim_pca_rejected(self, tiny_encoder):
        pca = PCA(n_components=4)
        pca.fit(np.random.default_rng(0).normal(size=(20, 16)))
        with pytest.raises(ValueError):
            tiny_encoder.attach_pca(pca)

    def test_detach_pca(self, tiny_encoder):
        texts = [f"question {i}" for i in range(30)]
        tiny_encoder.fit_pca(texts, n_components=4)
        tiny_encoder.detach_pca()
        assert tiny_encoder.embedding_dim == tiny_encoder.config.output_dim


class TestTextNoise:
    def test_noise_is_deterministic_per_text(self):
        cfg = EncoderConfig(n_features=256, hidden_dim=32, output_dim=64, seed=3, text_noise=0.5)
        enc = SiameseEncoder(cfg)
        a = enc.encode("sort a list in python")
        b = enc.encode("sort a list in python")
        assert np.allclose(a, b)

    def test_noise_reduces_paraphrase_similarity(self):
        clean = SiameseEncoder(EncoderConfig(n_features=256, hidden_dim=32, output_dim=64, seed=3))
        noisy = SiameseEncoder(
            EncoderConfig(n_features=256, hidden_dim=32, output_dim=64, seed=3, text_noise=0.8)
        )
        q, dup = "sort a list in python", "order a python list"
        sim_clean = cosine_similarity(clean.encode(q), clean.encode(dup))
        sim_noisy = cosine_similarity(noisy.encode(q), noisy.encode(dup))
        assert sim_noisy < sim_clean
