"""Randomized eviction × index interplay: bookkeeping never diverges.

Drives randomized insert / lookup / remove sequences through a small
:class:`MeanCache` under every eviction policy, asserting after **every**
step that the three id spaces stay consistent:

* ids in the vector index == ids of the live entries,
* the eviction policy tracks exactly the live ids,
* ``len(cache) == len(index) == len(policy)``.

Evictions happen naturally whenever an insert exceeds ``max_entries``; the
index must drop exactly the victim's row (swap-with-last) and the policy
must forget it.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from conftest import make_tiny_encoder

from repro.core.cache import MeanCache, MeanCacheConfig

POLICIES = ("lru", "lfu", "fifo")


def _assert_consistent(cache: MeanCache) -> None:
    entry_ids = {e.entry_id for e in cache.entries}
    index_ids = set(cache.index.ids)
    policy_ids = set()
    policy = cache._policy
    if hasattr(policy, "_order"):
        policy_ids = set(policy._order)
    elif hasattr(policy, "_counts"):
        policy_ids = set(policy._counts)
    assert index_ids == entry_ids, "index ids diverged from live entries"
    assert policy_ids == entry_ids, "policy ids diverged from live entries"
    assert len(cache) == len(cache.index) == len(policy)
    # Every live id must resolve to a finite vector of the right dimension.
    for entry_id in entry_ids:
        vec = cache.index.get(entry_id)
        assert np.all(np.isfinite(vec))


@pytest.mark.parametrize("policy", POLICIES)
def test_randomized_insert_lookup_evict_consistency(policy):
    # crc32, not hash(): str hashes are salted per process, and a failing
    # randomized sequence must be reproducible by rerunning.
    rng = np.random.default_rng(zlib.crc32(policy.encode()))
    encoder = make_tiny_encoder(seed=11)
    cache = MeanCache(
        encoder,
        MeanCacheConfig(
            similarity_threshold=0.5,
            max_entries=12,
            eviction_policy=policy,
            top_k=3,
        ),
    )
    vocab = [
        "sort a python list",
        "reverse a string in python",
        "plan a trip to japan",
        "improve wifi signal",
        "bake a chocolate cake",
        "invest in index funds",
        "explain photosynthesis",
        "fix a flat bicycle tire",
        "merge two dataframes",
        "reset a router",
    ]
    inserted = 0
    for step in range(300):
        op = rng.random()
        text = f"{vocab[int(rng.integers(len(vocab)))]} variant {int(rng.integers(40))}"
        if op < 0.55:
            cache.insert(text, f"response {inserted}")
            inserted += 1
        elif op < 0.9:
            cache.lookup(text)
        elif len(cache):
            # Remove a random live entry directly (external invalidation).
            victim = cache.entries[int(rng.integers(len(cache)))].entry_id
            cache.remove(victim)
        _assert_consistent(cache)
        assert len(cache) <= cache.config.max_entries

    assert cache.stats.evictions > 0, "workload never overflowed the cache"
    assert cache.stats.insertions == inserted


@pytest.mark.parametrize("policy", POLICIES)
def test_eviction_to_zero_and_refill(policy):
    cache = MeanCache(
        make_tiny_encoder(seed=3),
        MeanCacheConfig(max_entries=5, eviction_policy=policy),
    )
    ids = cache.populate([f"query number {i}" for i in range(5)])
    for entry_id in ids:
        cache.remove(entry_id)
        _assert_consistent(cache)
    assert len(cache) == 0
    cache.populate([f"fresh query {i}" for i in range(8)])
    _assert_consistent(cache)
    assert len(cache) == 5
    assert cache.stats.evictions == 3
