"""Tests for MeanCache (Algorithm 1), compression and the client session."""

import numpy as np
import pytest

from conftest import make_tiny_encoder
from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.baselines.keyword_cache import KeywordCache, KeywordCacheConfig
from repro.core.cache import CacheDecision, MeanCache, MeanCacheConfig
from repro.core.client import MeanCacheClient
from repro.core.compression import compress_cache
from repro.core.storage import InMemoryStore
from repro.llm.service import SimulatedLLMService


@pytest.fixture()
def trained_encoder():
    """A tiny encoder fine-tuned just enough to separate the test phrases."""
    enc = make_tiny_encoder(seed=2)
    pairs = [
        ("How can I sort a list in python?", "What is the best way to order a python list?", 1),
        ("How can I sort a list in python?", "How can I reverse a list in python?", 0),
        ("Tips for how to bake chocolate chip cookies", "How do I make cookies with chocolate chips?", 1),
        ("Tips for how to bake chocolate chip cookies", "How do I plan a trip to japan?", 0),
        ("How do I extend the battery life of my smartphone?", "Tips for improving my phone's battery duration", 1),
        ("How do I extend the battery life of my smartphone?", "How do I reset my wifi router?", 0),
    ] * 8
    enc.train_on_pairs(pairs, epochs=6, batch_size=8)
    return enc


class TestMeanCacheBasics:
    def test_empty_cache_misses(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        decision = cache.lookup("anything at all")
        assert not decision.hit and decision.response is None
        assert cache.stats.lookups == 1 and cache.stats.misses == 1

    def test_insert_then_exact_hit(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(similarity_threshold=0.9))
        cache.insert("How can I sort a list in python?", "use sorted()")
        decision = cache.lookup("How can I sort a list in python?")
        assert decision.hit and decision.response == "use sorted()"
        assert decision.similarity == pytest.approx(1.0, abs=1e-6)

    def test_paraphrase_hit_unrelated_miss(self, trained_encoder):
        cache = MeanCache(trained_encoder, MeanCacheConfig(similarity_threshold=0.8))
        cache.insert("How can I sort a list in python?", "use sorted()")
        dup = cache.lookup("What is the best way to order a python list?")
        other = cache.lookup("How do I plan a trip to japan?")
        assert dup.hit
        assert not other.hit

    def test_empty_query_rejected(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        with pytest.raises(ValueError):
            cache.lookup("  ")
        with pytest.raises(ValueError):
            cache.insert("", "resp")

    def test_populate_and_len(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        ids = cache.populate(["q one", "q two", "q three"])
        assert len(cache) == 3 and len(ids) == 3

    def test_remove_entry(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(similarity_threshold=0.95))
        eid = cache.insert("sort a python list", "resp")
        cache.remove(eid)
        assert len(cache) == 0
        assert not cache.lookup("sort a python list").hit
        with pytest.raises(KeyError):
            cache.remove(eid)

    def test_clear(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        cache.populate(["a b c", "d e f"])
        cache.clear()
        assert len(cache) == 0

    def test_hit_updates_stats_and_entry(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(similarity_threshold=0.9))
        eid = cache.insert("sort a python list", "resp")
        cache.lookup("sort a python list")
        entry = cache.entries[0]
        assert entry.hit_count == 1
        assert cache.stats.hit_rate == pytest.approx(1.0)

    def test_persistent_store_receives_entries(self, tiny_encoder):
        store = InMemoryStore()
        cache = MeanCache(tiny_encoder, store=store)
        eid = cache.insert("sort a python list", "resp")
        assert f"entry:{eid}" in store
        cache.remove(eid)
        assert f"entry:{eid}" not in store

    def test_config_validation(self, tiny_encoder):
        with pytest.raises(ValueError):
            MeanCacheConfig(similarity_threshold=1.5)
        with pytest.raises(ValueError):
            MeanCacheConfig(top_k=0)
        with pytest.raises(ValueError):
            MeanCache(tiny_encoder, MeanCacheConfig(compressed=True))

    def test_set_threshold(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        cache.set_threshold(0.91)
        assert cache.config.similarity_threshold == 0.91
        with pytest.raises(ValueError):
            cache.set_threshold(2.0)


class TestEviction:
    def test_capacity_enforced_with_lru(self, tiny_encoder):
        cache = MeanCache(tiny_encoder, MeanCacheConfig(max_entries=3, eviction_policy="lru"))
        for i in range(5):
            cache.insert(f"query number {i} about topic {i}", f"r{i}")
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        remaining = {e.query for e in cache.entries}
        assert "query number 0 about topic 0" not in remaining

    def test_lru_keeps_recently_accessed(self, tiny_encoder):
        cache = MeanCache(
            tiny_encoder,
            MeanCacheConfig(max_entries=2, eviction_policy="lru", similarity_threshold=0.99),
        )
        cache.insert("alpha bravo charlie", "r0")
        cache.insert("delta echo foxtrot", "r1")
        cache.lookup("alpha bravo charlie")  # touch entry 0
        cache.insert("golf hotel india", "r2")  # evicts entry 1
        remaining = {e.query for e in cache.entries}
        assert "alpha bravo charlie" in remaining
        assert "delta echo foxtrot" not in remaining


class TestContextHandling:
    def test_contextual_trap_misses_with_verification(self, trained_encoder):
        config = MeanCacheConfig(similarity_threshold=0.8, verify_context=True, context_threshold=0.6)
        cache = MeanCache(trained_encoder, config)
        parent = "How can I sort a list in python?"
        cache.insert(parent, "use sorted()")
        cache.insert("Change the color to red", "set color='red'", context=[parent])
        # Same follow-up text but under a different conversation -> must miss.
        trap = cache.lookup(
            "Change the color to red",
            context=["Tips for how to bake chocolate chip cookies"],
        )
        assert not trap.hit
        # Same follow-up under a paraphrased matching context -> should hit.
        good = cache.lookup(
            "Change the color to red",
            context=["What is the best way to order a python list?"],
        )
        assert good.hit

    def test_without_verification_trap_hits(self, trained_encoder):
        config = MeanCacheConfig(similarity_threshold=0.8, verify_context=False)
        cache = MeanCache(trained_encoder, config)
        parent = "How can I sort a list in python?"
        cache.insert("Change the color to red", "set color='red'", context=[parent])
        trap = cache.lookup(
            "Change the color to red",
            context=["Tips for how to bake chocolate chip cookies"],
        )
        assert trap.hit

    def test_standalone_probe_does_not_hit_contextual_entry(self, trained_encoder):
        config = MeanCacheConfig(similarity_threshold=0.8, verify_context=True)
        cache = MeanCache(trained_encoder, config)
        cache.insert("Change the color to red", "resp", context=["How can I sort a list in python?"])
        assert not cache.lookup("Change the color to red").hit


class TestCompression:
    def _populated_cache(self, encoder, n=40):
        cache = MeanCache(encoder, MeanCacheConfig(similarity_threshold=0.8))
        cache.populate([f"question number {i} about subject {i % 11}" for i in range(n)])
        return cache

    def test_compress_reduces_storage_and_dim(self, tiny_encoder):
        cache = self._populated_cache(tiny_encoder)
        before = cache.embedding_storage_bytes()
        report = compress_cache(cache, n_components=8)
        assert cache.embedding_dim == 8
        assert cache.embedding_storage_bytes() < before
        assert report.embedding_saving_fraction > 0.8
        assert report.compressed_dim == 8 and report.original_dim == tiny_encoder.config.output_dim

    def test_compressed_cache_still_hits_duplicates(self, trained_encoder):
        cache = MeanCache(trained_encoder, MeanCacheConfig(similarity_threshold=0.75))
        cache.populate(
            ["How can I sort a list in python?"]
            + [f"unrelated filler question number {i} about area {i}" for i in range(30)]
        )
        compress_cache(cache, n_components=8)
        decision = cache.lookup("What is the best way to order a python list?")
        assert decision.hit
        assert decision.matched_query == "How can I sort a list in python?"

    def test_double_compression_rejected(self, tiny_encoder):
        cache = self._populated_cache(tiny_encoder)
        compress_cache(cache, n_components=8)
        with pytest.raises(ValueError):
            compress_cache(cache, n_components=8)

    def test_too_few_entries_rejected(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        cache.insert("only one entry", "r")
        with pytest.raises(ValueError):
            compress_cache(cache, n_components=8)

    def test_components_exceeding_dim_rejected(self, tiny_encoder):
        cache = self._populated_cache(tiny_encoder)
        with pytest.raises(ValueError):
            compress_cache(cache, n_components=tiny_encoder.config.output_dim + 1)


class TestBaselines:
    def test_gptcache_fixed_threshold_hit_and_miss(self, trained_encoder):
        gpt = GPTCache(trained_encoder, GPTCacheConfig(similarity_threshold=0.8))
        gpt.insert("How can I sort a list in python?", "use sorted()", user_id="alice")
        hit = gpt.lookup("What is the best way to order a python list?")
        miss = gpt.lookup("How do I plan a trip to japan?")
        assert hit.hit and not miss.hit
        assert hit.network_time_s > 0  # central cache always pays the round trip

    def test_gptcache_is_context_oblivious(self, trained_encoder):
        gpt = GPTCache(trained_encoder, GPTCacheConfig(similarity_threshold=0.8))
        gpt.insert("Change the color to red", "resp")
        trap = gpt.lookup("Change the color to red", context=["totally different conversation"])
        assert trap.hit

    def test_gptcache_central_storage_tracks_users(self, tiny_encoder):
        gpt = GPTCache(tiny_encoder)
        gpt.insert("q1 from alice", "r", user_id="alice")
        gpt.insert("q2 from bob", "r", user_id="bob")
        assert gpt.users() == ["alice", "bob"]
        assert gpt.total_storage_bytes() > 0

    def test_gptcache_validation(self, tiny_encoder):
        with pytest.raises(ValueError):
            GPTCacheConfig(similarity_threshold=-0.1)
        with pytest.raises(ValueError):
            GPTCache(tiny_encoder).lookup("")

    def test_keyword_cache_exact_match_only(self):
        kc = KeywordCache()
        kc.insert("How can I sort a list in Python?", "use sorted()")
        assert kc.lookup("how can i sort a list in python") == "use sorted()"
        # A paraphrase is a miss for the keyword cache (the paper's motivation).
        assert kc.lookup("What is the best way to order a python list?") is None

    def test_keyword_cache_eviction(self):
        kc = KeywordCache(KeywordCacheConfig(max_entries=2))
        kc.insert("query one alpha", "1")
        kc.insert("query two beta", "2")
        kc.insert("query three gamma", "3")
        assert len(kc) == 2

    def test_keyword_cache_sorted_tokens_mode(self):
        kc = KeywordCache(KeywordCacheConfig(sort_tokens=True))
        kc.insert("python list sort", "r")
        assert kc.lookup("sort python list") == "r"


class TestMeanCacheClient:
    def test_miss_then_hit_roundtrip(self, trained_encoder):
        cache = MeanCache(trained_encoder, MeanCacheConfig(similarity_threshold=0.8))
        client = MeanCacheClient(cache, SimulatedLLMService(), client_id="u1")
        first = client.query("How can I sort a list in python?")
        assert not first.from_cache and first.llm_latency_s > 0
        second = client.query("What is the best way to order a python list?")
        assert second.from_cache
        assert second.llm_latency_s == 0.0
        assert second.total_latency_s < first.total_latency_s
        assert client.hit_rate == pytest.approx(0.5)
        assert client.total_cost_usd > 0

    def test_followup_carries_context(self, trained_encoder):
        cache = MeanCache(trained_encoder, MeanCacheConfig(similarity_threshold=0.8))
        client = MeanCacheClient(cache, SimulatedLLMService())
        client.query("How can I sort a list in python?")
        followup = client.query("Change the color to red", is_followup=True)
        assert not followup.from_cache
        # The follow-up must have been stored with a context chain.
        contextual_entries = [e for e in cache.entries if not e.context.is_empty]
        assert len(contextual_entries) == 1

    def test_enroll_on_miss_can_be_disabled(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        client = MeanCacheClient(cache, SimulatedLLMService())
        client.query("some query", enroll_on_miss=False)
        assert len(cache) == 0

    def test_new_conversation_resets_context(self, tiny_encoder):
        cache = MeanCache(tiny_encoder)
        client = MeanCacheClient(cache, SimulatedLLMService())
        client.query("first question about python")
        client.new_conversation()
        assert client.conversation.turns == []

    def test_query_many_batched_accounting(self, trained_encoder):
        cache = MeanCache(trained_encoder, MeanCacheConfig(similarity_threshold=0.8))
        client = MeanCacheClient(cache, SimulatedLLMService(), client_id="batch-user")
        cache.populate(["How can I sort a list in python?"])
        results = client.query_many(
            [
                "What is the best way to order a python list?",
                "How do I plan a trip to japan?",
            ]
        )
        assert [r.from_cache for r in results] == [True, False]
        assert results[0].cost_usd == 0.0 and results[0].llm_latency_s == 0.0
        assert results[1].cost_usd > 0 and results[1].llm_latency_s > 0
        # Per-result accounting feeds the same aggregate properties as query().
        assert client.results == results
        assert client.hit_rate == pytest.approx(0.5)
        assert client.total_cost_usd == pytest.approx(results[1].cost_usd)
        # The miss was enrolled.
        assert len(cache) == 2

    def test_query_many_matches_sequential_decisions(self, trained_encoder):
        probes = [
            "What is the best way to order a python list?",
            "How do I plan a trip to japan?",
            "how can I reverse a string in python",
        ]
        cache_a = MeanCache(trained_encoder.clone(), MeanCacheConfig(similarity_threshold=0.8))
        cache_b = MeanCache(trained_encoder.clone(), MeanCacheConfig(similarity_threshold=0.8))
        for cache in (cache_a, cache_b):
            cache.populate(["How can I sort a list in python?"])
        client_a = MeanCacheClient(cache_a, SimulatedLLMService())
        client_b = MeanCacheClient(cache_b, SimulatedLLMService())
        sequential = [client_a.query(p, enroll_on_miss=False) for p in probes]
        batched = client_b.query_many(probes, enroll_on_miss=False)
        assert [r.from_cache for r in sequential] == [r.from_cache for r in batched]
        assert [r.response for r in sequential] == [r.response for r in batched]

    def test_query_many_context_alignment_validated(self, tiny_encoder):
        client = MeanCacheClient(MeanCache(tiny_encoder), SimulatedLLMService())
        with pytest.raises(ValueError):
            client.query_many(["a query"], contexts=[["ctx"], ["extra"]])
