"""Tests for the federated-learning substrate."""

import numpy as np
import pytest

from conftest import make_tiny_encoder
from repro.datasets.semantic_pairs import QueryPairDataset, generate_pair_dataset
from repro.federated.aggregation import (
    aggregate_thresholds,
    fedavg,
    fedprox_aggregate,
    fedprox_proximal_gradient,
    weighted_metric_mean,
)
from repro.federated.client import ClientConfig, FLClient
from repro.federated.messages import (
    ParameterSpec,
    buffer_to_parameters,
    parameters_nbytes,
    parameters_to_buffer,
)
from repro.federated.sampling import ResourceAwareSampler, RoundRobinSampler, UniformSampler
from repro.federated.server import FLServer, ServerConfig
from repro.federated.threshold import (
    cache_mode_threshold_sweep,
    find_optimal_threshold,
    score_sweep,
    threshold_sweep,
)


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #
class TestMessages:
    def test_roundtrip(self, rng):
        params = [rng.normal(size=(4, 3)), rng.normal(size=5), rng.normal(size=(2, 2, 2))]
        buffer, spec = parameters_to_buffer(params)
        assert buffer.ndim == 1
        restored = buffer_to_parameters(buffer, spec)
        assert all(np.allclose(a, b) for a, b in zip(params, restored))

    def test_spec_sizes(self, rng):
        params = [rng.normal(size=(4, 3)), rng.normal(size=5)]
        spec = ParameterSpec.from_parameters(params)
        assert spec.sizes == [12, 5]
        assert spec.total_size == 17
        assert spec.n_parameters == 2

    def test_buffer_size_mismatch_rejected(self, rng):
        params = [rng.normal(size=(2, 2))]
        buffer, spec = parameters_to_buffer(params)
        with pytest.raises(ValueError):
            buffer_to_parameters(buffer[:-1], spec)

    def test_empty_parameters(self):
        buffer, spec = parameters_to_buffer([])
        assert buffer.size == 0 and spec.total_size == 0

    def test_nbytes(self, rng):
        params = [rng.normal(size=(10, 10))]
        assert parameters_nbytes(params) == 800


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
class TestFedAvg:
    def test_equal_weights_is_plain_mean(self):
        a = [np.ones((2, 2)), np.zeros(3)]
        b = [3 * np.ones((2, 2)), np.ones(3)]
        out = fedavg([a, b], [1, 1])
        assert np.allclose(out[0], 2.0)
        assert np.allclose(out[1], 0.5)

    def test_sample_weighting(self):
        a = [np.zeros(2)]
        b = [np.ones(2)]
        out = fedavg([a, b], [1, 3])
        assert np.allclose(out[0], 0.75)

    def test_single_client_identity(self, rng):
        a = [rng.normal(size=(3, 3))]
        out = fedavg([a], [10])
        assert np.allclose(out[0], a[0])

    def test_preserves_convex_hull(self, rng):
        clients = [[rng.normal(size=4)] for _ in range(5)]
        out = fedavg(clients, [1, 2, 3, 4, 5])[0]
        stacked = np.stack([c[0] for c in clients])
        assert np.all(out <= stacked.max(axis=0) + 1e-12)
        assert np.all(out >= stacked.min(axis=0) - 1e-12)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            fedavg([], [])
        with pytest.raises(ValueError):
            fedavg([[np.ones(2)]], [1, 2])
        with pytest.raises(ValueError):
            fedavg([[np.ones(2)], [np.ones(3)]], [1, 1])
        with pytest.raises(ValueError):
            fedavg([[np.ones(2)], [np.ones(2)]], [0, 0])

    def test_fedprox_server_equals_fedavg(self, rng):
        clients = [[rng.normal(size=3)] for _ in range(3)]
        weights = [2, 1, 4]
        assert np.allclose(fedavg(clients, weights)[0], fedprox_aggregate(clients, weights)[0])

    def test_fedprox_proximal_gradient(self):
        local = [np.array([2.0, 0.0])]
        global_ = [np.array([0.0, 0.0])]
        grads = fedprox_proximal_gradient(local, global_, mu=0.5)
        assert np.allclose(grads[0], [1.0, 0.0])
        with pytest.raises(ValueError):
            fedprox_proximal_gradient(local, global_, mu=-1.0)


class TestThresholdAggregation:
    def test_plain_mean(self):
        assert aggregate_thresholds([0.7, 0.9]) == pytest.approx(0.8)

    def test_weighted_mean(self):
        assert aggregate_thresholds([0.6, 1.0], num_samples=[3, 1], weighted=True) == pytest.approx(0.7)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            aggregate_thresholds([1.2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_thresholds([])

    def test_negative_sample_count_rejected(self):
        """A single negative weight must fail loudly, not skew the mean.

        The sum check alone passes [30, -10, 1] (sum 21 > 0) while the
        weighted mean it produces can leave the clients' threshold range.
        """
        with pytest.raises(ValueError, match="negative"):
            aggregate_thresholds([0.6, 0.8, 0.7], num_samples=[30, -10, 1], weighted=True)

    def test_weighted_equals_unweighted_for_equal_counts(self):
        """Parity: equal per-client counts reduce to the plain mean."""
        thresholds = [0.55, 0.7, 0.85, 0.6]
        assert aggregate_thresholds(
            thresholds, num_samples=[7, 7, 7, 7], weighted=True
        ) == pytest.approx(aggregate_thresholds(thresholds))

    def test_weighted_metric_mean(self):
        assert weighted_metric_mean([1.0, 0.0], [1, 3]) == pytest.approx(0.25)

    def test_weighted_metric_mean_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="negative"):
            weighted_metric_mean([0.5, 0.5], [4, -1])


# --------------------------------------------------------------------------- #
# Sampling
# --------------------------------------------------------------------------- #
class TestSamplers:
    CLIENTS = [f"c{i}" for i in range(10)]

    def test_uniform_no_duplicates_and_deterministic_seed(self):
        a = UniformSampler(seed=1).sample(self.CLIENTS, 4, 0)
        b = UniformSampler(seed=1).sample(self.CLIENTS, 4, 0)
        assert len(set(a)) == 4
        assert a == b

    def test_uniform_caps_at_population(self):
        assert len(UniformSampler(seed=0).sample(self.CLIENTS, 50, 0)) == 10

    def test_round_robin_covers_all_clients(self):
        sampler = RoundRobinSampler()
        seen = set()
        for r in range(5):
            seen.update(sampler.sample(self.CLIENTS, 2, r))
        assert seen == set(self.CLIENTS)

    def test_resource_aware_prefers_high_scores(self):
        scores = {c: 0.0 for c in self.CLIENTS}
        scores["c3"] = 100.0
        scores["c7"] = 100.0
        picked = ResourceAwareSampler(scores, seed=0).sample(self.CLIENTS, 2, 0)
        assert set(picked) == {"c3", "c7"}

    def test_resource_aware_fills_from_zero_scores_when_short(self):
        """Regression: fewer positive-score clients than the round needs.

        ``rng.choice(..., replace=False, p=probs)`` raises when fewer than
        ``n`` entries have nonzero probability; the sampler must instead take
        every positive-score client and fill the rest uniformly from the
        zero-score ones.
        """
        scores = {c: 0.0 for c in self.CLIENTS}
        scores["c2"] = 5.0
        picked = ResourceAwareSampler(scores, seed=0).sample(self.CLIENTS, 4, 0)
        assert len(picked) == 4
        assert len(set(picked)) == 4
        assert "c2" in picked  # every positive-score client is selected

    def test_resource_aware_zero_fill_is_deterministic(self):
        scores = {"c0": 1.0}
        a = ResourceAwareSampler(scores, seed=3).sample(self.CLIENTS, 5, 0)
        b = ResourceAwareSampler(scores, seed=3).sample(self.CLIENTS, 5, 0)
        assert a == b

    def test_resource_aware_rejects_negative_scores(self):
        with pytest.raises(ValueError):
            ResourceAwareSampler({"a": -1.0})

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            UniformSampler().sample([], 1, 0)

    @pytest.mark.parametrize(
        "sampler_factory",
        [
            lambda: UniformSampler(seed=0),
            lambda: RoundRobinSampler(),
            lambda: ResourceAwareSampler({"c0": 2.0, "c1": 1.0}, seed=0),
        ],
        ids=["uniform", "round_robin", "resource_aware"],
    )
    def test_all_samplers_cap_at_population_and_reject_zero(self, sampler_factory):
        """Shared edge cases: n > len(clients) caps, n == 0 raises."""
        sampler = sampler_factory()
        picked = sampler.sample(self.CLIENTS, len(self.CLIENTS) + 25, 0)
        assert sorted(picked) == sorted(self.CLIENTS)  # capped, no duplicates
        with pytest.raises(ValueError):
            sampler_factory().sample(self.CLIENTS, 0, 0)

    def test_round_robin_wraparound_has_no_duplicates(self):
        """A round whose window wraps past the end must not repeat a client."""
        sampler = RoundRobinSampler()
        for r in range(12):
            picked = sampler.sample(self.CLIENTS, 3, r)
            assert len(picked) == len(set(picked)) == 3


# --------------------------------------------------------------------------- #
# Threshold search
# --------------------------------------------------------------------------- #
class TestThresholdSearch:
    def _pairs(self):
        return [
            ("How can I sort a list in python?", "What is the best way to order a python list?", 1),
            ("Tips for how to bake chocolate chip cookies", "How do I make cookies with chocolate chips?", 1),
            ("How do I extend my phone battery life?", "Tips for improving my smartphone battery", 1),
            ("How can I sort a list in python?", "How do I plan a trip to japan?", 0),
            ("Tips for how to bake chocolate chip cookies", "How do I reset my wifi router?", 0),
            ("How do I extend my phone battery life?", "How do I write a cover letter?", 0),
        ] * 4

    def test_pairwise_sweep_curves_monotone_recall(self, tiny_encoder):
        sweep = threshold_sweep(tiny_encoder, self._pairs(), thresholds=np.linspace(0, 1, 21))
        # Recall is non-increasing in the threshold.
        assert np.all(np.diff(sweep.recalls) <= 1e-12)
        assert 0.0 <= sweep.optimal_threshold <= 1.0

    def test_recall_one_at_zero_threshold(self, tiny_encoder):
        sweep = threshold_sweep(tiny_encoder, self._pairs(), thresholds=np.array([0.0]))
        assert sweep.recalls[0] == pytest.approx(1.0)

    def test_cache_mode_sweep_runs_and_selects_valid_tau(self, tiny_encoder):
        sweep = cache_mode_threshold_sweep(tiny_encoder, self._pairs(), thresholds=np.linspace(0, 1, 21))
        assert 0.0 <= sweep.optimal_threshold <= 1.0
        assert sweep.metadata["mode"] == 1.0

    def test_cache_mode_extra_history_changes_nothing_for_empty(self, tiny_encoder):
        pairs = self._pairs()
        a = cache_mode_threshold_sweep(tiny_encoder, pairs)
        b = cache_mode_threshold_sweep(tiny_encoder, pairs, extra_cache_texts=[])
        assert a.optimal_threshold == b.optimal_threshold

    def test_find_optimal_threshold_defaults(self, tiny_encoder):
        assert find_optimal_threshold(tiny_encoder, [], default=0.66) == 0.66
        only_pos = [("a b c", "a b c d", 1)]
        assert find_optimal_threshold(tiny_encoder, only_pos, default=0.66) == 0.66
        with pytest.raises(ValueError):
            find_optimal_threshold(tiny_encoder, self._pairs(), mode="bogus")

    def test_trained_encoder_has_higher_optimum_than_random_guess(self, tiny_encoder):
        pairs = self._pairs()
        tiny_encoder.train_on_pairs(pairs, epochs=5, batch_size=8)
        sweep = threshold_sweep(tiny_encoder, pairs)
        assert sweep.f_scores[sweep.optimal_index] > 0.8

    def test_as_series_key_set_pinned(self, tiny_encoder):
        """``as_series`` returns the threshold grid plus all five metric
        curves — six series total (the docstring's contract)."""
        sweep = threshold_sweep(tiny_encoder, self._pairs(), thresholds=np.linspace(0, 1, 11))
        series = sweep.as_series()
        assert set(series) == {"threshold", "f1", "f_score", "precision", "recall", "accuracy"}
        for curve in series.values():
            assert curve.shape == (11,)
        assert np.array_equal(series["threshold"], sweep.thresholds)

    def test_score_sweep_matches_pairwise_sweep(self, tiny_encoder):
        """The extracted score-space core reproduces the encoder sweep."""
        from repro.federated.threshold import pair_similarities

        pairs = self._pairs()
        grid = np.linspace(0, 1, 21)
        via_encoder = threshold_sweep(tiny_encoder, pairs, thresholds=grid)
        sims, labels = pair_similarities(tiny_encoder, pairs)
        via_scores = score_sweep(sims, labels, thresholds=grid)
        assert via_scores.optimal_threshold == via_encoder.optimal_threshold
        assert np.allclose(via_scores.f_scores, via_encoder.f_scores)
        assert np.allclose(via_scores.precisions, via_encoder.precisions)

    def test_score_sweep_validation(self):
        with pytest.raises(ValueError):
            score_sweep(np.array([0.5]), np.array([True]), thresholds=np.array([]))
        with pytest.raises(ValueError):
            score_sweep(np.array([0.5]), np.array([True]), thresholds=np.array([1.5]))
        with pytest.raises(ValueError):
            score_sweep(np.array([0.5, 0.6]), np.array([True]))

    def test_score_sweep_separable_scores_find_the_gap(self):
        scores = np.array([0.9, 0.95, 0.85, 0.2, 0.3, 0.25])
        labels = np.array([True, True, True, False, False, False])
        sweep = score_sweep(scores, labels, thresholds=np.linspace(0, 1, 101), beta=1.0)
        assert 0.3 < sweep.optimal_threshold <= 0.85
        assert sweep.f_scores[sweep.optimal_index] == pytest.approx(1.0)
        assert sweep.metadata["positive_fraction"] == pytest.approx(0.5)


# --------------------------------------------------------------------------- #
# Client / server round trip
# --------------------------------------------------------------------------- #
def _make_clients(n_clients=3, pairs_per_client=24):
    dataset = generate_pair_dataset(n_pairs=n_clients * pairs_per_client, seed=17)
    shards = [
        QueryPairDataset(dataset.pairs[i::n_clients], seed=i) for i in range(n_clients)
    ]
    clients = []
    for i, shard in enumerate(shards):
        train, val, _ = shard.split(0.6, 0.3, seed=i)
        clients.append(
            FLClient(
                client_id=f"client-{i}",
                train_data=train,
                val_data=val,
                encoder=make_tiny_encoder(seed=5),
                config=ClientConfig(local_epochs=1, batch_size=16, threshold_grid=21),
                seed=i,
            )
        )
    return clients


class TestFLClientServer:
    def test_client_fit_returns_update(self):
        client = _make_clients(1)[0]
        global_params = make_tiny_encoder(seed=5).get_parameters()
        update = client.fit(global_params, 0.7, round_number=0)
        assert update.num_samples == max(len(client.train_data), 1)
        assert 0.0 <= update.local_threshold <= 1.0
        assert len(update.parameters) == 4
        # Local training must actually change the weights.
        assert any(not np.allclose(p, g) for p, g in zip(update.parameters, global_params))

    def test_client_zero_epochs_keeps_global_weights(self):
        client = _make_clients(1)[0]
        client.config = ClientConfig(local_epochs=0, threshold_grid=21)
        global_params = make_tiny_encoder(seed=5).get_parameters()
        update = client.fit(global_params, 0.7)
        assert all(np.allclose(p, g) for p, g in zip(update.parameters, global_params))

    def test_client_evaluate_returns_metrics(self):
        client = _make_clients(1)[0]
        metrics = client.evaluate(make_tiny_encoder(seed=5).get_parameters(), threshold=0.7)
        assert set(metrics) >= {"f_score", "precision", "recall", "accuracy"}

    def test_server_round_updates_global_state(self):
        clients = _make_clients(3)
        test_pairs = generate_pair_dataset(n_pairs=40, seed=5).as_tuples()
        server = FLServer(
            global_encoder=make_tiny_encoder(seed=5),
            clients=clients,
            config=ServerConfig(n_rounds=2, clients_per_round=2, initial_threshold=0.7),
            test_pairs=test_pairs,
            seed=0,
        )
        initial_params = [p.copy() for p in server.global_parameters]
        result = server.run_round(0)
        assert len(result.participating_clients) == 2
        assert 0.0 <= server.global_threshold <= 1.0
        assert any(
            not np.allclose(p, q) for p, q in zip(initial_params, server.global_parameters)
        )
        assert "f_score" in result.evaluation

    def test_server_fit_builds_history_and_curves(self):
        clients = _make_clients(3)
        server = FLServer(
            global_encoder=make_tiny_encoder(seed=5),
            clients=clients,
            config=ServerConfig(n_rounds=2, clients_per_round=2),
            test_pairs=generate_pair_dataset(n_pairs=30, seed=6).as_tuples(),
            seed=1,
        )
        history = server.fit()
        assert len(history) == 2
        curves = server.training_curves()
        assert len(curves["round"]) == 2
        assert "precision" in curves

    def test_server_requires_unique_client_ids(self):
        clients = _make_clients(2)
        clients[1].client_id = clients[0].client_id
        with pytest.raises(ValueError):
            FLServer(make_tiny_encoder(), clients)

    def test_server_rejects_empty_updates(self):
        server = FLServer(make_tiny_encoder(seed=5), _make_clients(1))
        with pytest.raises(ValueError):
            server.apply_updates([])

    def test_fedavg_of_identical_updates_is_identity(self):
        clients = _make_clients(2)
        server = FLServer(make_tiny_encoder(seed=5), clients, seed=0)
        params = server.global_parameters
        from repro.federated.client import ClientUpdate

        updates = [
            ClientUpdate("a", [p.copy() for p in params], 10, 0.8, 0.0),
            ClientUpdate("b", [p.copy() for p in params], 30, 0.6, 0.0),
        ]
        server.apply_updates(updates)
        assert all(np.allclose(p, q) for p, q in zip(params, server.global_parameters))
        assert server.global_threshold == pytest.approx(0.7)
