"""Tests for repro.core.clock and the MeanCache/BatchExecutor clock wiring.

The determinism regression the issue pins down: entry ``created_at`` /
``last_accessed`` stamps — the inputs to TTL/recency introspection — must
come from the *trace's* virtual time, not the machine's wall clock, so a
replay produces identical cache state regardless of wall speed and of the
order events inside one batch window happen to be processed.
"""

from __future__ import annotations

import time

import pytest

from conftest import make_tiny_encoder
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.core.clock import VirtualClock, WALL_CLOCK
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving.scheduling import BatchExecutor
from repro.serving.workload import WorkloadEvent


def make_cache(clock=WALL_CLOCK) -> MeanCache:
    return MeanCache(
        make_tiny_encoder(),
        MeanCacheConfig(max_entries=64, similarity_threshold=0.8),
        clock=clock,
    )


class TestVirtualClock:
    def test_starts_at_origin_and_advances(self):
        clock = VirtualClock()
        assert clock() == 0.0
        assert clock.advance_to(5.0) == 5.0
        assert clock.now == 5.0

    def test_advance_to_is_monotone(self):
        clock = VirtualClock(start=10.0)
        clock.advance_to(3.0)  # regression ignored
        assert clock() == 10.0
        clock.advance_to(12.5)
        assert clock() == 12.5

    def test_relative_advance_ignores_negative(self):
        clock = VirtualClock()
        clock.advance(2.0)
        clock.advance(-1.0)
        assert clock() == 2.0


class TestMeanCacheClockInjection:
    def test_default_clock_is_wall_time(self):
        cache = make_cache()
        before = time.time()
        cache.insert("hello there", "resp")
        after = time.time()
        entry = cache.entries[0]
        assert before <= entry.created_at <= after

    def test_injected_clock_stamps_entries(self):
        clock = VirtualClock(start=100.0)
        cache = make_cache(clock=clock)
        cache.insert("hello there", "resp")
        entry = cache.entries[0]
        assert entry.created_at == 100.0
        assert entry.last_accessed == 100.0

    def test_hit_restamps_last_accessed_from_clock(self):
        clock = VirtualClock(start=100.0)
        cache = make_cache(clock=clock)
        cache.insert("hello there", "resp")
        clock.advance_to(250.0)
        decision = cache.lookup("hello there")
        assert decision.hit
        entry = cache.entries[0]
        assert entry.created_at == 100.0
        assert entry.last_accessed == 250.0

    def test_set_clock_swaps_source(self):
        cache = make_cache()
        clock = VirtualClock(start=7.0)
        cache.set_clock(clock)
        cache.insert("hello there", "resp")
        assert cache.entries[0].created_at == 7.0


def _run_windows(windows):
    """Replay windows of (time_s, user, query) through a fresh executor."""
    caches = {}
    executor = BatchExecutor(
        cache_factory=lambda uid: caches.setdefault(uid, make_cache()),
        service=SimulatedLLMService(LLMServiceConfig(seed=0)),
        stamp_event_time=True,
    )
    for window in windows:
        events = [
            WorkloadEvent(time_s=t, user_id=uid, query=q) for t, uid, q in window
        ]
        executor.execute(events)
    return caches


def _stamps(caches):
    """{(user, query): (created_at, last_accessed)} across the fleet."""
    return {
        (uid, entry.query): (entry.created_at, entry.last_accessed)
        for uid, cache in caches.items()
        for entry in cache.entries
    }


WINDOWS = [
    [
        (10.0, "alice", "what is the capital of france"),
        (10.5, "bob", "how do i reverse a list in python"),
        (11.0, "alice", "what is the tallest mountain"),
    ],
    [
        (40.0, "bob", "how do i reverse a list in python"),
        (41.0, "alice", "what is the capital of france"),
    ],
]


class TestExecutorVirtualClock:
    def test_executor_injects_virtual_clock_into_caches(self):
        caches = _run_windows(WINDOWS)
        for cache in caches.values():
            assert isinstance(cache.clock, VirtualClock)

    def test_stamps_come_from_event_time_not_wall_time(self):
        caches = _run_windows(WINDOWS)
        for created, accessed in _stamps(caches).values():
            # Trace times are tens of seconds; wall time is ~1.7e9.
            assert created <= 41.0
            assert accessed <= 41.0

    def test_reorder_within_window_does_not_change_stamps(self):
        """Intra-window processing order is an implementation detail."""
        reordered = [list(reversed(window)) for window in WINDOWS]
        assert _stamps(_run_windows(WINDOWS)) == _stamps(_run_windows(reordered))

    def test_wall_speed_does_not_change_stamps(self):
        """A slow replay (wall-clock pauses between windows) stamps identically."""
        caches_fast = _run_windows(WINDOWS)
        caches_slow = {}
        executor = BatchExecutor(
            cache_factory=lambda uid: caches_slow.setdefault(uid, make_cache()),
            service=SimulatedLLMService(LLMServiceConfig(seed=0)),
            stamp_event_time=True,
        )
        for window in WINDOWS:
            time.sleep(0.05)  # wall time passes; virtual time does not care
            executor.execute(
                [WorkloadEvent(time_s=t, user_id=uid, query=q) for t, uid, q in window]
            )
        assert _stamps(caches_fast) == _stamps(caches_slow)

    def test_repeat_lookup_restamps_recency_with_window_time(self):
        caches = _run_windows(WINDOWS)
        stamps = _stamps(caches)
        created, accessed = stamps[("bob", "how do i reverse a list in python")]
        # Enrolled in window 1 (stamped with its max arrival 11.0), hit
        # again in window 2 (stamped with its max arrival 41.0).
        assert created == 11.0
        assert accessed == 41.0

    def test_live_server_mode_keeps_wall_clock(self):
        caches = {}
        executor = BatchExecutor(
            cache_factory=lambda uid: caches.setdefault(uid, make_cache()),
            service=SimulatedLLMService(LLMServiceConfig(seed=0), thread_safe=True),
            stamp_event_time=False,
        )
        assert executor.virtual_clock is None
        executor.execute(
            [WorkloadEvent(time_s=0.0, user_id="alice", query="hello there")]
        )
        (entry,) = caches["alice"].entries
        assert entry.created_at == pytest.approx(time.time(), abs=60.0)
