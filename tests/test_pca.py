"""Unit tests for the PCA compression module."""

import numpy as np
import pytest

from repro.embeddings.pca import PCA


@pytest.fixture()
def data(rng):
    # Low-rank data plus noise: 100 samples in 20 dims, true rank ~5.
    basis = rng.normal(size=(5, 20))
    coeffs = rng.normal(size=(100, 5))
    return coeffs @ basis + 0.01 * rng.normal(size=(100, 20))


class TestFit:
    def test_components_shape(self, data):
        pca = PCA(n_components=5).fit(data)
        assert pca.components_.shape == (5, 20)
        assert pca.mean_.shape == (20,)

    def test_components_are_orthonormal(self, data):
        pca = PCA(n_components=5).fit(data)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(5), atol=1e-8)

    def test_explained_variance_is_sorted(self, data):
        pca = PCA(n_components=6).fit(data)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-12)

    def test_low_rank_data_explained_by_few_components(self, data):
        pca = PCA(n_components=5).fit(data)
        assert pca.explained_variance_ratio_.sum() > 0.98

    def test_too_many_components_rejected(self, data):
        with pytest.raises(ValueError):
            PCA(n_components=21).fit(data)

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            PCA(n_components=1).fit(np.ones((1, 4)))

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)


class TestTransform:
    def test_transform_shape(self, data):
        pca = PCA(n_components=4).fit(data)
        z = pca.transform(data[:7])
        assert z.shape == (7, 4)

    def test_transform_before_fit_rejected(self, data):
        with pytest.raises(RuntimeError):
            PCA(n_components=3).transform(data)

    def test_wrong_width_rejected(self, data):
        pca = PCA(n_components=3).fit(data)
        with pytest.raises(ValueError):
            pca.transform(np.ones((2, 19)))

    def test_fit_transform_equals_fit_then_transform(self, data):
        a = PCA(n_components=4).fit_transform(data)
        pca = PCA(n_components=4).fit(data)
        assert np.allclose(a, pca.transform(data))

    def test_projection_preserves_neighbourhoods(self, data):
        # The nearest neighbour of a point should usually survive a projection
        # that captures almost all the variance.
        pca = PCA(n_components=5).fit(data)
        z = pca.transform(data)
        orig_d = np.linalg.norm(data[0] - data[1:], axis=1)
        proj_d = np.linalg.norm(z[0] - z[1:], axis=1)
        assert np.argmin(orig_d) == np.argmin(proj_d)


class TestInverseTransform:
    def test_reconstruction_error_small_for_low_rank(self, data):
        pca = PCA(n_components=5).fit(data)
        assert pca.reconstruction_error(data) < 1e-3

    def test_reconstruction_error_larger_with_fewer_components(self, data):
        full = PCA(n_components=5).fit(data).reconstruction_error(data)
        truncated = PCA(n_components=2).fit(data).reconstruction_error(data)
        assert truncated > full

    def test_inverse_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            PCA(n_components=2).inverse_transform(np.ones((2, 2)))

    def test_inverse_wrong_width_rejected(self, data):
        pca = PCA(n_components=3).fit(data)
        with pytest.raises(ValueError):
            pca.inverse_transform(np.ones((2, 4)))


class TestWhitenAndState:
    def test_whitened_components_have_unit_variance(self, data):
        pca = PCA(n_components=3, whiten=True).fit(data)
        z = pca.transform(data)
        assert np.allclose(z.var(axis=0, ddof=1), 1.0, atol=1e-6)

    def test_state_dict_roundtrip(self, data):
        pca = PCA(n_components=4).fit(data)
        restored = PCA.from_state_dict(pca.state_dict())
        assert np.allclose(restored.transform(data), pca.transform(data))

    def test_unfitted_state_dict_rejected(self):
        with pytest.raises(RuntimeError):
            PCA(n_components=2).state_dict()

    def test_clone_unfitted_and_fitted(self, data):
        assert not PCA(n_components=2).clone().is_fitted
        fitted = PCA(n_components=2).fit(data)
        clone = fitted.clone()
        assert np.allclose(clone.transform(data), fitted.transform(data))
