"""Shared fixtures for the test suite.

Most unit tests use a deliberately tiny encoder (256 hashed features, 32
hidden units, 64-d embeddings, no pretraining) so the whole suite stays fast;
a handful of integration tests use the real zoo encoders, which are pretrained
once per session and cached by the zoo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.corpus import Corpus
from repro.datasets.semantic_pairs import generate_cache_workload, generate_pair_dataset
from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer
from repro.embeddings.model import EncoderConfig, SiameseEncoder
from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig


TINY_CONFIG = EncoderConfig(
    n_features=256,
    hidden_dim=32,
    output_dim=64,
    seed=5,
    anisotropy=0.3,
)


def make_tiny_encoder(seed: int = 5, anisotropy: float = 0.3) -> SiameseEncoder:
    """Construct a small untrained encoder (helper usable outside fixtures)."""
    config = EncoderConfig(
        n_features=256, hidden_dim=32, output_dim=64, seed=seed, anisotropy=anisotropy
    )
    featurizer = HashedFeaturizer(
        FeaturizerConfig(n_features=256, seed=seed), Tokenizer(TokenizerConfig())
    )
    return SiameseEncoder(config, featurizer)


@pytest.fixture()
def tiny_encoder() -> SiameseEncoder:
    """A fresh tiny encoder per test."""
    return make_tiny_encoder()


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    """The full synthetic corpus."""
    return Corpus(seed=0)


@pytest.fixture(scope="session")
def small_pair_dataset():
    """A small labelled pair dataset reused across tests."""
    return generate_pair_dataset(n_pairs=120, duplicate_fraction=0.5, seed=11)


@pytest.fixture(scope="session")
def small_workload():
    """A small cache workload reused across tests."""
    return generate_cache_workload(n_cached=60, n_probes=60, duplicate_fraction=0.3, seed=13)


@pytest.fixture(scope="session")
def albert_encoder():
    """The pretrained ALBERT-class zoo encoder (built once per session)."""
    from repro.embeddings.zoo import load_encoder

    return load_encoder("albert-sim")


@pytest.fixture()
def rng() -> np.random.Generator:
    """A seeded NumPy RNG."""
    return np.random.default_rng(123)
