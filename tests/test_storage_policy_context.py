"""Tests for the storage backends, eviction policies and context chains."""

import numpy as np
import pytest

from conftest import make_tiny_encoder
from repro.core.context import ContextChain, context_matches
from repro.core.policy import FIFOPolicy, LFUPolicy, LRUPolicy, make_policy
from repro.core.storage import DiskStore, InMemoryStore, object_nbytes


class TestObjectNbytes:
    def test_array_counts_buffer(self):
        assert object_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_string_counts_utf8(self):
        assert object_nbytes("abcd") == 4

    def test_containers_sum_members(self):
        assert object_nbytes(["ab", "cd"]) == 4
        assert object_nbytes({"k": "vv"}) == 3


class TestInMemoryStore:
    def test_set_get_delete(self):
        store = InMemoryStore()
        store.set("a", {"x": 1})
        assert "a" in store and store.get("a") == {"x": 1}
        store.delete("a")
        assert "a" not in store
        with pytest.raises(KeyError):
            store.get("a")

    def test_nbytes_tracks_content(self):
        store = InMemoryStore()
        store.set("k", np.zeros(100))
        assert store.nbytes() >= 800
        store.delete("k")
        assert store.nbytes() == 0

    def test_clear(self):
        store = InMemoryStore()
        for i in range(5):
            store.set(f"k{i}", i)
        store.clear()
        assert len(store) == 0


class TestDiskStore:
    def test_persistence_across_instances(self, tmp_path):
        store = DiskStore(tmp_path / "cache")
        store.set("query:1", {"text": "hello", "emb": np.arange(4.0)})
        reopened = DiskStore(tmp_path / "cache")
        value = reopened.get("query:1")
        assert value["text"] == "hello"
        assert np.allclose(value["emb"], np.arange(4.0))

    def test_overwrite_key(self, tmp_path):
        store = DiskStore(tmp_path / "c")
        store.set("k", 1)
        store.set("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1

    def test_delete_removes_file(self, tmp_path):
        store = DiskStore(tmp_path / "c")
        store.set("k", "v")
        store.delete("k")
        assert "k" not in store
        assert DiskStore(tmp_path / "c").keys() == []

    def test_nbytes_positive(self, tmp_path):
        store = DiskStore(tmp_path / "c")
        store.set("k", np.zeros(64))
        assert store.nbytes() > 0

    def test_missing_key(self, tmp_path):
        with pytest.raises(KeyError):
            DiskStore(tmp_path / "c").get("nope")


class TestPolicies:
    def test_lru_evicts_least_recently_used(self):
        policy = LRUPolicy()
        for i in range(3):
            policy.record_insert(i)
        policy.record_access(0)  # 0 becomes most recent; 1 is oldest now
        assert policy.select_victim() == 1

    def test_lfu_evicts_least_frequent(self):
        policy = LFUPolicy()
        for i in range(3):
            policy.record_insert(i)
        policy.record_access(0)
        policy.record_access(0)
        policy.record_access(2)
        assert policy.select_victim() == 1

    def test_lfu_ties_break_by_recency(self):
        policy = LFUPolicy()
        policy.record_insert(1)
        policy.record_insert(2)
        policy.record_access(1)
        policy.record_access(2)
        # equal counts; 1 was accessed earlier -> evict 1
        assert policy.select_victim() == 1

    def test_fifo_ignores_accesses(self):
        policy = FIFOPolicy()
        policy.record_insert(1)
        policy.record_insert(2)
        policy.record_access(1)
        assert policy.select_victim() == 1

    def test_remove_forgets_entry(self):
        policy = LRUPolicy()
        policy.record_insert(1)
        policy.record_insert(2)
        policy.record_remove(1)
        assert policy.select_victim() == 2
        assert len(policy) == 1

    def test_empty_policy_raises(self):
        for policy in (LRUPolicy(), LFUPolicy(), FIFOPolicy()):
            with pytest.raises(LookupError):
                policy.select_victim()

    def test_factory(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("LFU"), LFUPolicy)
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        with pytest.raises(ValueError):
            make_policy("random")


class TestContextChain:
    def test_empty_chain(self):
        chain = ContextChain.empty()
        assert chain.is_empty and chain.depth == 0

    def test_from_texts_builds_embedding(self):
        enc = make_tiny_encoder()
        chain = ContextChain.from_texts(["draw a line plot in python"], encoder=enc)
        assert chain.embedding is not None
        assert np.isclose(np.linalg.norm(chain.embedding), 1.0)

    def test_standalone_matches_standalone(self):
        assert context_matches(ContextChain.empty(), ContextChain.empty())

    def test_standalone_never_matches_contextual(self):
        enc = make_tiny_encoder()
        contextual = ContextChain.from_texts(["draw a plot"], encoder=enc)
        assert not context_matches(ContextChain.empty(), contextual)
        assert not context_matches(contextual, ContextChain.empty())

    def test_similar_contexts_match(self):
        enc = make_tiny_encoder()
        a = ContextChain.from_texts(["How can I plot a line plot in matplotlib?"], encoder=enc)
        b = ContextChain.from_texts(["Please show me how to draw a line plot in matplotlib"], encoder=enc)
        c = ContextChain.from_texts(["Tips for how to grill salmon fillets"], encoder=enc)
        assert a.similarity_to(b) > a.similarity_to(c)

    def test_missing_embedding_never_matches(self):
        a = ContextChain(texts=("x",), embedding=None)
        b = ContextChain(texts=("y",), embedding=None)
        assert not context_matches(a, b)

    def test_empty_similarity_conventions(self):
        assert ContextChain.empty().similarity_to(ContextChain.empty()) == 1.0
        a = ContextChain(texts=("x",), embedding=np.ones(4))
        assert ContextChain.empty().similarity_to(a) == 0.0
