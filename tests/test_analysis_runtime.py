"""Tests for the runtime lock-discipline checker (repro.analysis.runtime).

Covers the tracker primitives (TrackedLock, the acquisition-order graph,
index ownership guards) and the acceptance-criteria scenario: a
deliberately-injected lock-discipline violation is detected against a live
CacheServer running with REPRO_DEBUG_CONCURRENCY=1, while the normal
request path stays green under the same flag.
"""

from __future__ import annotations

import threading

import pytest

from conftest import make_tiny_encoder
from repro.analysis.runtime import (
    LockCycleError,
    LockDisciplineError,
    LockOwnershipError,
    TrackedLock,
    debug_enabled,
    guard_cache,
    guard_index,
    maybe_tracked_lock,
    maybe_tracked_rlock,
    reset_registry,
)
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.index.flat import FlatIndex


@pytest.fixture(autouse=True)
def _clean_registry():
    """Isolate each test from edges recorded by earlier acquisitions."""
    reset_registry()
    yield
    reset_registry()


def make_cache(max_entries: int = 32) -> MeanCache:
    return MeanCache(
        make_tiny_encoder(),
        MeanCacheConfig(max_entries=max_entries, similarity_threshold=0.8),
    )


# --------------------------------------------------------------------------- #
# TrackedLock primitives
# --------------------------------------------------------------------------- #
class TestTrackedLock:
    def test_context_manager_tracks_ownership(self):
        lock = TrackedLock("a")
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_non_reentrant_reacquire_raises_instead_of_deadlocking(self):
        lock = TrackedLock("a")
        with lock:
            with pytest.raises(LockDisciplineError):
                lock.acquire()

    def test_reentrant_lock_nests(self):
        lock = TrackedLock("a", reentrant=True)
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_release_by_non_owner_raises(self):
        lock = TrackedLock("a")
        lock.acquire()
        errors = []

        def interloper():
            try:
                lock.release()
            except LockDisciplineError as exc:
                errors.append(exc)

        thread = threading.Thread(target=interloper)
        thread.start()
        thread.join()
        lock.release()
        assert len(errors) == 1

    def test_ownership_is_per_thread(self):
        lock = TrackedLock("a")
        seen = []
        with lock:
            thread = threading.Thread(
                target=lambda: seen.append(lock.held_by_current_thread())
            )
            thread.start()
            thread.join()
        assert seen == [False]


# --------------------------------------------------------------------------- #
# Lock-order cycle detection
# --------------------------------------------------------------------------- #
class TestLockOrder:
    def test_consistent_order_is_fine(self):
        a, b = TrackedLock("a"), TrackedLock("b")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_inverted_order_raises_cycle(self):
        a, b = TrackedLock("a"), TrackedLock("b")
        with a:
            with b:
                pass
        with pytest.raises(LockCycleError):
            with b:
                with a:
                    pass

    def test_three_lock_cycle_detected(self):
        a, b, c = TrackedLock("a"), TrackedLock("b"), TrackedLock("c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(LockCycleError):
            with c:
                with a:
                    pass

    def test_cycle_detected_across_threads(self):
        # Thread 1 establishes a->b; the main thread's b->a attempt is the
        # classic two-thread deadlock shape, caught without any hang.
        a, b = TrackedLock("a"), TrackedLock("b")

        def establish():
            with a:
                with b:
                    pass

        thread = threading.Thread(target=establish)
        thread.start()
        thread.join()
        with pytest.raises(LockCycleError):
            with b:
                with a:
                    pass


# --------------------------------------------------------------------------- #
# Ownership guards
# --------------------------------------------------------------------------- #
class TestOwnershipGuards:
    def test_guarded_index_requires_lock(self):
        lock = TrackedLock("shard")
        index = guard_index(FlatIndex(), lock, "test.index")
        with pytest.raises(LockOwnershipError):
            index.add([1.0, 0.0], id=0)
        with lock:
            index.add([1.0, 0.0], id=0)
            assert index.search([[1.0, 0.0]], top_k=1)

    def test_guard_is_per_instance(self):
        lock = TrackedLock("shard")
        guarded = guard_index(FlatIndex(), lock, "guarded")
        free = FlatIndex()
        free.add([1.0, 0.0], id=0)  # unguarded instance stays usable
        with pytest.raises(LockOwnershipError):
            guarded.add([1.0, 0.0], id=0)

    def test_guard_cache_covers_mean_cache_index(self):
        lock = TrackedLock("shard")
        cache = guard_cache(make_cache(), lock, "user")
        with lock:
            cache.insert("hello there", "resp")
            assert len(cache) == 1
        with pytest.raises(LockOwnershipError):
            cache.insert("smuggled entry", "resp")

    def test_plain_lock_means_no_instrumentation(self):
        cache = guard_cache(make_cache(), threading.Lock(), "user")
        cache.insert("hello there", "resp")  # no guard, no raise
        assert len(cache) == 1


# --------------------------------------------------------------------------- #
# Env-flag gating
# --------------------------------------------------------------------------- #
class TestEnvGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG_CONCURRENCY", raising=False)
        assert not debug_enabled()
        assert not isinstance(maybe_tracked_lock("x"), TrackedLock)
        assert not isinstance(maybe_tracked_rlock("x"), TrackedLock)

    def test_enabled_by_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CONCURRENCY", "1")
        assert debug_enabled()
        assert isinstance(maybe_tracked_lock("x"), TrackedLock)
        rlock = maybe_tracked_rlock("x")
        assert isinstance(rlock, TrackedLock) and rlock.reentrant


# --------------------------------------------------------------------------- #
# Acceptance scenario: live server under REPRO_DEBUG_CONCURRENCY=1
# --------------------------------------------------------------------------- #
def _trace(pairs):
    """A minimal Trace from (user_id, query) pairs, one event per second."""
    from repro.serving.workload import Trace, WorkloadEvent

    events = [
        WorkloadEvent(time_s=float(i), user_id=uid, query=query)
        for i, (uid, query) in enumerate(pairs)
    ]
    return Trace(events=events, n_users=len({uid for uid, _ in pairs}))


class TestServerUnderChecker:
    @pytest.fixture()
    def server(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CONCURRENCY", "1")
        from repro.llm.service import LLMServiceConfig, SimulatedLLMService
        from repro.serving.server import CacheServer, ServerConfig

        caches = {}
        server = CacheServer(
            lambda uid: caches.setdefault(uid, make_cache()),
            service=SimulatedLLMService(LLMServiceConfig(seed=0), thread_safe=True),
            config=ServerConfig(n_shards=2, max_batch_size=8, deterministic=True),
        )
        return server

    def test_normal_replay_passes_under_checker(self, server):
        result = server.replay(_trace(
            [("user-a", f"query number {i}") for i in range(6)]
            + [("user-b", f"query number {i}") for i in range(6)]
        ))
        assert result.n_events == 12
        assert result.lookups == 12

    def test_injected_unlocked_mutation_is_detected(self, server):
        server.replay(_trace([("user-a", "seed the cache")]))
        cache = server.cache_for("user-a")
        # The deliberate violation: touching the user's cache directly,
        # without the owning shard lock — exactly what RPL001 forbids
        # lexically and this checker enforces dynamically.
        with pytest.raises(LockOwnershipError):
            cache.insert("smuggled entry", "resp")

    def test_mutation_under_owning_lock_is_fine(self, server):
        server.replay(_trace([("user-a", "seed the cache")]))
        shard = server._shards[server.shard_of("user-a")]
        cache = server.cache_for("user-a")
        before = len(cache)
        with shard.lock:
            cache.insert("legitimate entry", "resp")
        assert len(cache) == before + 1
