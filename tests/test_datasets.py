"""Tests for the synthetic dataset generators (corpus, pairs, workloads,
contextual conversations, user study, partitioning)."""

import numpy as np
import pytest

from repro.datasets.contextual import FOLLOWUP_TEMPLATES, generate_contextual_dataset
from repro.datasets.corpus import Corpus, QueryIntent, TEMPLATES
from repro.datasets.paraphrase import Paraphraser
from repro.datasets.partition import partition_by_topic, partition_iid, partition_pairs
from repro.datasets.semantic_pairs import generate_cache_workload, generate_pair_dataset
from repro.datasets.userstudy import (
    FIGURE4_PARTICIPANT_COUNTS,
    generate_user_study,
    mean_duplicate_rate,
    study_summary,
)


class TestCorpus:
    def test_has_many_intents(self, corpus):
        assert len(corpus) > 1000

    def test_domain_restriction(self):
        sub = Corpus(seed=0, domains=["programming", "cooking"])
        assert set(sub.domains) == {"programming", "cooking"}
        assert all(i.domain in {"programming", "cooking"} for i in sub.intents)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            Corpus(domains=["astrology"])

    def test_realize_contains_action_or_synonym_and_object_words(self, corpus):
        intent = QueryIntent("programming", "sort", "a list in python")
        text = corpus.realize(intent, rng=np.random.default_rng(0)).lower()
        assert any(syn in text for syn in corpus.action_synonyms(intent))
        assert "list" in text or "array" in text

    def test_realize_deterministic_with_pinned_indices(self, corpus):
        intent = corpus.intents[0]
        a = corpus.realize(intent, template_index=2, action_index=0, object_index=0, filler_index=0)
        b = corpus.realize(intent, template_index=2, action_index=0, object_index=0, filler_index=0)
        assert a == b

    def test_hard_negative_same_domain(self, corpus, rng):
        intent = corpus.intents[10]
        neg = corpus.hard_negative(intent, rng)
        assert neg.domain == intent.domain and neg != intent

    def test_easy_negative_other_domain(self, corpus, rng):
        intent = corpus.intents[10]
        neg = corpus.easy_negative(intent, rng)
        assert neg.domain != intent.domain

    def test_object_keys_cover_all_intents(self, corpus):
        keys = set(corpus.object_keys())
        assert all(i.object_key in keys for i in corpus.intents)

    def test_sample_intents_without_replacement(self, corpus, rng):
        sample = corpus.sample_intents(50, rng)
        assert len({i.key for i in sample}) == 50


class TestParaphraser:
    def test_pair_is_distinct_but_same_intent(self, corpus):
        para = Paraphraser(corpus, seed=1)
        intent = corpus.intents[5]
        q1, q2 = para.realization_pair(intent)
        assert q1 != q2

    def test_group_members_distinct(self, corpus):
        para = Paraphraser(corpus, seed=1)
        group = para.paraphrase_group(corpus.intents[7], size=6)
        assert len(group) == 6
        assert len(set(group)) == 6

    def test_group_size_validation(self, corpus):
        with pytest.raises(ValueError):
            Paraphraser(corpus).paraphrase_group(corpus.intents[0], size=0)


class TestPairDataset:
    def test_sizes_and_fractions(self):
        ds = generate_pair_dataset(n_pairs=200, duplicate_fraction=0.4, seed=1)
        assert len(ds) == 200
        assert ds.duplicate_fraction == pytest.approx(0.4, abs=0.01)

    def test_duplicate_pairs_share_intent(self):
        ds = generate_pair_dataset(n_pairs=100, seed=2)
        for pair in ds.pairs:
            if pair.label == 1:
                assert pair.intent_a == pair.intent_b
            else:
                assert pair.intent_a != pair.intent_b

    def test_hard_negatives_share_domain(self):
        ds = generate_pair_dataset(n_pairs=200, hard_negative_fraction=1.0, seed=3)
        negs = [p for p in ds.pairs if p.label == 0]
        assert negs
        assert all(p.intent_a.split("|")[0] == p.intent_b.split("|")[0] for p in negs if p.hard_negative)

    def test_split_partitions_everything(self):
        ds = generate_pair_dataset(n_pairs=120, seed=4)
        train, val, test = ds.split(0.7, 0.15, seed=0)
        assert len(train) + len(val) + len(test) == 120
        assert len(test) > 0

    def test_split_fraction_validation(self):
        ds = generate_pair_dataset(n_pairs=20, seed=4)
        with pytest.raises(ValueError):
            ds.split(0.9, 0.2)

    def test_balanced_is_balanced(self):
        ds = generate_pair_dataset(n_pairs=150, duplicate_fraction=0.3, seed=5)
        balanced = ds.balanced()
        assert balanced.duplicate_fraction == pytest.approx(0.5)

    def test_subsample(self):
        ds = generate_pair_dataset(n_pairs=100, seed=6)
        assert len(ds.subsample(30)) == 30
        assert len(ds.subsample(500)) == 100

    def test_deterministic_generation(self):
        a = generate_pair_dataset(n_pairs=50, seed=9)
        b = generate_pair_dataset(n_pairs=50, seed=9)
        assert [p.query_a for p in a.pairs] == [p.query_a for p in b.pairs]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_pair_dataset(n_pairs=0)
        with pytest.raises(ValueError):
            generate_pair_dataset(duplicate_fraction=1.5)


class TestCacheWorkload:
    def test_composition(self, small_workload):
        assert small_workload.n_cached == 60
        assert small_workload.n_probes == 60
        assert small_workload.duplicate_fraction == pytest.approx(0.3, abs=0.05)

    def test_duplicate_probes_reference_cached_entries(self, small_workload):
        for probe in small_workload.probes:
            if probe.should_hit:
                idx = probe.matching_cache_index
                assert 0 <= idx < small_workload.n_cached
                assert small_workload.cached_intents[idx] == probe.intent_key
            else:
                assert probe.matching_cache_index == -1

    def test_unique_probes_do_not_duplicate_cached_intents(self, small_workload):
        cached = set(small_workload.cached_intents)
        for probe in small_workload.probes:
            if not probe.should_hit:
                assert probe.intent_key not in cached

    def test_fresh_unique_probes_have_uncached_objects(self):
        wl = generate_cache_workload(
            n_cached=80, n_probes=80, hard_negative_fraction=0.0, seed=21
        )
        cached_objects = {k.rsplit("|", 1)[0] + "|" + k.split("|")[2] for k in wl.cached_intents}
        cached_obj_keys = {"|".join([k.split("|")[0], k.split("|")[2]]) for k in wl.cached_intents}
        for probe in wl.probes:
            if not probe.should_hit:
                obj_key = "|".join([probe.intent_key.split("|")[0], probe.intent_key.split("|")[2]])
                assert obj_key not in cached_obj_keys

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_cache_workload(n_cached=0)
        with pytest.raises(ValueError):
            generate_cache_workload(fresh_object_holdout=1.5)


class TestContextualDataset:
    def test_composition_matches_paper_defaults(self):
        ds = generate_contextual_dataset(seed=3)
        assert ds.n_cached == 200
        assert ds.n_probes == 250
        assert int(ds.true_labels.sum()) == 150

    def test_followups_have_context(self):
        ds = generate_contextual_dataset(
            n_standalone_cached=20,
            n_contextual_cached=20,
            n_duplicate_standalone_probes=10,
            n_duplicate_contextual_probes=10,
            n_unique_probes=20,
            seed=4,
        )
        followups = [t for t in ds.cached_turns if t.is_followup]
        assert len(followups) == 20
        assert all(t.has_context for t in followups)

    def test_context_traps_are_unique_followups(self):
        ds = generate_contextual_dataset(seed=5)
        traps = [p for p in ds.probes if p.is_context_trap]
        assert traps
        assert all(not p.should_hit and p.is_followup and p.context for p in traps)

    def test_followup_templates_have_slots(self):
        for key, (templates, slots) in FOLLOWUP_TEMPLATES.items():
            assert templates and slots
            if "{slot}" in templates[0]:
                assert any(s for s in slots)

    def test_more_followups_than_parents_rejected(self):
        with pytest.raises(ValueError):
            generate_contextual_dataset(n_standalone_cached=5, n_contextual_cached=10)


class TestUserStudy:
    def test_paper_counts_mean_rate(self):
        assert mean_duplicate_rate() == pytest.approx(0.31, abs=0.02)

    def test_counts_have_20_participants(self):
        assert len(FIGURE4_PARTICIPANT_COUNTS) == 20

    def test_generated_logs_match_counts(self):
        participants = generate_user_study(
            counts=[(50, 20), (30, 5)], generate_texts=True, seed=0
        )
        assert participants[0].total_queries == 50
        assert len(participants[0].queries) == 50
        assert sum(participants[0].is_duplicate) == 20

    def test_log_capping(self):
        participants = generate_user_study(
            counts=[(1000, 300)], generate_texts=True, max_log_length=100, seed=0
        )
        assert len(participants[0].queries) == 100
        # Aggregate counts remain the original ones.
        assert participants[0].total_queries == 1000

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            generate_user_study(counts=[(10, 20)])

    def test_summary_fields(self):
        summary = study_summary(generate_user_study(generate_texts=False))
        assert summary["n_participants"] == 20
        assert 0.25 < summary["mean_duplicate_rate"] < 0.40


class TestPartitioning:
    def test_iid_partition_covers_all_items(self):
        items = list(range(103))
        shards = partition_iid(items, 7, seed=0)
        assert sum(len(s) for s in shards) == 103
        assert sorted(x for s in shards for x in s) == items

    def test_iid_partition_is_balanced(self):
        shards = partition_iid(list(range(100)), 8, seed=1)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_pairs(self, small_pair_dataset):
        shards = partition_pairs(small_pair_dataset, 5, seed=2)
        assert len(shards) == 5
        assert sum(len(s) for s in shards) == len(small_pair_dataset)

    def test_topic_partition_covers_all_pairs(self, small_pair_dataset):
        shards = partition_by_topic(small_pair_dataset, 4, concentration=0.5, seed=3)
        assert sum(len(s) for s in shards) == len(small_pair_dataset)
        assert all(len(s) > 0 for s in shards)

    def test_topic_partition_is_skewed(self, small_pair_dataset):
        iid = partition_pairs(small_pair_dataset, 4, seed=4)
        skewed = partition_by_topic(small_pair_dataset, 4, concentration=0.1, seed=4)
        def domain_entropy(shards):
            ents = []
            for shard in shards:
                domains = [p.intent_a.split("|")[0] for p in shard.pairs]
                _, counts = np.unique(domains, return_counts=True)
                p = counts / counts.sum()
                ents.append(float(-(p * np.log(p + 1e-12)).sum()))
            return np.mean(ents)
        assert domain_entropy(skewed) < domain_entropy(iid)

    def test_invalid_client_counts(self, small_pair_dataset):
        with pytest.raises(ValueError):
            partition_iid([1, 2, 3], 0)
        with pytest.raises(ValueError):
            partition_by_topic(small_pair_dataset, 3, concentration=0.0)
