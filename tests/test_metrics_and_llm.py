"""Tests for the metrics package and the simulated LLM service."""

import numpy as np
import pytest

from repro.llm.latency import LatencyModel, LatencyModelConfig
from repro.llm.responses import ResponseGenerator, count_tokens
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.metrics.classification import (
    ConfusionMatrix,
    accuracy,
    confusion_matrix,
    evaluate_decisions,
    fbeta_score,
    precision,
    recall,
)
from repro.metrics.reporting import format_confusion_matrix, format_metric_comparison, format_table
from repro.metrics.timing import LatencyHistogram, SimulatedClock, Timer


class TestConfusionMatrix:
    def test_counts(self):
        y_true = [True, True, False, False, True]
        y_pred = [True, False, True, False, True]
        cm = confusion_matrix(y_true, y_pred)
        assert (cm.tp, cm.fn, cm.fp, cm.tn) == (2, 1, 1, 1)

    def test_metric_values(self):
        cm = ConfusionMatrix(true_hits=60, false_hits=40, true_misses=160, false_misses=40)
        assert cm.precision() == pytest.approx(0.6)
        assert cm.recall() == pytest.approx(0.6)
        assert cm.accuracy() == pytest.approx(220 / 300)
        assert cm.f1() == pytest.approx(0.6)

    def test_fbeta_weights_precision(self):
        high_p = ConfusionMatrix(true_hits=50, false_hits=5, true_misses=100, false_misses=50)
        high_r = ConfusionMatrix(true_hits=95, false_hits=90, true_misses=15, false_misses=5)
        # Same F1-ish ballpark, but F0.5 must prefer the high-precision system.
        assert high_p.fbeta(0.5) > high_r.fbeta(0.5)

    def test_degenerate_cases_are_zero_not_nan(self):
        cm = ConfusionMatrix(0, 0, 10, 0)
        assert cm.precision() == 0.0
        assert cm.recall() == 0.0
        assert cm.fbeta() == 0.0

    def test_as_array_layout(self):
        cm = ConfusionMatrix(true_hits=3, false_hits=2, true_misses=5, false_misses=1)
        arr = cm.as_array()
        assert arr[0, 0] == 5 and arr[0, 1] == 2 and arr[1, 0] == 1 and arr[1, 1] == 3

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(1, 1, 1, 1).fbeta(0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([True], [True, False])

    def test_wrapper_functions_agree(self):
        y_true = np.array([True, False, True, False])
        y_pred = np.array([True, True, False, False])
        cm = confusion_matrix(y_true, y_pred)
        assert precision(y_true, y_pred) == cm.precision()
        assert recall(y_true, y_pred) == cm.recall()
        assert accuracy(y_true, y_pred) == cm.accuracy()
        assert fbeta_score(y_true, y_pred) == cm.fbeta(0.5)
        assert evaluate_decisions(y_true, y_pred)["f_score"] == cm.fbeta(0.5)

    def test_false_hit_rate(self):
        cm = ConfusionMatrix(true_hits=10, false_hits=25, true_misses=75, false_misses=5)
        assert cm.false_hit_rate() == pytest.approx(0.25)


class TestReporting:
    def test_format_table_contains_cells(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "2.500" in text and "x" in text

    def test_format_confusion_matrix(self):
        cm = ConfusionMatrix(1, 2, 3, 4)
        text = format_confusion_matrix(cm, "demo")
        assert "demo" in text and "3" in text

    def test_format_metric_comparison(self):
        text = format_metric_comparison(
            {"A": {"precision": 0.5}, "B": {"precision": 0.7}}, metrics=("precision",)
        )
        assert "0.700" in text and "A" in text


class TestTiming:
    def test_timer_records_durations(self):
        timer = Timer()
        with timer:
            sum(range(1000))
        assert timer.last >= 0.0
        assert len(timer.durations) == 1
        assert timer.mean == timer.total

    def test_timer_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.durations == [] and timer.last == 0.0

    def test_simulated_clock(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)
        assert clock.history == [1.5, 0.5]
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        clock.reset()
        assert clock.now == 0.0


class TestLatencyHistogram:
    def test_nearest_rank_percentiles(self):
        hist = LatencyHistogram()
        for ns in range(1, 101):  # 1..100ns
            hist.record(ns)
        # Nearest-rank: pXX over 1..100 is exactly XX, and every reported
        # value is an observed sample.
        assert hist.p50 == 50.0
        assert hist.p95 == 95.0
        assert hist.p99 == 99.0
        assert hist.percentile(100.0) == 100.0
        assert hist.percentile(1.0) == 1.0
        assert hist.mean == pytest.approx(50.5)
        assert hist.count == 100

    def test_single_sample_and_empty(self):
        hist = LatencyHistogram()
        assert hist.p99 == 0.0 and hist.mean == 0.0 and hist.count == 0
        hist.record(42)
        assert hist.p50 == 42.0 and hist.p99 == 42.0 and hist.mean == 42.0

    def test_warmup_samples_are_dropped(self):
        hist = LatencyHistogram(warmup=2)
        for ns in (10_000, 20_000, 1, 2, 3):
            hist.record(ns)
        assert hist.count == 3
        assert hist.samples == [1, 2, 3]
        assert hist.p99 == 3.0

    def test_time_context_manager_records(self):
        hist = LatencyHistogram()
        with hist.time():
            sum(range(1000))
        assert hist.count == 1
        assert hist.p50 > 0.0

    def test_merge_combines_samples(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for ns in (1, 2):
            a.record(ns)
        for ns in (3, 4):
            b.record(ns)
        merged = a.merge(b)
        assert merged.count == 4
        assert merged.percentile(100.0) == 4.0
        # Sources are untouched.
        assert a.count == 2 and b.count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(warmup=-1)
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-5)
        hist.record(7)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_to_dict_round_numbers(self):
        hist = LatencyHistogram()
        for ns in (100, 200, 300):
            hist.record(ns)
        d = hist.to_dict()
        assert d == {
            "count": 3.0,
            "p50_ns": 200.0,
            "p95_ns": 300.0,
            "p99_ns": 300.0,
            "mean_ns": 200.0,
        }


class TestLatencyModel:
    def test_expected_latency_grows_with_tokens(self):
        model = LatencyModel(seed=0)
        assert model.expected(10, 100) > model.expected(10, 10)

    def test_sample_respects_minimum(self):
        config = LatencyModelConfig(jitter_std=10.0, min_latency=0.02)
        model = LatencyModel(config, seed=1)
        samples = [model.sample(5, 5) for _ in range(50)]
        assert min(samples) >= 0.02

    def test_deterministic_given_seed(self):
        a = LatencyModel(seed=7)
        b = LatencyModel(seed=7)
        assert [a.sample(10, 50) for _ in range(5)] == [b.sample(10, 50) for _ in range(5)]

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(seed=0).sample(-1, 10)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LatencyModelConfig(decode_per_token=-1.0)

    def test_llm_scale_latency_magnitude(self):
        # ~50-token responses should land in the hundreds of milliseconds,
        # matching the magnitudes in the paper's Figure 5.
        model = LatencyModel(seed=0)
        assert 0.2 < model.expected(20, 50) < 2.0


class TestResponses:
    def test_deterministic_per_query(self):
        gen = ResponseGenerator(response_tokens=50)
        assert gen.generate("sort a list") == gen.generate("sort a list")

    def test_token_budget_respected(self):
        gen = ResponseGenerator(response_tokens=50)
        assert count_tokens(gen.generate("anything at all")) == 50

    def test_different_queries_differ(self):
        gen = ResponseGenerator()
        assert gen.generate("query one") != gen.generate("a different query")

    def test_invalid_token_count(self):
        with pytest.raises(ValueError):
            ResponseGenerator(response_tokens=0)


class TestSimulatedService:
    def test_query_returns_response_and_accounting(self):
        service = SimulatedLLMService()
        resp = service.query("How do I sort a list in python?", client_id="u1")
        assert resp.response_tokens == 50
        assert resp.latency_s > 0
        assert service.stats.n_requests == 1
        assert service.client_stats("u1").n_requests == 1
        assert service.client_stats("unknown").n_requests == 0

    def test_context_increases_prompt_tokens(self):
        service = SimulatedLLMService()
        short = service.query("change the color to red")
        long = service.query("change the color to red", context=["draw a big line plot in python please"])
        assert long.prompt_tokens > short.prompt_tokens

    def test_cost_positive_and_accumulates(self):
        service = SimulatedLLMService()
        service.query("a")
        service.query("b")
        assert service.stats.total_cost_usd > 0

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            SimulatedLLMService().query("   ")

    def test_reset_stats(self):
        service = SimulatedLLMService()
        service.query("a")
        service.reset_stats()
        assert service.stats.n_requests == 0

    def test_hashed_jitter_independent_of_arrival_order(self):
        requests = [("u1", "sort a python list"), ("u2", "plan a trip"), ("u1", "bake bread")]
        forward = SimulatedLLMService(LLMServiceConfig(seed=0))
        reordered = SimulatedLLMService(LLMServiceConfig(seed=0))
        lat_fwd = {req: forward.query(req[1], client_id=req[0]).latency_s for req in requests}
        lat_rev = {
            req: reordered.query(req[1], client_id=req[0]).latency_s
            for req in reversed(requests)
        }
        assert lat_fwd == lat_rev

    def test_sequential_jitter_depends_on_arrival_order(self):
        config = LLMServiceConfig(seed=0, jitter_mode="sequential")
        requests = [("u1", "sort a python list"), ("u2", "plan a trip")]
        forward = SimulatedLLMService(config)
        reordered = SimulatedLLMService(config)
        lat_fwd = {req: forward.query(req[1], client_id=req[0]).latency_s for req in requests}
        lat_rev = {
            req: reordered.query(req[1], client_id=req[0]).latency_s
            for req in reversed(requests)
        }
        # The shared RNG hands out jitter in request order, so swapping the
        # arrival order reassigns latencies (the defect the hashed mode fixes).
        assert lat_fwd != lat_rev

    def test_hashed_jitter_distinguishes_clients(self):
        service = SimulatedLLMService(LLMServiceConfig(seed=0))
        a = service.query("identical prompt", client_id="client-a").latency_s
        b = service.query("identical prompt", client_id="client-b").latency_s
        assert a != b

    def test_invalid_jitter_mode_rejected(self):
        with pytest.raises(ValueError):
            LLMServiceConfig(jitter_mode="bogus")


class TestServiceClocks:
    """Regression tests for the two-clocks fix (injectable service clock).

    The historical service silently assumed the simulator's virtual event
    clock; stamping live wall-clock requests with it mixed modelled virtual
    latencies into measured wall-clock sums.  The clock is now injectable:
    the simulator passes ``now=<virtual arrival>`` per request, the live
    server constructs the service with ``clock=time.monotonic`` and passes
    nothing.  Both modes must stamp correctly — and neither may change the
    modelled latency/cost, which depend only on the request itself.
    """

    def test_explicit_now_stamps_virtual_time(self):
        service = SimulatedLLMService()
        resp = service.query("sort a python list", client_id="u1", now=123.5)
        assert resp.issued_at_s == 123.5
        assert resp.completed_at_s == pytest.approx(123.5 + resp.latency_s)

    def test_injected_clock_stamps_wall_time(self):
        ticks = iter([1000.0, 2000.0])
        service = SimulatedLLMService(clock=lambda: next(ticks))
        first = service.query("sort a python list")
        second = service.query("plan a trip")
        assert first.issued_at_s == 1000.0
        assert second.issued_at_s == 2000.0
        assert second.completed_at_s == pytest.approx(2000.0 + second.latency_s)

    def test_explicit_now_overrides_injected_clock(self):
        service = SimulatedLLMService(clock=lambda: 777.0)
        resp = service.query("sort a python list", now=3.25)
        assert resp.issued_at_s == 3.25

    def test_no_clock_keeps_historical_behaviour(self):
        resp = SimulatedLLMService().query("sort a python list")
        assert resp.issued_at_s is None
        assert resp.completed_at_s is None

    def test_clock_choice_never_changes_modelled_latency_or_cost(self):
        virtual = SimulatedLLMService(LLMServiceConfig(seed=0))
        wall = SimulatedLLMService(LLMServiceConfig(seed=0), clock=lambda: 55.5)
        a = virtual.query("identical prompt", client_id="u1", now=1.0)
        b = wall.query("identical prompt", client_id="u1")
        assert a.latency_s == b.latency_s
        assert a.cost_usd == b.cost_usd
        assert a.issued_at_s == 1.0 and b.issued_at_s == 55.5

    def test_thread_safe_accounting_under_contention(self):
        import threading

        service = SimulatedLLMService(thread_safe=True)
        n_threads, per_thread = 8, 50

        def worker(tid):
            for i in range(per_thread):
                service.query(f"worker {tid} request {i}", client_id=f"u{tid}")

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert service.stats.n_requests == n_threads * per_thread
        for tid in range(n_threads):
            assert service.client_stats(f"u{tid}").n_requests == per_thread
