"""Tests for the online federated threshold adaptation loop.

Covers the adapter in isolation (mining rules, recency windows, round
driver, personalization, clamping) and integrated with ``FleetSimulator``
(live τ pushes, determinism under a fixed seed, variant tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tiny_encoder

from repro.baselines.keyword_cache import KeywordCache
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.federated.online import (
    MinedPair,
    OnlineAdaptationConfig,
    OnlineThresholdAdapter,
)
from repro.federated.sampling import RoundRobinSampler
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving import (
    DriftPhase,
    FleetConfig,
    FleetSimulator,
    FloodingConfig,
    WorkloadConfig,
    WorkloadGenerator,
    build_flooding_trace,
)


class _RecordingCache:
    """Minimal cache stand-in recording every pushed threshold."""

    def __init__(self) -> None:
        self.pushed = []

    def set_threshold(self, tau: float) -> None:
        self.pushed.append(tau)

    @property
    def threshold(self):
        return self.pushed[-1] if self.pushed else None


def _observe_batch(adapter, user_id, observations):
    """Feed (similarity, hit, verified) triples into the adapter."""
    for i, (sim, hit, verified) in enumerate(observations):
        adapter.observe(
            user_id,
            similarity=sim,
            hit=hit,
            verified=verified,
            query=f"q{i}",
            matched_query=f"m{i}",
            time_s=float(i),
        )


def _separable_observations(n_pos=12, n_neg=12, pos=0.85, neg=0.45):
    obs = []
    for i in range(n_pos):
        obs.append((pos + 0.001 * i, True, True))
    for i in range(n_neg):
        obs.append((neg + 0.001 * i, False, False))
    return obs


class TestConfigValidation:
    def test_defaults_valid(self):
        OnlineAdaptationConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"round_interval_s": 0.0},
            {"clients_per_round": 0},
            {"min_observations": 1},
            {"max_observations": 4, "min_observations": 8},
            {"observation_ttl_s": 0.0},
            {"miss_margin": -0.1},
            {"threshold_grid": 1},
            {"personalization": 1.5},
            {"initial_threshold": 2.0},
            {"min_threshold": 0.8, "max_threshold": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OnlineAdaptationConfig(**kwargs)


class TestMining:
    def _adapter(self, **kwargs):
        config = OnlineAdaptationConfig(
            round_interval_s=10.0, min_observations=4, **kwargs
        )
        adapter = OnlineThresholdAdapter(config)
        adapter.register_user("u0", _RecordingCache())
        return adapter

    def test_verified_hits_and_false_hits_are_mined(self):
        adapter = self._adapter()
        adapter.observe("u0", similarity=0.9, hit=True, verified=True, query="a")
        adapter.observe("u0", similarity=0.72, hit=True, verified=False, query="b")
        pairs = adapter.mined_pairs("u0")
        assert [(p.label, p.source) for p in pairs] == [(True, "hit"), (False, "hit")]

    def test_unverifiable_outcomes_are_skipped(self):
        adapter = self._adapter()
        adapter.observe("u0", similarity=0.9, hit=True, verified=None)
        adapter.observe("u0", similarity=0.6, hit=False, verified=None)
        assert adapter.mined_pairs("u0") == []

    def test_near_threshold_misses_only(self):
        adapter = self._adapter(miss_margin=0.1)
        # τ starts at 0.7: mined iff similarity >= 0.6.
        adapter.observe("u0", similarity=0.65, hit=False, verified=True)
        adapter.observe("u0", similarity=0.35, hit=False, verified=False)
        pairs = adapter.mined_pairs("u0")
        assert len(pairs) == 1
        assert pairs[0].similarity == pytest.approx(0.65)
        assert pairs[0].label is True and pairs[0].source == "miss"

    def test_followup_misses_skipped_by_default(self):
        adapter = self._adapter()
        adapter.observe("u0", similarity=0.68, hit=False, verified=True, followup=True)
        assert adapter.mined_pairs("u0") == []
        adapter.observe("u0", similarity=0.95, hit=True, verified=True, followup=True)
        assert len(adapter.mined_pairs("u0")) == 1  # followup *hits* still mined

    def test_followup_misses_mined_when_enabled(self):
        adapter = self._adapter(mine_followup_misses=True)
        adapter.observe("u0", similarity=0.68, hit=False, verified=True, followup=True)
        assert len(adapter.mined_pairs("u0")) == 1

    def test_unknown_user_ignored(self):
        adapter = self._adapter()
        adapter.observe("ghost", similarity=0.9, hit=True, verified=True)
        assert adapter.mined_pairs("ghost") == []

    def test_count_window_evicts_oldest(self):
        adapter = self._adapter(max_observations=4)
        _observe_batch(adapter, "u0", [(0.9, True, True)] * 6)
        pairs = adapter.mined_pairs("u0")
        assert len(pairs) == 4
        assert pairs[0].query == "q2"  # the two oldest aged out


class TestRoundDriver:
    def _config(self, **kwargs):
        defaults = dict(
            round_interval_s=10.0,
            clients_per_round=4,
            min_observations=4,
            personalization=1.0,
            initial_threshold=0.7,
            seed=0,
        )
        defaults.update(kwargs)
        return OnlineAdaptationConfig(**defaults)

    def test_rounds_fire_on_the_virtual_clock(self):
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("u0", _RecordingCache())
        assert adapter.advance(9.9) == []
        assert len(adapter.advance(10.0)) == 1
        assert len(adapter.advance(45.0)) == 3  # catches up: t=20, 30, 40
        assert [r.time_s for r in adapter.history] == [10.0, 20.0, 30.0, 40.0]

    def test_local_sweep_moves_global_and_pushes_live(self):
        cache = _RecordingCache()
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("u0", cache)
        _observe_batch(adapter, "u0", _separable_observations())
        (round_,) = adapter.advance(10.0)
        assert round_.participants == ["u0"]
        assert "u0" in round_.local_thresholds
        # Positives at ~0.85, negatives at ~0.45: τ lands in the gap.
        assert 0.45 < adapter.global_threshold <= 0.85
        assert cache.pushed[-1] == pytest.approx(adapter.global_threshold)
        assert adapter.threshold_for("u0") == pytest.approx(cache.pushed[-1])

    def test_devices_below_min_observations_keep_global(self):
        adapter = OnlineThresholdAdapter(self._config(min_observations=50))
        cache = _RecordingCache()
        adapter.register_user("u0", cache)
        _observe_batch(adapter, "u0", _separable_observations())
        adapter.advance(10.0)
        assert adapter.global_threshold == pytest.approx(0.7)
        assert adapter.threshold_for("u0") == pytest.approx(0.7)

    def test_single_class_buffer_is_not_swept(self):
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("u0", _RecordingCache())
        _observe_batch(adapter, "u0", [(0.9, True, True)] * 10)  # positives only
        (round_,) = adapter.advance(10.0)
        assert round_.local_thresholds == {}
        assert adapter.global_threshold == pytest.approx(0.7)

    def test_personalization_blend(self):
        config = self._config(personalization=0.5, clients_per_round=1)
        adapter = OnlineThresholdAdapter(config, sampler=RoundRobinSampler())
        swept, idle = _RecordingCache(), _RecordingCache()
        adapter.register_user("u0", swept)
        adapter.register_user("u1", idle)
        _observe_batch(adapter, "u0", _separable_observations())
        (round_,) = adapter.advance(10.0)
        local = round_.local_thresholds["u0"]
        # One participant: global == its local optimum; the swept device
        # serves the (here degenerate) blend, the idle device the global.
        assert adapter.global_threshold == pytest.approx(local)
        assert adapter.threshold_for("u0") == pytest.approx(0.5 * local + 0.5 * local)
        assert adapter.threshold_for("u1") == pytest.approx(adapter.global_threshold)

    def test_shared_cache_gets_global_only(self):
        shared = _RecordingCache()
        adapter = OnlineThresholdAdapter(self._config(personalization=1.0))
        adapter.register_user("u0", shared)
        adapter.register_user("u1", shared)
        _observe_batch(adapter, "u0", _separable_observations())
        adapter.advance(10.0)
        assert shared.pushed[-1] == pytest.approx(adapter.global_threshold)

    def test_threshold_clamped(self):
        config = self._config(min_threshold=0.6, max_threshold=0.75)
        adapter = OnlineThresholdAdapter(config)
        cache = _RecordingCache()
        adapter.register_user("u0", cache)
        # All-positive scores down at 0.2 would drive τ to ~0: the clamp holds.
        _observe_batch(
            adapter, "u0", [(0.2, True, True)] * 8 + [(0.1, False, False)] * 8
        )
        adapter.advance(10.0)
        assert 0.6 <= adapter.threshold_for("u0") <= 0.75

    def test_observation_ttl_prunes_stale_pairs(self):
        config = self._config(observation_ttl_s=5.0)
        adapter = OnlineThresholdAdapter(config)
        adapter.register_user("u0", _RecordingCache())
        for i, (sim, hit, verified) in enumerate(_separable_observations(6, 6)):
            adapter.observe(
                "u0", similarity=sim, hit=hit, verified=verified, time_s=float(i)
            )
        adapter.advance(30.0)  # rounds at t=10, 20, 30
        # By the t=30 round (cutoff 25) every pair (t <= 11) is stale.
        assert adapter.mined_pairs("u0") == []
        assert adapter.history[-1].n_observations == 0
        # The t=10 round (cutoff 5) still saw the fresher half.
        assert adapter.history[0].n_observations > 0

    def test_caches_without_set_threshold_are_tolerated(self):
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("u0", object())  # no set_threshold anywhere
        _observe_batch(adapter, "u0", _separable_observations())
        adapter.advance(10.0)  # must not raise
        assert adapter.threshold_for("u0") == pytest.approx(adapter.global_threshold)

    def test_trajectory_matches_history(self):
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("u0", _RecordingCache())
        adapter.advance(35.0)
        trajectory = adapter.threshold_trajectory()
        assert list(trajectory["round"]) == [0, 1, 2]
        assert trajectory["threshold"].shape == (3,)

    def test_round_records_serialize(self):
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("u0", _RecordingCache())
        _observe_batch(adapter, "u0", _separable_observations())
        (round_,) = adapter.advance(10.0)
        payload = round_.to_dict()
        assert payload["round_number"] == 0
        assert payload["participants"] == ["u0"]
        assert isinstance(payload["local_thresholds"], dict)


class TestFleetIntegration:
    @pytest.fixture(scope="class")
    def drift_trace(self):
        config = WorkloadConfig(
            n_users=6,
            queries_per_user=40,
            duplicate_rate=0.45,
            domain_concentration=0.3,
            drift_phases=(
                DriftPhase(start_fraction=0.5, duplicate_rate=0.6, paraphrase_bias=0.1),
            ),
        )
        return WorkloadGenerator(config, seed=21).generate()

    def _run(self, trace, tiny_encoder, adapter=None):
        simulator = FleetSimulator(
            lambda uid: MeanCache(
                tiny_encoder, MeanCacheConfig(similarity_threshold=0.7)
            ),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(),
            adaptation=adapter,
        )
        return simulator.run(trace)

    def _adapter(self, seed=0):
        return OnlineThresholdAdapter(
            OnlineAdaptationConfig(
                round_interval_s=15.0,
                clients_per_round=6,
                min_observations=8,
                personalization=0.5,
                initial_threshold=0.7,
                seed=seed,
            )
        )

    def test_adaptation_runs_rounds_and_pushes_thresholds(self, drift_trace, tiny_encoder):
        adapter = self._adapter()
        result = self._run(drift_trace, tiny_encoder, adapter)
        assert result.lookups == len(drift_trace)
        assert len(adapter.history) > 5
        assert adapter.user_ids == drift_trace.user_ids
        assert any(adapter.mined_pairs(uid) for uid in adapter.user_ids)
        # At least one device must have moved off the cold-start τ.
        assert any(
            abs(adapter.threshold_for(uid) - 0.7) > 1e-9 for uid in adapter.user_ids
        )

    def test_fleet_adaptation_deterministic_under_fixed_seed(self, drift_trace, tiny_encoder):
        first_adapter = self._adapter(seed=4)
        first = self._run(drift_trace, tiny_encoder, first_adapter)
        second_adapter = self._adapter(seed=4)
        second = self._run(drift_trace, tiny_encoder, second_adapter)
        assert first.hit_rate == second.hit_rate
        assert first.false_hit_rate == second.false_hit_rate
        assert first_adapter.global_threshold == second_adapter.global_threshold
        assert [r.global_threshold for r in first_adapter.history] == [
            r.global_threshold for r in second_adapter.history
        ]
        assert [r.participants for r in first_adapter.history] == [
            r.participants for r in second_adapter.history
        ]
        for uid in first_adapter.user_ids:
            assert first_adapter.threshold_for(uid) == second_adapter.threshold_for(uid)

    def test_adaptive_threshold_reaches_live_cache_config(self, drift_trace, tiny_encoder):
        adapter = self._adapter()
        caches = {}

        def factory(uid):
            caches[uid] = MeanCache(
                tiny_encoder, MeanCacheConfig(similarity_threshold=0.7)
            )
            return caches[uid]

        simulator = FleetSimulator(
            factory,
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(),
            adaptation=adapter,
        )
        simulator.run(drift_trace)
        for uid, cache in caches.items():
            assert cache.config.similarity_threshold == pytest.approx(
                adapter.threshold_for(uid)
            )
            # The pipeline's Threshold stage reads the same live value.
            assert cache.pipeline.threshold.threshold == pytest.approx(
                adapter.threshold_for(uid)
            )

    def test_keyword_variant_observed_but_never_pushed(self, drift_trace):
        adapter = self._adapter()
        simulator = FleetSimulator(
            lambda uid: KeywordCache(),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(),
            adaptation=adapter,
        )
        result = simulator.run(drift_trace)  # must not raise
        assert result.lookups == len(drift_trace)

    def test_mined_pairs_carry_texts_for_future_training(self, drift_trace, tiny_encoder):
        adapter = self._adapter()
        self._run(drift_trace, tiny_encoder, adapter)
        pairs = [p for uid in adapter.user_ids for p in adapter.mined_pairs(uid)]
        assert pairs
        for pair in pairs:
            assert isinstance(pair, MinedPair)
            assert pair.query
            assert pair.source in ("hit", "miss")
            assert 0.0 <= pair.similarity <= 1.0 + 1e-9


class TestAdversarialFloodResistance:
    """Near-miss flooding must never drive τ below the configured floor.

    The attack: adversarial devices issue weak-paraphrase re-asks whose
    similarities land in the near-threshold mining band as *positives*, so
    a local sweep prefers an ever-lower τ.  ``min_threshold`` is the
    defense — the clamp applies to the aggregated global τ and to every
    per-device value actually pushed into a live cache.
    """

    def _flood_observations(self, n=24, sim=0.30):
        # Verified-correct re-asks at adversarially low similarity, plus a
        # few true negatives so the buffer is sweepable: the sweep's
        # preferred τ sits far below any sane floor.
        obs = [(sim + 0.001 * i, True, True) for i in range(n)]
        obs += [(0.15 + 0.001 * i, False, False) for i in range(4)]
        return obs

    def _config(self, **kwargs):
        defaults = dict(
            round_interval_s=10.0,
            clients_per_round=8,
            min_observations=6,
            personalization=1.0,
            initial_threshold=0.7,
            min_threshold=0.6,
            seed=0,
        )
        defaults.update(kwargs)
        return OnlineAdaptationConfig(**defaults)

    def test_flooded_low_similarity_positives_cannot_cross_floor(self):
        cache = _RecordingCache()
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("flood-0", cache)
        _observe_batch(adapter, "flood-0", self._flood_observations())
        adapter.advance(10.0)
        # The sweep wanted τ ≈ 0.2; the floor holds everywhere it matters.
        assert adapter.global_threshold >= 0.6
        assert adapter.threshold_for("flood-0") >= 0.6
        assert all(tau >= 0.6 for tau in cache.pushed)

    def test_flooder_majority_cannot_drag_weighted_aggregate_below_floor(self):
        adapter = OnlineThresholdAdapter(self._config(weighted=True))
        honest = _RecordingCache()
        adapter.register_user("honest", honest)
        _observe_batch(adapter, "honest", _separable_observations())
        flood_caches = [_RecordingCache() for _ in range(5)]
        for i, cache in enumerate(flood_caches):
            adapter.register_user(f"flood-{i}", cache)
            # Big buffers: under weighted aggregation the flooders dominate.
            _observe_batch(adapter, f"flood-{i}", self._flood_observations(n=60))
        adapter.advance(10.0)
        assert adapter.global_threshold >= 0.6
        for cache in flood_caches + [honest]:
            assert all(tau >= 0.6 for tau in cache.pushed)

    def test_floor_holds_across_sustained_flooding_rounds(self):
        adapter = OnlineThresholdAdapter(self._config())
        adapter.register_user("flood-0", _RecordingCache())
        for round_index in range(6):
            _observe_batch(adapter, "flood-0", self._flood_observations())
            adapter.advance(10.0 * (round_index + 1))
        trajectory = adapter.threshold_trajectory()["threshold"]
        assert len(trajectory) == 6
        assert trajectory.min() >= 0.6

    def test_fleet_flooding_trajectory_never_crosses_floor(self, tiny_encoder):
        trace, honest_ids, flooder_ids = build_flooding_trace(
            WorkloadConfig(n_users=4, queries_per_user=15, duplicate_rate=0.4),
            FloodingConfig(n_flooders=3, queries_per_flooder=60),
            seed=0,
        )
        adapter = OnlineThresholdAdapter(
            self._config(min_threshold=0.55, round_interval_s=15.0)
        )
        simulator = FleetSimulator(
            lambda uid: MeanCache(
                tiny_encoder, MeanCacheConfig(similarity_threshold=0.7)
            ),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(),
            adaptation=adapter,
        )
        result = simulator.run(trace)
        assert result.lookups == len(trace)
        assert adapter.history, "flooding run must drive adaptation rounds"
        assert adapter.threshold_trajectory()["threshold"].min() >= 0.55
        for uid in honest_ids + flooder_ids:
            assert adapter.threshold_for(uid) >= 0.55
