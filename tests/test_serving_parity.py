"""Simulator / server parity regression (the PR 8 scheduler-refactor pin).

:class:`~repro.serving.fleet.FleetSimulator` and
:class:`~repro.serving.server.CacheServer` are two frontends over the same
scheduling core (:mod:`repro.serving.scheduling`): the simulator windows a
trace on the virtual clock, the server micro-batches wall-clock arrivals.
Replaying one trace through both — the server in its single-worker
deterministic mode with matching window width — must produce **identical
per-event decisions**: same hit/miss bits, same responses, bit-exact
similarities, same admission of every event.

Decision streams are compared in the golden-decision canonical form of
``tests/golden_decisions.py`` (hits as a ``"0"/"1"`` string, similarities as
``float.hex()``), and one MeanCache stream is additionally pinned against
``tests/fixtures/golden_serving_decisions.json`` so a change that shifts
*both* frontends together is caught too.  Regenerate that fixture only for a
deliberate, documented decision-level change::

    PYTHONPATH=src:tests python -m test_serving_parity
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from conftest import make_tiny_encoder
from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.baselines.keyword_cache import KeywordCache
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving.fleet import FleetConfig, FleetSimulator
from repro.serving.server import CacheServer, ServerConfig
from repro.serving.workload import WorkloadConfig, WorkloadGenerator

FIXTURE_PATH = (
    Path(__file__).resolve().parent / "fixtures" / "golden_serving_decisions.json"
)

TRACE_SEED = 17
BATCH_WINDOW_S = 0.25


def _make_trace():
    config = WorkloadConfig(
        n_users=10, queries_per_user=14, duplicate_rate=0.4, followup_rate=0.3
    )
    return WorkloadGenerator(config, seed=TRACE_SEED).generate()


@pytest.fixture(scope="module")
def trace():
    return _make_trace()


def _service():
    return SimulatedLLMService(LLMServiceConfig(seed=0))


def _event_key(outcome):
    return (outcome.event.user_id, outcome.event.time_s, outcome.event.query)


def _decision_stream(outcomes):
    """Canonical decision summary (golden_decisions.py form), in event order."""
    ordered = sorted(outcomes, key=_event_key)
    return {
        "events": [list(_event_key(o)) for o in ordered],
        "hits": "".join("1" if o.hit else "0" for o in ordered),
        "sims": [float(o.similarity).hex() for o in ordered],
        "responses": [o.response for o in ordered],
        "matches": [o.matched_query if o.hit else None for o in ordered],
        "verified": [o.verified for o in ordered],
    }


def _run_simulator(trace, factory):
    simulator = FleetSimulator(
        factory, _service(), FleetConfig(batch_window_s=BATCH_WINDOW_S)
    )
    return simulator.run(trace, collect_outcomes=True)


def _run_server(trace, factory, n_shards=4, **server_kwargs):
    server = CacheServer(
        factory,
        service=_service(),
        config=ServerConfig(deterministic=True, n_shards=n_shards),
        **server_kwargs,
    )
    return server.replay(
        trace, batch_window_s=BATCH_WINDOW_S, collect_outcomes=True
    ), server


def _meancache_factory(encoder):
    return lambda uid: MeanCache(encoder, MeanCacheConfig(similarity_threshold=0.8))


def collect_parity_summary():
    """The pinned MeanCache decision stream (fixture-regeneration entry)."""
    trace = _make_trace()
    encoder = make_tiny_encoder()
    result = _run_simulator(trace, _meancache_factory(encoder))
    summary = _decision_stream(result.outcomes)
    summary["trace_seed"] = TRACE_SEED
    summary["batch_window_s"] = BATCH_WINDOW_S
    return summary


class TestSimulatorServerParity:
    def assert_identical_streams(self, sim_result, srv_result, n_events):
        """Both frontends served every event with byte-identical decisions."""
        assert len(sim_result.outcomes) == n_events
        assert len(srv_result.outcomes) == n_events  # nothing shed or lost
        assert _decision_stream(sim_result.outcomes) == _decision_stream(
            srv_result.outcomes
        )

    def test_meancache_fleet_byte_identical(self, trace):
        encoder = make_tiny_encoder()
        sim_result = _run_simulator(trace, _meancache_factory(encoder))
        srv_result, server = _run_server(trace, _meancache_factory(encoder))
        self.assert_identical_streams(sim_result, srv_result, len(trace))
        # The aggregates derive from the same streams.
        assert srv_result.hit_rate == sim_result.hit_rate
        assert srv_result.total_cost_usd == pytest.approx(sim_result.total_cost_usd)
        assert server.metrics.shed == 0
        # Users really spread over the shards (sharding happened, parity held).
        shards_used = {server.shard_of(uid) for uid in trace.user_ids}
        assert len(shards_used) > 1

    def test_shared_central_cache_byte_identical(self, trace):
        """One GPTCache for the whole fleet: the server pins it to one shard."""
        encoder = make_tiny_encoder()
        central_sim = GPTCache(encoder, GPTCacheConfig(similarity_threshold=0.8))
        sim_result = _run_simulator(trace, lambda uid: central_sim)
        central_srv = GPTCache(encoder, GPTCacheConfig(similarity_threshold=0.8))
        srv_result, server = _run_server(trace, lambda uid: central_srv)
        self.assert_identical_streams(sim_result, srv_result, len(trace))
        # Every user collapsed onto the shared cache's owning shard.
        assert len({server.shard_of(uid) for uid in trace.user_ids}) == 1

    def test_keyword_variant_byte_identical(self, trace):
        sim_result = _run_simulator(trace, lambda uid: KeywordCache())
        srv_result, _ = _run_server(trace, lambda uid: KeywordCache())
        self.assert_identical_streams(sim_result, srv_result, len(trace))

    def test_parity_independent_of_shard_count(self, trace):
        encoder = make_tiny_encoder()
        baseline, _ = _run_server(trace, _meancache_factory(encoder), n_shards=1)
        resharded, _ = _run_server(trace, _meancache_factory(encoder), n_shards=7)
        assert _decision_stream(baseline.outcomes) == _decision_stream(
            resharded.outcomes
        )

    def test_precomputed_embeddings_preserve_decisions(self, trace):
        """The cross-user batched embed changes grouping, not decisions.

        One encoder call per flush slices rows per cache, so the GEMM batch
        composition differs from per-cache encoding — similarities may move
        at float rounding scale, decisions must not.
        """
        encoder = make_tiny_encoder()
        plain, _ = _run_server(trace, _meancache_factory(encoder))
        fused, server = _run_server(
            trace, _meancache_factory(encoder), encoder=encoder
        )
        plain_stream = _decision_stream(plain.outcomes)
        fused_stream = _decision_stream(fused.outcomes)
        assert fused_stream["hits"] == plain_stream["hits"]
        assert fused_stream["responses"] == plain_stream["responses"]
        assert fused_stream["matches"] == plain_stream["matches"]
        for fused_hex, plain_hex in zip(fused_stream["sims"], plain_stream["sims"]):
            assert float.fromhex(fused_hex) == pytest.approx(
                float.fromhex(plain_hex), abs=1e-9
            )

    def test_golden_fixture_pin(self):
        """Both frontends still reproduce the committed decision stream."""
        golden = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
        assert golden["trace_seed"] == TRACE_SEED
        current = collect_parity_summary()
        assert current == golden


if __name__ == "__main__":
    FIXTURE_PATH.write_text(
        json.dumps(collect_parity_summary(), indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {FIXTURE_PATH}")
