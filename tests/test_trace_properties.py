"""Property-based suite: trace import/export round-trips replay identically.

The replay loop (production logs -> :func:`trace_from_logs` -> fleet) is
only trustworthy if serialization is lossless where it matters: for any
generated workload, exporting through the foreign log schema and importing
back must hand :class:`FleetSimulator` a stream that produces the *same
outcomes* — hit for hit, response for response, dollar for dollar.

Hypothesis drives the workload shape (fleet size, duplicate/follow-up
mixes, arrival rate, seed) with ``derandomize=True`` so CI is stable; the
replay-equality property runs on the keyword cache (encoder-free, so the
property loop stays tier-1 fast) plus one explicit MeanCache case on the
tiny encoder.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tiny_encoder

from repro.baselines.keyword_cache import KeywordCache
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving import (
    FleetConfig,
    FleetSimulator,
    Trace,
    WorkloadConfig,
    WorkloadGenerator,
    trace_from_logs,
    trace_to_logs,
)

workload_configs = st.builds(
    WorkloadConfig,
    n_users=st.integers(min_value=1, max_value=4),
    queries_per_user=st.integers(min_value=1, max_value=8),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.9),
    followup_rate=st.floats(min_value=0.0, max_value=0.9),
    arrival_rate_qps=st.floats(min_value=0.05, max_value=2.0),
)
seeds = st.integers(min_value=0, max_value=10_000)


def _generate(config: WorkloadConfig, seed: int) -> Trace:
    return WorkloadGenerator(config, seed=seed).generate()


def _replay(trace: Trace, cache_factory) -> tuple:
    """Replay ``trace`` and distil the outcome sequence to comparable data."""
    fleet = FleetSimulator(
        cache_factory=cache_factory,
        service=SimulatedLLMService(LLMServiceConfig(seed=0)),
        config=FleetConfig(),
    )
    result = fleet.run(trace, collect_outcomes=True)
    return tuple(
        (
            o.event.user_id,
            o.event.query,
            o.hit,
            o.response,
            round(o.cost_usd, 12),
            round(o.llm_latency_s, 12),
        )
        for o in result.outcomes
    )


@settings(max_examples=25, deadline=None, derandomize=True)
@given(config=workload_configs, seed=seeds)
def test_trace_json_round_trip_is_lossless(config, seed):
    trace = _generate(config, seed)
    through_json = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
    assert through_json.to_dict() == trace.to_dict()


@settings(max_examples=25, deadline=None, derandomize=True)
@given(config=workload_configs, seed=seeds)
def test_log_round_trip_preserves_replayable_fields(config, seed):
    trace = _generate(config, seed)
    back = trace_from_logs(trace_to_logs(trace), normalize_time=False)
    assert len(back) == len(trace)
    for before, after in zip(trace.events, back.events):
        assert (after.time_s, after.user_id, after.query) == (
            before.time_s,
            before.user_id,
            before.query,
        )
        assert after.context == before.context
        assert after.intent_key == before.intent_key


@settings(max_examples=15, deadline=None, derandomize=True)
@given(config=workload_configs, seed=seeds)
def test_log_round_trip_replays_to_identical_outcomes(config, seed):
    """Trace -> logs -> import -> replay == direct replay, draw for draw."""
    trace = _generate(config, seed)
    imported = trace_from_logs(trace_to_logs(trace), normalize_time=False)
    direct = _replay(trace, lambda uid: KeywordCache())
    replayed = _replay(imported, lambda uid: KeywordCache())
    assert replayed == direct


@settings(max_examples=15, deadline=None, derandomize=True)
@given(config=workload_configs, seed=seeds)
def test_time_normalization_preserves_arrival_deltas(config, seed):
    trace = _generate(config, seed)
    shifted = [
        {"timestamp": e.time_s + 1_700_000_000.0, "user": e.user_id, "prompt": e.query}
        for e in trace.events
    ]
    imported = trace_from_logs(shifted)
    assert imported.events[0].time_s == 0.0
    deltas = [
        b.time_s - a.time_s for a, b in zip(trace.events, trace.events[1:])
    ]
    imported_deltas = [
        b.time_s - a.time_s for a, b in zip(imported.events, imported.events[1:])
    ]
    assert imported_deltas == pytest.approx(deltas, abs=1e-6)


def test_log_round_trip_replays_identically_on_meancache():
    """One semantic-cache spot check of the keyword-cache property."""
    encoder = make_tiny_encoder()
    trace = _generate(
        WorkloadConfig(n_users=3, queries_per_user=10, duplicate_rate=0.5), seed=11
    )
    imported = trace_from_logs(trace_to_logs(trace), normalize_time=False)
    factory = lambda uid: MeanCache(
        encoder, MeanCacheConfig(similarity_threshold=0.7)
    )
    assert _replay(imported, factory) == _replay(trace, factory)
