"""Thread-hammer tests for the serving tier's concurrency contract.

No :class:`~repro.index.VectorIndex` backend is thread-safe: the flat scan
reuses per-index scratch buffers, IVF rewires postings in place, and
eviction compacts entry layouts — concurrent calls corrupt them.  The fix
lives in the **server adapter layer**, not in FlatIndex: every cache hangs
off exactly one shard of :class:`~repro.serving.server.CacheServer` and all
access to it runs under that shard's lock.  Putting a lock inside FlatIndex
instead would tax the single-threaded simulator and benchmarks on every
call, serialize at the wrong granularity (per index, when the unit of
consistency is the cache: entries dict + index + stats must move together),
and still leave the cache-level compound operations racy.

These tests hammer a live server from real client threads — interleaved
lookup, insert (miss→enrol) and eviction churn — and assert:

* every submitted request resolves exactly once (none lost, none duplicated);
* cache/index invariants hold afterwards (index ids == entry ids, sizes
  match, capacity respected);
* results match a sequential oracle replay of the same traffic;
* the server never lets two threads into one cache at once (probed with an
  instrumented cache that detects re-entrancy).
"""

from __future__ import annotations

import threading

import pytest

from conftest import make_tiny_encoder
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving.server import CacheServer, ServerConfig

pytestmark = pytest.mark.serving

N_THREADS = 6
REQUESTS_PER_THREAD = 20


def _fast_service():
    """A thread-safe service (latency is modelled, never slept)."""
    return SimulatedLLMService(LLMServiceConfig(seed=0), thread_safe=True)


def _server(factory, **config_kwargs):
    config = ServerConfig(
        n_shards=config_kwargs.pop("n_shards", 4),
        max_batch_size=config_kwargs.pop("max_batch_size", 16),
        max_batch_wait_s=config_kwargs.pop("max_batch_wait_s", 0.002),
        **config_kwargs,
    )
    return CacheServer(factory, service=_fast_service(), config=config)


def _hammer(server, queries_of_thread):
    """Drive the server from N client threads; returns responses and errors."""
    responses = {}
    errors = []

    def client(tid):
        try:
            for query in queries_of_thread[tid]:
                future = server.submit_threadsafe(f"user-{tid}", query)
                responses[(tid, query)] = future.result(timeout=60)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append((tid, exc))

    threads = [
        threading.Thread(target=client, args=(tid,))
        for tid in range(len(queries_of_thread))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, errors


def assert_cache_invariants(cache):
    """Entries dict, vector index and capacity agree with each other."""
    entry_ids = sorted(cache._entries.keys())
    index_ids = sorted(cache.index.ids)
    assert index_ids == entry_ids, "index ids diverged from entry ids"
    assert len(cache.index) == len(cache._entries)
    assert len(cache) <= cache.config.max_entries
    for entry_id, entry in cache._entries.items():
        assert entry.entry_id == entry_id


class TestThreadedHammer:
    def test_per_user_caches_miss_then_hit_rounds(self):
        """Two hammer rounds match the sequential oracle exactly.

        Round 1 offers each thread distinct never-seen queries: every
        request must miss, pay the (zero-latency) LLM and enrol.  Round 2
        re-submits the identical queries: every request must hit its own
        round-1 enrolment.  That is precisely what a sequential replay of
        the same per-user streams produces, so any lost/duplicated/crossed
        request under concurrency breaks the assertions.
        """
        encoder = make_tiny_encoder()
        caches = {}

        def factory(user_id):
            # τ high enough that only (near-)exact duplicates hit: round 1's
            # distinct queries all miss, round 2's replays all hit.
            caches[user_id] = MeanCache(
                encoder, MeanCacheConfig(similarity_threshold=0.999)
            )
            return caches[user_id]

        queries_of_thread = {
            tid: [
                f"thread {tid} unique question number {i} about subject {tid}-{i}"
                for i in range(REQUESTS_PER_THREAD)
            ]
            for tid in range(N_THREADS)
        }
        server = _server(factory)
        server.start()
        try:
            first, errors = _hammer(server, queries_of_thread)
            assert not errors
            second, errors = _hammer(server, queries_of_thread)
            assert not errors
        finally:
            server.stop()

        n_requests = N_THREADS * REQUESTS_PER_THREAD
        assert len(first) == n_requests and len(second) == n_requests
        assert all(not r.hit for r in first.values()), "round 1 must be all misses"
        assert all(r.hit for r in second.values()), "round 2 must be all hits"
        # Round-2 hits serve exactly the response round 1 enrolled.
        for key, response in second.items():
            assert response.response == first[key].response
        # Sequential oracle on cache state: each user's cache holds exactly
        # its own round-1 misses, once each.
        assert set(caches) == {f"user-{tid}" for tid in range(N_THREADS)}
        for tid in range(N_THREADS):
            cache = caches[f"user-{tid}"]
            assert_cache_invariants(cache)
            assert sorted(e.query for e in cache.entries) == sorted(
                queries_of_thread[tid]
            )
        # Accounting survived the interleaving (thread-safe service stats).
        assert server.service.stats.n_requests == n_requests
        assert server.metrics.completed == 2 * n_requests
        assert server.metrics.hits == n_requests

    def test_shared_central_cache_under_contention(self):
        """All threads hammer ONE cache object; per-shard lock keeps it sane."""
        encoder = make_tiny_encoder()
        central = MeanCache(encoder, MeanCacheConfig(similarity_threshold=0.8))
        queries_of_thread = {
            tid: [
                f"central topic {tid}-{i} with distinctive wording {tid * 100 + i}"
                for i in range(REQUESTS_PER_THREAD)
            ]
            for tid in range(N_THREADS)
        }
        server = _server(lambda uid: central)
        server.start()
        try:
            responses, errors = _hammer(server, queries_of_thread)
        finally:
            server.stop()
        assert not errors
        assert len(responses) == N_THREADS * REQUESTS_PER_THREAD
        assert_cache_invariants(central)
        # Every miss enrolled exactly once; hits served an enrolled entry.
        misses = [r for r in responses.values() if not r.hit]
        assert len(central) == len(misses)
        enrolled = {e.query for e in central.entries}
        for response in responses.values():
            if not response.hit:
                assert response.query in enrolled
        # The shared object was pinned to one shard (identity collapse).
        assert len({server.shard_of(f"user-{t}") for t in range(N_THREADS)}) == 1

    def test_eviction_churn_keeps_invariants(self):
        """A capacity-8 shared cache under 120 concurrent inserts stays sane."""
        encoder = make_tiny_encoder()
        central = MeanCache(
            encoder,
            MeanCacheConfig(similarity_threshold=0.95, max_entries=8),
        )
        queries_of_thread = {
            tid: [
                f"churn workload item {tid}-{i} body {i * 7 + tid}"
                for i in range(REQUESTS_PER_THREAD)
            ]
            for tid in range(N_THREADS)
        }
        server = _server(lambda uid: central, max_batch_size=8)
        server.start()
        try:
            responses, errors = _hammer(server, queries_of_thread)
        finally:
            server.stop()
        assert not errors
        assert len(responses) == N_THREADS * REQUESTS_PER_THREAD
        assert_cache_invariants(central)
        assert len(central) <= 8

    def test_server_never_overlaps_access_to_one_cache(self):
        """Re-entrancy probe: two threads never run one cache concurrently.

        The instrumented cache sleeps inside ``lookup_batch`` while tracking
        concurrent entries; without the per-shard lock, 6 client threads
        with sub-millisecond batching would overlap with near certainty.
        """
        import time as _time

        encoder = make_tiny_encoder()

        class ProbedCache(MeanCache):
            overlaps = 0
            _inside = 0
            _guard = threading.Lock()

            def lookup_batch(self, queries, contexts=None, embeddings=None):
                cls = ProbedCache
                with cls._guard:
                    cls._inside += 1
                    if cls._inside > 1:
                        cls.overlaps += 1
                _time.sleep(0.002)
                try:
                    return super().lookup_batch(
                        queries, contexts=contexts, embeddings=embeddings
                    )
                finally:
                    with cls._guard:
                        cls._inside -= 1

        central = ProbedCache(encoder, MeanCacheConfig(similarity_threshold=0.8))
        queries_of_thread = {
            tid: [f"probe {tid}-{i}" for i in range(10)] for tid in range(N_THREADS)
        }
        server = _server(lambda uid: central, max_batch_size=4, max_batch_wait_s=0.0005)
        server.start()
        try:
            _, errors = _hammer(server, queries_of_thread)
        finally:
            server.stop()
        assert not errors
        assert ProbedCache.overlaps == 0


class TestHammerUnderRuntimeChecker:
    """The miss-then-hit hammer re-run with the lock tracker active.

    ``REPRO_DEBUG_CONCURRENCY=1`` turns the shard/registry locks into
    :class:`~repro.analysis.runtime.TrackedLock` instances (lock-order
    cycle detection) and instruments every registered cache's index with
    ownership guards — a mutation outside the owning shard lock raises
    instead of corrupting state.  CI re-runs the whole serving suite under
    the flag; this test pins the instrumented path into tier-1 regardless
    of environment.
    """

    def test_miss_then_hit_rounds_with_tracker(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CONCURRENCY", "1")
        from repro.analysis.runtime import TrackedLock, reset_registry

        reset_registry()
        try:
            encoder = make_tiny_encoder()
            caches = {}

            def factory(user_id):
                return caches.setdefault(
                    user_id,
                    MeanCache(encoder, MeanCacheConfig(similarity_threshold=0.999)),
                )

            queries_of_thread = {
                tid: [f"tracked thread {tid} question number {i}" for i in range(8)]
                for tid in range(4)
            }
            server = _server(factory)
            assert isinstance(server._shards[0].lock, TrackedLock)
            server.start()
            try:
                first, errors = _hammer(server, queries_of_thread)
                assert not errors, errors
                second, errors = _hammer(server, queries_of_thread)
                assert not errors, errors
            finally:
                server.stop()
            assert all(not r.hit for r in first.values())
            assert all(r.hit for r in second.values())
            for cache in caches.values():
                assert_cache_invariants(cache)
        finally:
            reset_registry()


@pytest.mark.slow
class TestSlowHammer:
    """Heavier wall-clock hammers, excluded from tier-1 (run via ``-m slow``)."""

    def test_large_scale_hammer_with_backpressure(self):
        """16 threads, tiny queue: some requests shed, none lost or corrupted.

        Shed requests must surface as the typed BackpressureError at submit
        time; everything admitted must resolve; cache invariants must hold
        through the contention; accounting must balance exactly.
        """
        from repro.serving.server import BackpressureError

        encoder = make_tiny_encoder()
        caches = {}

        def factory(user_id):
            caches[user_id] = MeanCache(
                encoder, MeanCacheConfig(similarity_threshold=0.999, max_entries=32)
            )
            return caches[user_id]

        server = _server(
            factory,
            n_shards=8,
            max_queue_depth=8,  # deliberately tiny: force shedding
            max_batch_size=8,
            max_batch_wait_s=0.0005,
        )
        server.start()
        served = []
        shed_count = [0]
        errors = []
        n_threads, per_thread = 16, 40

        def client(tid):
            try:
                for i in range(per_thread):
                    try:
                        future = server.submit_threadsafe(
                            f"user-{tid}", f"slow hammer {tid} item {i}"
                        )
                        served.append(future.result(timeout=60))
                    except BackpressureError as exc:
                        assert exc.limit == 8 and exc.queue_depth >= 8
                        shed_count[0] += 1
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((tid, exc))

        threads = [
            threading.Thread(target=client, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()

        assert not errors
        offered = n_threads * per_thread
        assert len(served) + shed_count[0] == offered
        assert server.metrics.completed == len(served)
        assert server.metrics.shed == shed_count[0]
        assert server.metrics.offered == offered
        for cache in caches.values():
            assert_cache_invariants(cache)
        # The admission bound was honoured at every sampled depth.
        assert server.metrics.max_depth_seen <= 8
