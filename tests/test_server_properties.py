"""Property-based tests for the server's micro-batcher + admission queue.

:class:`~repro.serving.server.MicroBatcher` is deliberately a pure core —
time flows in through arguments, no threads, no event loop — precisely so
Hypothesis can drive it through arbitrary arrival/flush interleavings and
check the batching invariants the live server depends on:

* **conservation** — every admitted request is drained exactly once; no
  request is lost, duplicated, or reordered;
* **FIFO** — drains preserve global offer order (hence per-user order);
* **bounded admission** — pending depth never exceeds ``max_queue_depth``;
  the over-bound offer raises the *typed* :class:`BackpressureError` (with
  the depth and limit attached) and leaves the queue untouched;
* **flush policy** — :meth:`due` fires iff the batch is full or the oldest
  pending request has aged past ``max_wait_s``, and :meth:`next_deadline`
  is exactly the oldest offer time plus the wait bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.server import BackpressureError, MicroBatcher

# One scripted step of an interleaving: offer request #n from a user, drain
# up to `limit` (None = everything), or advance the clock.
Offer = Tuple[str, str]  # ("offer", user_id)
Drain = Tuple[str, Union[int, None]]  # ("drain", limit)
Advance = Tuple[str, float]  # ("advance", dt)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(["u0", "u1", "u2", "u3"])),
        st.tuples(st.just("drain"), st.one_of(st.none(), st.integers(0, 8))),
        st.tuples(st.just("advance"), st.floats(0.0, 0.5, allow_nan=False)),
    ),
    min_size=1,
    max_size=60,
)

_configs = st.tuples(
    st.integers(1, 8),  # max_batch_size
    st.floats(0.0, 0.2, allow_nan=False),  # max_wait_s
    st.integers(1, 12),  # max_queue_depth
)


@dataclass(frozen=True)
class _Request:
    serial: int
    user_id: str


class TestMicroBatcherProperties:
    @given(ops=_operations, config=_configs)
    @settings(max_examples=200, deadline=None)
    def test_conservation_fifo_and_bound(self, ops, config):
        """The model: an ideal FIFO queue with a hard depth bound."""
        max_batch, max_wait, max_depth = config
        batcher = MicroBatcher(max_batch, max_wait, max_depth)
        model: List[_Request] = []  # pending, oldest first
        drained_real: List[_Request] = []
        drained_model: List[_Request] = []
        now = 0.0
        serial = 0
        for op, arg in ops:
            if op == "offer":
                request = _Request(serial, arg)
                serial += 1
                if len(model) >= max_depth:
                    with pytest.raises(BackpressureError) as exc_info:
                        batcher.offer(request, now=now)
                    # The typed error carries the shed decision's context...
                    assert exc_info.value.queue_depth == len(model)
                    assert exc_info.value.limit == max_depth
                    # ...and the shed request was never stored.
                else:
                    batcher.offer(request, now=now)
                    model.append(request)
            elif op == "drain":
                batch = batcher.drain(limit=arg)
                take = len(model) if arg is None else min(arg, len(model))
                drained_model.extend(model[:take])
                del model[:take]
                drained_real.extend(batch)
            else:
                now += arg
            # Invariants that hold after every step:
            assert batcher.depth == len(model) <= max_depth
            assert drained_real == drained_model  # FIFO, nothing lost/dup'd
        # Full conservation at the end: drain the rest and account for all.
        remainder = batcher.drain(limit=None)
        assert remainder == model
        assert batcher.admitted == len(drained_real) + len(remainder)
        assert batcher.admitted + batcher.shed == serial
        seen = [r.serial for r in drained_real + remainder]
        assert len(seen) == len(set(seen))  # no duplicates anywhere

    @given(ops=_operations, config=_configs)
    @settings(max_examples=200, deadline=None)
    def test_per_user_fifo(self, ops, config):
        """Per-user arrival order survives any drain interleaving."""
        max_batch, max_wait, max_depth = config
        batcher = MicroBatcher(max_batch, max_wait, max_depth)
        offered = {}
        drained = {}
        now = 0.0
        serial = 0
        for op, arg in ops:
            if op == "offer":
                request = _Request(serial, arg)
                serial += 1
                try:
                    batcher.offer(request, now=now)
                    offered.setdefault(arg, []).append(request)
                except BackpressureError:
                    pass
            elif op == "drain":
                for request in batcher.drain(limit=arg):
                    drained.setdefault(request.user_id, []).append(request)
            else:
                now += arg
        for request in batcher.drain(limit=None):
            drained.setdefault(request.user_id, []).append(request)
        assert drained == offered

    @given(
        offers=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=10),
        probe_dt=st.floats(0.0, 1.0, allow_nan=False),
        config=_configs,
    )
    @settings(max_examples=200, deadline=None)
    def test_due_iff_full_or_aged(self, offers, probe_dt, config):
        max_batch, max_wait, max_depth = config
        batcher = MicroBatcher(max_batch, max_wait, max_depth)
        admitted_times = []
        now = 0.0
        for dt in offers:
            now += dt
            try:
                batcher.offer(object(), now=now)
                admitted_times.append(now)
            except BackpressureError:
                pass
        probe = now + probe_dt
        expected = len(admitted_times) >= max_batch or (
            bool(admitted_times) and probe - admitted_times[0] >= max_wait
        )
        assert batcher.due(probe) == expected
        if admitted_times:
            assert batcher.next_deadline() == pytest.approx(
                admitted_times[0] + max_wait
            )
            assert batcher.oldest_wait(probe) == pytest.approx(
                max(0.0, probe - admitted_times[0])
            )
        else:
            assert batcher.next_deadline() is None
            assert batcher.oldest_wait(probe) == 0.0
            assert not batcher.due(probe)

    def test_empty_batcher_is_never_due(self):
        batcher = MicroBatcher(4, 0.0, 8)
        assert not batcher.due(1e9)
        assert batcher.drain(limit=None) == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(0, 0.1, 8)
        with pytest.raises(ValueError):
            MicroBatcher(4, -0.1, 8)
        with pytest.raises(ValueError):
            MicroBatcher(4, 0.1, 0)
