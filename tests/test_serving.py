"""Tests for the serving subsystem (workload generation, fleet simulation, replay)."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tiny_encoder

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.baselines.keyword_cache import KeywordCache
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.experiments.fleet_bench import run_fleet_bench
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving import (
    FleetConfig,
    FleetSimulator,
    Trace,
    WorkloadConfig,
    WorkloadEvent,
    WorkloadGenerator,
)


@pytest.fixture(scope="module")
def small_trace():
    config = WorkloadConfig(
        n_users=6, queries_per_user=12, duplicate_rate=0.4, followup_rate=0.3
    )
    return WorkloadGenerator(config, seed=42).generate()


def _meancache_factory(encoder, threshold=0.8):
    return lambda user_id: MeanCache(
        encoder, MeanCacheConfig(similarity_threshold=threshold)
    )


class TestWorkloadGenerator:
    def test_trace_shape_and_order(self, small_trace):
        assert len(small_trace) == 6 * 12
        assert small_trace.n_users == 6
        times = [e.time_s for e in small_trace]
        assert times == sorted(times)
        assert len(small_trace.user_ids) == 6

    def test_deterministic_generation(self, small_trace):
        config = WorkloadConfig(
            n_users=6, queries_per_user=12, duplicate_rate=0.4, followup_rate=0.3
        )
        again = WorkloadGenerator(config, seed=42).generate()
        assert again.to_dict() == small_trace.to_dict()

    def test_per_user_streams_independent_of_fleet_size(self):
        """User k's stream must not change when more users join the fleet."""
        small = WorkloadGenerator(WorkloadConfig(n_users=3, queries_per_user=8), seed=7)
        large = WorkloadGenerator(WorkloadConfig(n_users=10, queries_per_user=8), seed=7)
        uid = small.user_id(2)
        events_small = small.generate().events_for_user(uid)
        events_large = large.generate().events_for_user(uid)
        assert [e.to_dict() for e in events_small] == [e.to_dict() for e in events_large]

    def test_duplicate_and_followup_traffic_present(self, small_trace):
        kinds = {e.kind for e in small_trace}
        assert kinds == {"unique", "duplicate"}
        followups = [e for e in small_trace if e.is_followup]
        assert followups, "expected some conversational follow-ups"
        for event in followups:
            assert event.context  # follow-ups carry their chain
            assert len(event.context) <= 3

    def test_duplicates_reask_past_intents(self, small_trace):
        for uid in small_trace.user_ids:
            seen = set()
            for event in small_trace.events_for_user(uid):
                if event.kind == "duplicate":
                    assert event.intent_key in seen
                seen.add(event.intent_key)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_users=0)
        with pytest.raises(ValueError):
            WorkloadConfig(duplicate_rate=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate_qps=0.0)

    def test_trace_json_roundtrip(self, small_trace, tmp_path):
        path = small_trace.save(tmp_path / "trace.json")
        loaded = Trace.load(path)
        assert loaded.to_dict() == small_trace.to_dict()
        assert loaded.duration_s == small_trace.duration_s


class TestFleetSimulator:
    def test_per_user_and_fleet_aggregation(self, small_trace, tiny_encoder):
        service = SimulatedLLMService(LLMServiceConfig(seed=0))
        simulator = FleetSimulator(_meancache_factory(tiny_encoder), service)
        result = simulator.run(small_trace)
        assert result.n_events == len(small_trace)
        assert set(result.per_user) == set(small_trace.user_ids)
        assert result.lookups == len(small_trace)
        assert result.hits == sum(u.hits for u in result.per_user.values())
        assert 0.0 <= result.hit_rate < 1.0
        assert result.total_cost_usd > 0
        assert result.throughput_lookups_per_s > 0
        assert result.virtual_duration_s >= small_trace.duration_s
        # Misses (and only misses) reached the shared service.
        assert service.stats.n_requests == result.lookups - result.hits

    def test_replay_is_deterministic(self, small_trace, tiny_encoder):
        def run_once():
            simulator = FleetSimulator(
                _meancache_factory(tiny_encoder),
                SimulatedLLMService(LLMServiceConfig(seed=0)),
            )
            return simulator.run(small_trace)

        a, b = run_once(), run_once()
        assert a.hit_rate == b.hit_rate
        assert a.total_cost_usd == b.total_cost_usd
        for uid in a.per_user:
            assert a.per_user[uid].llm_latency_s == b.per_user[uid].llm_latency_s
            assert a.per_user[uid].hits == b.per_user[uid].hits

    def test_batch_window_does_not_change_classification(self, small_trace, tiny_encoder):
        """Batched scheduling is an amortization, not a semantics change.

        With enrolment off, a lookup is pure classification and must be
        identical under any window width.  (With enrolment *on*, windowing
        legitimately delays intra-window enrolment — a probe cannot hit an
        entry enrolled by an earlier probe of the same window — so decisions
        there are only window-invariant when no such pair occurs.)
        """

        def run_with_window(width):
            simulator = FleetSimulator(
                _meancache_factory(tiny_encoder),
                SimulatedLLMService(LLMServiceConfig(seed=0)),
                FleetConfig(batch_window_s=width, enroll_on_miss=False),
            )
            return simulator.run(small_trace, collect_outcomes=True)

        tight = run_with_window(0.0)
        wide = run_with_window(5.0)
        # Compare per-event hit decisions keyed by (user, time): grouping
        # differs, decisions must not (per-user caches, hashed jitter).
        key = lambda o: (o.event.user_id, o.event.time_s)
        tight_hits = {key(o): o.hit for o in tight.outcomes}
        wide_hits = {key(o): o.hit for o in wide.outcomes}
        assert tight_hits == wide_hits
        assert tight.total_cost_usd == pytest.approx(wide.total_cost_usd)

    def test_enroll_on_miss_populates_user_caches(self, small_trace, tiny_encoder):
        caches = {}

        def factory(user_id):
            caches[user_id] = MeanCache(
                tiny_encoder, MeanCacheConfig(similarity_threshold=0.8)
            )
            return caches[user_id]

        simulator = FleetSimulator(factory, SimulatedLLMService(LLMServiceConfig(seed=0)))
        result = simulator.run(small_trace)
        assert set(caches) == set(small_trace.user_ids)
        for uid, cache in caches.items():
            stats = result.per_user[uid]
            assert len(cache) == stats.llm_requests  # every miss was enrolled

        no_enroll = FleetSimulator(
            _meancache_factory(tiny_encoder),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(enroll_on_miss=False),
        )
        empty_result = no_enroll.run(small_trace)
        assert empty_result.hits == 0  # nothing ever cached

    def test_enrolment_reuses_lookup_embeddings(self):
        """A miss's enrolment reuses the Embed stage's output — no re-encode."""

        class CountingEncoder:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def encode(self, texts, compress=True):
                self.calls += 1
                return self.inner.encode(texts, compress=compress)

        encoder = CountingEncoder(make_tiny_encoder())
        cache = MeanCache(encoder, MeanCacheConfig(similarity_threshold=0.8))
        decision = cache.lookup("how can i sort a list in python")
        assert not decision.hit and decision.embedding is not None
        assert encoder.calls == 1
        cache.pipeline.enroll.enroll(
            decision.query, "use sorted()", embedding=decision.embedding
        )
        assert encoder.calls == 1  # enrolment did not re-encode
        assert len(cache) == 1
        assert cache.lookup("how can i sort a list in python").hit

    def test_keyword_variant_rides_along(self, small_trace):
        simulator = FleetSimulator(
            lambda uid: KeywordCache(), SimulatedLLMService(LLMServiceConfig(seed=0))
        )
        result = simulator.run(small_trace)
        assert result.lookups == len(small_trace)
        assert 0.0 <= result.hit_rate <= 1.0

    def test_shared_central_cache_variant(self, small_trace, tiny_encoder):
        """One GPTCache instance for the whole fleet (central deployment)."""
        central = GPTCache(tiny_encoder, GPTCacheConfig(similarity_threshold=0.8))
        simulator = FleetSimulator(
            lambda uid: central, SimulatedLLMService(LLMServiceConfig(seed=0))
        )
        result = simulator.run(small_trace)
        assert result.lookups == len(small_trace)
        assert len(central) == result.lookups - result.hits
        # Central enrolment keeps per-user attribution (who asked what).
        assert set(central.users()) == {
            uid for uid, stats in result.per_user.items() if stats.llm_requests
        }

    def test_no_causality_inversion_on_shared_cache(self, tiny_encoder):
        """An event must never hit an entry enrolled by a later arrival.

        All of a window's lookups complete before any of its misses enrol,
        so B's t=0.02 probe cannot match the entry A enrols at t=0.24 even
        though both land in the same batch window of a shared cache.
        """
        q = "how can i sort a list in python"
        events = [
            WorkloadEvent(time_s=0.01, user_id="user-a", query="plan a trip to japan"),
            WorkloadEvent(time_s=0.02, user_id="user-b", query=q),
            WorkloadEvent(time_s=0.24, user_id="user-a", query=q),
        ]
        trace = Trace(events=events, n_users=2)
        central = GPTCache(tiny_encoder, GPTCacheConfig(similarity_threshold=0.8))
        simulator = FleetSimulator(
            lambda uid: central,
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(batch_window_s=0.25),
        )
        result = simulator.run(trace, collect_outcomes=True)
        assert [o.hit for o in result.outcomes] == [False, False, False]
        assert len(central) == 3  # every miss enrolled, duplicates included


class TestFleetBench:
    def test_small_fleet_bench_points(self):
        result = run_fleet_bench(
            user_counts=(3, 5),
            queries_per_user=4,
            encoder=make_tiny_encoder(),
            encoder_name="tiny",
            seed=0,
        )
        assert [p.n_users for p in result.points] == [3, 5]
        for point in result.points:
            assert point.n_lookups == point.n_users * 4
            assert point.throughput_lookups_per_s > 0
        assert "Fleet serving benchmark" in result.format()
        payload = result.to_dict()
        assert payload["encoder_name"] == "tiny"
        assert len(payload["points"]) == 2
        with pytest.raises(KeyError):
            result.point(99)
