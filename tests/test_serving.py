"""Tests for the serving subsystem (workload generation, fleet simulation, replay)."""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from conftest import make_tiny_encoder

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.baselines.keyword_cache import KeywordCache
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.experiments.fleet_bench import run_drift_adaptation_bench, run_fleet_bench
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.serving import (
    ArrivalSchedule,
    DriftPhase,
    FleetConfig,
    FleetSimulator,
    Trace,
    WorkloadConfig,
    WorkloadEvent,
    WorkloadGenerator,
    apply_arrival_schedule,
)


@pytest.fixture(scope="module")
def small_trace():
    config = WorkloadConfig(
        n_users=6, queries_per_user=12, duplicate_rate=0.4, followup_rate=0.3
    )
    return WorkloadGenerator(config, seed=42).generate()


def _meancache_factory(encoder, threshold=0.8):
    return lambda user_id: MeanCache(
        encoder, MeanCacheConfig(similarity_threshold=threshold)
    )


class TestWorkloadGenerator:
    def test_trace_shape_and_order(self, small_trace):
        assert len(small_trace) == 6 * 12
        assert small_trace.n_users == 6
        times = [e.time_s for e in small_trace]
        assert times == sorted(times)
        assert len(small_trace.user_ids) == 6

    def test_deterministic_generation(self, small_trace):
        config = WorkloadConfig(
            n_users=6, queries_per_user=12, duplicate_rate=0.4, followup_rate=0.3
        )
        again = WorkloadGenerator(config, seed=42).generate()
        assert again.to_dict() == small_trace.to_dict()

    def test_per_user_streams_independent_of_fleet_size(self):
        """User k's stream must not change when more users join the fleet."""
        small = WorkloadGenerator(WorkloadConfig(n_users=3, queries_per_user=8), seed=7)
        large = WorkloadGenerator(WorkloadConfig(n_users=10, queries_per_user=8), seed=7)
        uid = small.user_id(2)
        events_small = small.generate().events_for_user(uid)
        events_large = large.generate().events_for_user(uid)
        assert [e.to_dict() for e in events_small] == [e.to_dict() for e in events_large]

    def test_duplicate_and_followup_traffic_present(self, small_trace):
        kinds = {e.kind for e in small_trace}
        assert kinds == {"unique", "duplicate"}
        followups = [e for e in small_trace if e.is_followup]
        assert followups, "expected some conversational follow-ups"
        for event in followups:
            assert event.context  # follow-ups carry their chain
            assert len(event.context) <= 3

    def test_duplicates_reask_past_intents(self, small_trace):
        for uid in small_trace.user_ids:
            seen = set()
            for event in small_trace.events_for_user(uid):
                if event.kind == "duplicate":
                    assert event.intent_key in seen
                seen.add(event.intent_key)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_users=0)
        with pytest.raises(ValueError):
            WorkloadConfig(duplicate_rate=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate_qps=0.0)

    def test_trace_json_roundtrip(self, small_trace, tmp_path):
        path = small_trace.save(tmp_path / "trace.json")
        loaded = Trace.load(path)
        assert loaded.to_dict() == small_trace.to_dict()
        assert loaded.duration_s == small_trace.duration_s


def _trace_digest(trace: Trace) -> str:
    return hashlib.sha256(
        json.dumps(trace.to_dict(), sort_keys=True).encode()
    ).hexdigest()


class TestArrivalSchedules:
    #: sha256 of the canonical seed-0 / seed-42 stationary traces, pinned
    #: *before* the arrival-schedule refactor.  If either digest moves, an
    #: extension has perturbed the per-user seeded draw sequence — the exact
    #: regression the schedule layer is designed (post-hoc time warping,
    #: zero RNG draws) to make structurally impossible.
    GOLDEN = {
        0: "0443ef85abce48b9f21fd8de67e26dd6e55353c0b4ab7d4a91c21d4baef220d2",
        42: "e55e6c6a0e82cabde20c5cfdd30c6720d46dc5b54cfcb8092f2f24000a0be53d",
    }
    GOLDEN_CONFIG = dict(
        n_users=4, queries_per_user=25, duplicate_rate=0.35, followup_rate=0.25
    )

    def test_stationary_stream_matches_pre_refactor_golden_digests(self):
        for seed, digest in self.GOLDEN.items():
            trace = WorkloadGenerator(
                WorkloadConfig(**self.GOLDEN_CONFIG), seed=seed
            ).generate()
            assert _trace_digest(trace) == digest, (
                f"seed {seed}: stationary workload no longer byte-identical "
                "to the pre-arrival-schedule generator"
            )

    def test_schedule_off_is_byte_identical(self):
        """No schedule configured -> trace identical, metadata untouched."""
        base = WorkloadGenerator(WorkloadConfig(**self.GOLDEN_CONFIG), seed=0)
        trace = base.generate()
        assert "arrival_schedule" not in trace.metadata
        assert _trace_digest(trace) == self.GOLDEN[0]

    def test_constant_schedule_is_identity_on_times(self):
        trace = WorkloadGenerator(WorkloadConfig(**self.GOLDEN_CONFIG), seed=0).generate()
        warped = apply_arrival_schedule(trace, ArrivalSchedule(kind="constant"))
        assert [e.time_s for e in warped] == pytest.approx(
            [e.time_s for e in trace], abs=1e-9
        )

    def test_warp_preserves_contents_and_order(self):
        trace = WorkloadGenerator(
            WorkloadConfig(n_users=5, queries_per_user=20), seed=3
        ).generate()
        schedule = ArrivalSchedule(kind="diurnal", period_s=60.0, amplitude=0.7)
        warped = apply_arrival_schedule(trace, schedule)
        assert len(warped) == len(trace)
        strip = lambda e: {k: v for k, v in e.to_dict().items() if k != "time_s"}
        # Content is untouched; only arrival times move.
        assert sorted(map(json.dumps, map(strip, warped))) == sorted(
            map(json.dumps, map(strip, trace))
        )
        times = [e.time_s for e in warped]
        assert times == sorted(times)
        assert warped.metadata["arrival_schedule"] == schedule.to_dict()

    def test_flash_crowd_compresses_the_burst_window(self):
        trace = WorkloadGenerator(
            WorkloadConfig(n_users=6, queries_per_user=25), seed=1
        ).generate()
        schedule = ArrivalSchedule(
            kind="flash_crowd",
            flash_at_s=20.0,
            flash_duration_s=30.0,
            flash_multiplier=10.0,
        )
        warped = apply_arrival_schedule(trace, schedule)
        # 10x the rate inside the flash window => arrivals pile into it.
        in_flash = sum(1 for e in warped if 20.0 <= e.time_s <= 50.0)
        in_same_band = sum(1 for e in trace if 20.0 <= e.time_s <= 50.0)
        assert in_flash > in_same_band
        assert warped.duration_s < trace.duration_s

    def test_generate_with_schedule_equals_post_hoc_warp(self):
        schedule = ArrivalSchedule(kind="diurnal", period_s=90.0, amplitude=0.5)
        config = WorkloadConfig(**self.GOLDEN_CONFIG)
        direct = WorkloadGenerator(
            WorkloadConfig(**self.GOLDEN_CONFIG, arrival_schedule=schedule), seed=0
        ).generate()
        post_hoc = apply_arrival_schedule(
            WorkloadGenerator(config, seed=0).generate(), schedule
        )
        assert direct.to_dict() == post_hoc.to_dict()

    def test_schedule_serialization_round_trip(self):
        schedule = ArrivalSchedule(
            kind="flash_crowd", flash_at_s=10.0, flash_duration_s=5.0, flash_multiplier=4.0
        )
        assert ArrivalSchedule.from_dict(schedule.to_dict()) == schedule

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(kind="lunar")
        with pytest.raises(ValueError):
            ArrivalSchedule(kind="diurnal", amplitude=1.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(kind="flash_crowd", flash_multiplier=0.5)
        with pytest.raises(ValueError):
            ArrivalSchedule(kind="diurnal", period_s=0.0)


class TestDriftScenarios:
    BASE = dict(n_users=5, queries_per_user=40, duplicate_rate=0.4, followup_rate=0.2)

    def test_no_drift_knobs_reproduce_stationary_stream(self):
        """Drift plumbing must not perturb the default RNG draw sequence."""
        plain = WorkloadGenerator(WorkloadConfig(**self.BASE), seed=9).generate()
        wired = WorkloadGenerator(
            WorkloadConfig(**self.BASE, drift_phases=(), churn_fraction=0.0),
            seed=9,
        ).generate()
        assert [e.to_dict() for e in wired] == [e.to_dict() for e in plain]

    def test_duplicate_rate_shift_applies_mid_stream(self):
        config = WorkloadConfig(
            **self.BASE,
            drift_phases=(DriftPhase(start_fraction=0.5, duplicate_rate=0.0),),
        )
        trace = WorkloadGenerator(config, seed=9).generate()
        for uid in trace.user_ids:
            events = trace.events_for_user(uid)
            second_half = events[len(events) // 2 :]
            assert all(e.kind == "unique" for e in second_half)

    def test_pre_changepoint_stream_unchanged(self):
        """Events before the first phase boundary are identical to the
        stationary stream (drift only consumes RNG from the boundary on)."""
        plain = WorkloadGenerator(WorkloadConfig(**self.BASE), seed=9).generate()
        drifted = WorkloadGenerator(
            WorkloadConfig(
                **self.BASE,
                drift_phases=(
                    DriftPhase(
                        start_fraction=0.5, redraw_domain_mix=True, paraphrase_bias=0.0
                    ),
                ),
            ),
            seed=9,
        ).generate()
        cut = self.BASE["queries_per_user"] // 2
        for uid in plain.user_ids:
            before_plain = [e.to_dict() for e in plain.events_for_user(uid)[:cut]]
            before_drift = [e.to_dict() for e in drifted.events_for_user(uid)[:cut]]
            assert before_plain == before_drift
        # ...and the redraw/bias change actually alters the second half.
        assert [e.to_dict() for e in plain] != [e.to_dict() for e in drifted]

    def test_paraphrase_bias_extremes_change_realisations(self):
        """Bias 1.0 always keeps the canonical noun; bias 0.0 never does."""
        from repro.datasets.corpus import Corpus

        corpus = Corpus(seed=0)
        intent = next(
            i for i in corpus.intents if len(corpus.object_synonyms(i)) > 1
        )
        synonyms = corpus.object_synonyms(intent)
        for trial in range(10):
            rng = np.random.default_rng(trial)
            assert intent.obj in corpus.realize(intent, rng=rng, object_bias=1.0)
            rng = np.random.default_rng(trial)
            text = corpus.realize(intent, rng=rng, object_bias=0.0)
            assert intent.obj == synonyms[0]
            assert any(s in text for s in synonyms[1:])
        # The workload threads the knob through to its realisations.
        biased = WorkloadGenerator(
            WorkloadConfig(**self.BASE, paraphrase_bias=0.0), seed=9
        ).generate()
        default = WorkloadGenerator(WorkloadConfig(**self.BASE), seed=9).generate()
        assert [e.query for e in biased] != [e.query for e in default]

    def test_churn_replaces_users_with_cold_start_successors(self):
        config = WorkloadConfig(
            **self.BASE, churn_fraction=1.0, churn_point=0.5
        )
        trace = WorkloadGenerator(config, seed=9).generate()
        originals = [u for u in trace.user_ids if not u.endswith("-r")]
        successors = [u for u in trace.user_ids if u.endswith("-r")]
        assert len(originals) == len(successors) == config.n_users
        cut = config.queries_per_user // 2
        for uid in originals:
            assert len(trace.events_for_user(uid)) == cut
            successor_events = trace.events_for_user(f"{uid}-r")
            assert len(successor_events) == config.queries_per_user - cut
            # Cold start: a successor's first event cannot re-ask history.
            assert successor_events[0].kind == "unique"
            # Successors inherit the original's timeline (later arrivals).
            assert successor_events[0].time_s > trace.events_for_user(uid)[-1].time_s

    def test_churn_fraction_zero_never_splits_users(self):
        trace = WorkloadGenerator(
            WorkloadConfig(**self.BASE, churn_fraction=0.0), seed=9
        ).generate()
        assert all(not u.endswith("-r") for u in trace.user_ids)

    def test_same_index_phases_merge_field_by_field(self):
        """Phases rounding to the same query index must all apply — an
        unset field keeps the earlier phase's override, as documented."""
        config = WorkloadConfig(
            **self.BASE,
            drift_phases=(
                DriftPhase(start_fraction=0.50, duplicate_rate=0.0),
                # 0.51 * 40 rounds to the same index 20 as 0.50 * 40.
                DriftPhase(start_fraction=0.51, paraphrase_bias=0.1),
            ),
        )
        trace = WorkloadGenerator(config, seed=9).generate()
        cut = self.BASE["queries_per_user"] // 2
        for uid in trace.user_ids:
            # The earlier phase's duplicate_rate=0.0 still applies.
            assert all(e.kind == "unique" for e in trace.events_for_user(uid)[cut:])

    def test_boundary_fraction_one_still_applies(self):
        """start_fraction=1.0 / churn_point=1.0 clamp to the final query
        instead of silently falling past the stream."""
        phased = WorkloadGenerator(
            WorkloadConfig(
                **self.BASE,
                drift_phases=(DriftPhase(start_fraction=1.0, duplicate_rate=0.0),),
            ),
            seed=9,
        ).generate()
        for uid in phased.user_ids:
            assert phased.events_for_user(uid)[-1].kind == "unique"
        churned = WorkloadGenerator(
            WorkloadConfig(**self.BASE, churn_fraction=1.0, churn_point=1.0), seed=9
        ).generate()
        successors = [u for u in churned.user_ids if u.endswith("-r")]
        assert len(successors) == self.BASE["n_users"]
        for uid in successors:
            assert len(churned.events_for_user(uid)) == 1  # the final slot

    def test_fleet_result_counts_churned_successors(self, tiny_encoder):
        trace = WorkloadGenerator(
            WorkloadConfig(**self.BASE, churn_fraction=1.0, churn_point=0.5), seed=9
        ).generate()
        simulator = FleetSimulator(
            _meancache_factory(tiny_encoder),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
        )
        result = simulator.run(trace)
        assert result.n_users == len(trace.user_ids) == 2 * self.BASE["n_users"]
        assert set(result.per_user) == set(trace.user_ids)

    def test_drift_metadata_round_trips(self, tmp_path):
        config = WorkloadConfig(
            **self.BASE,
            paraphrase_bias=0.8,
            drift_phases=(DriftPhase(start_fraction=0.5, duplicate_rate=0.6),),
            churn_fraction=0.25,
        )
        trace = WorkloadGenerator(config, seed=9).generate()
        assert trace.metadata["churn_fraction"] == 0.25
        assert trace.metadata["paraphrase_bias"] == 0.8
        assert trace.metadata["drift_phases"][0]["duplicate_rate"] == 0.6
        loaded = Trace.load(trace.save(tmp_path / "drift.json"))
        assert loaded.metadata == trace.metadata

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftPhase(start_fraction=1.5)
        with pytest.raises(ValueError):
            DriftPhase(start_fraction=0.5, duplicate_rate=2.0)
        with pytest.raises(ValueError):
            DriftPhase(start_fraction=0.5, paraphrase_bias=-0.1)
        with pytest.raises(ValueError):
            WorkloadConfig(
                **self.BASE,
                drift_phases=(
                    DriftPhase(start_fraction=0.8),
                    DriftPhase(start_fraction=0.2),
                ),
            )
        with pytest.raises(ValueError):
            WorkloadConfig(**self.BASE, churn_fraction=1.2)
        with pytest.raises(ValueError):
            WorkloadConfig(**self.BASE, paraphrase_bias=1.2)


class TestFleetSimulator:
    def test_per_user_and_fleet_aggregation(self, small_trace, tiny_encoder):
        service = SimulatedLLMService(LLMServiceConfig(seed=0))
        simulator = FleetSimulator(_meancache_factory(tiny_encoder), service)
        result = simulator.run(small_trace)
        assert result.n_events == len(small_trace)
        assert set(result.per_user) == set(small_trace.user_ids)
        assert result.lookups == len(small_trace)
        assert result.hits == sum(u.hits for u in result.per_user.values())
        assert 0.0 <= result.hit_rate < 1.0
        assert result.total_cost_usd > 0
        assert result.throughput_lookups_per_s > 0
        assert result.virtual_duration_s >= small_trace.duration_s
        # Misses (and only misses) reached the shared service.
        assert service.stats.n_requests == result.lookups - result.hits

    def test_replay_is_deterministic(self, small_trace, tiny_encoder):
        def run_once():
            simulator = FleetSimulator(
                _meancache_factory(tiny_encoder),
                SimulatedLLMService(LLMServiceConfig(seed=0)),
            )
            return simulator.run(small_trace)

        a, b = run_once(), run_once()
        assert a.hit_rate == b.hit_rate
        assert a.total_cost_usd == b.total_cost_usd
        for uid in a.per_user:
            assert a.per_user[uid].llm_latency_s == b.per_user[uid].llm_latency_s
            assert a.per_user[uid].hits == b.per_user[uid].hits

    def test_batch_window_does_not_change_classification(self, small_trace, tiny_encoder):
        """Batched scheduling is an amortization, not a semantics change.

        With enrolment off, a lookup is pure classification and must be
        identical under any window width.  (With enrolment *on*, windowing
        legitimately delays intra-window enrolment — a probe cannot hit an
        entry enrolled by an earlier probe of the same window — so decisions
        there are only window-invariant when no such pair occurs.)
        """

        def run_with_window(width):
            simulator = FleetSimulator(
                _meancache_factory(tiny_encoder),
                SimulatedLLMService(LLMServiceConfig(seed=0)),
                FleetConfig(batch_window_s=width, enroll_on_miss=False),
            )
            return simulator.run(small_trace, collect_outcomes=True)

        tight = run_with_window(0.0)
        wide = run_with_window(5.0)
        # Compare per-event hit decisions keyed by (user, time): grouping
        # differs, decisions must not (per-user caches, hashed jitter).
        key = lambda o: (o.event.user_id, o.event.time_s)
        tight_hits = {key(o): o.hit for o in tight.outcomes}
        wide_hits = {key(o): o.hit for o in wide.outcomes}
        assert tight_hits == wide_hits
        assert tight.total_cost_usd == pytest.approx(wide.total_cost_usd)

    def test_enroll_on_miss_populates_user_caches(self, small_trace, tiny_encoder):
        caches = {}

        def factory(user_id):
            caches[user_id] = MeanCache(
                tiny_encoder, MeanCacheConfig(similarity_threshold=0.8)
            )
            return caches[user_id]

        simulator = FleetSimulator(factory, SimulatedLLMService(LLMServiceConfig(seed=0)))
        result = simulator.run(small_trace)
        assert set(caches) == set(small_trace.user_ids)
        for uid, cache in caches.items():
            stats = result.per_user[uid]
            assert len(cache) == stats.llm_requests  # every miss was enrolled

        no_enroll = FleetSimulator(
            _meancache_factory(tiny_encoder),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(enroll_on_miss=False),
        )
        empty_result = no_enroll.run(small_trace)
        assert empty_result.hits == 0  # nothing ever cached

    def test_enrolment_reuses_lookup_embeddings(self):
        """A miss's enrolment reuses the Embed stage's output — no re-encode."""

        class CountingEncoder:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def encode(self, texts, compress=True):
                self.calls += 1
                return self.inner.encode(texts, compress=compress)

        encoder = CountingEncoder(make_tiny_encoder())
        cache = MeanCache(encoder, MeanCacheConfig(similarity_threshold=0.8))
        decision = cache.lookup("how can i sort a list in python")
        assert not decision.hit and decision.embedding is not None
        assert encoder.calls == 1
        cache.pipeline.enroll.enroll(
            decision.query, "use sorted()", embedding=decision.embedding
        )
        assert encoder.calls == 1  # enrolment did not re-encode
        assert len(cache) == 1
        assert cache.lookup("how can i sort a list in python").hit

    def test_hits_verified_against_intent_oracle(self, small_trace, tiny_encoder):
        simulator = FleetSimulator(
            _meancache_factory(tiny_encoder, threshold=0.6),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
        )
        result = simulator.run(small_trace, collect_outcomes=True)
        hits = [o for o in result.outcomes if o.hit]
        assert hits, "expected some hits at a permissive threshold"
        # Every hit on generator traffic is verifiable (intent keys present
        # and the matched entry was enrolled in-simulation).
        assert all(o.verified is not None for o in hits)
        # Nothing-retrieved misses have no candidate to verify against.
        assert all(
            o.verified is None for o in result.outcomes if not o.hit and o.similarity == 0.0
        )
        assert result.true_hits + result.false_hits == result.hits
        assert result.false_hit_rate == pytest.approx(result.false_hits / result.lookups)
        # Verified-correct hits really did match the probe's intent.
        intent_of = {}
        for event in small_trace:
            intent_of[(event.user_id, event.query)] = event.intent_key
        for outcome in hits:
            expected = intent_of.get((outcome.event.user_id, outcome.matched_query))
            if expected is not None:
                assert outcome.verified == (expected == outcome.event.intent_key)

    def test_outcomes_carry_similarity_and_matched_query(self, small_trace, tiny_encoder):
        simulator = FleetSimulator(
            _meancache_factory(tiny_encoder),
            SimulatedLLMService(LLMServiceConfig(seed=0)),
        )
        result = simulator.run(small_trace, collect_outcomes=True)
        for outcome in result.outcomes:
            assert 0.0 <= outcome.similarity <= 1.0 + 1e-9
            if outcome.hit:
                assert outcome.matched_query is not None
                assert outcome.similarity >= 0.8  # the fixture's τ

    def test_keyword_variant_rides_along(self, small_trace):
        simulator = FleetSimulator(
            lambda uid: KeywordCache(), SimulatedLLMService(LLMServiceConfig(seed=0))
        )
        result = simulator.run(small_trace)
        assert result.lookups == len(small_trace)
        assert 0.0 <= result.hit_rate <= 1.0

    def test_shared_central_cache_variant(self, small_trace, tiny_encoder):
        """One GPTCache instance for the whole fleet (central deployment)."""
        central = GPTCache(tiny_encoder, GPTCacheConfig(similarity_threshold=0.8))
        simulator = FleetSimulator(
            lambda uid: central, SimulatedLLMService(LLMServiceConfig(seed=0))
        )
        result = simulator.run(small_trace)
        assert result.lookups == len(small_trace)
        assert len(central) == result.lookups - result.hits
        # Central enrolment keeps per-user attribution (who asked what).
        assert set(central.users()) == {
            uid for uid, stats in result.per_user.items() if stats.llm_requests
        }

    def test_no_causality_inversion_on_shared_cache(self, tiny_encoder):
        """An event must never hit an entry enrolled by a later arrival.

        All of a window's lookups complete before any of its misses enrol,
        so B's t=0.02 probe cannot match the entry A enrols at t=0.24 even
        though both land in the same batch window of a shared cache.
        """
        q = "how can i sort a list in python"
        events = [
            WorkloadEvent(time_s=0.01, user_id="user-a", query="plan a trip to japan"),
            WorkloadEvent(time_s=0.02, user_id="user-b", query=q),
            WorkloadEvent(time_s=0.24, user_id="user-a", query=q),
        ]
        trace = Trace(events=events, n_users=2)
        central = GPTCache(tiny_encoder, GPTCacheConfig(similarity_threshold=0.8))
        simulator = FleetSimulator(
            lambda uid: central,
            SimulatedLLMService(LLMServiceConfig(seed=0)),
            FleetConfig(batch_window_s=0.25),
        )
        result = simulator.run(trace, collect_outcomes=True)
        assert [o.hit for o in result.outcomes] == [False, False, False]
        assert len(central) == 3  # every miss enrolled, duplicates included


class TestFleetBench:
    def test_small_fleet_bench_points(self):
        result = run_fleet_bench(
            user_counts=(3, 5),
            queries_per_user=4,
            encoder=make_tiny_encoder(),
            encoder_name="tiny",
            seed=0,
        )
        assert [p.n_users for p in result.points] == [3, 5]
        for point in result.points:
            assert point.n_lookups == point.n_users * 4
            assert point.throughput_lookups_per_s > 0
        assert "Fleet serving benchmark" in result.format()
        payload = result.to_dict()
        assert payload["encoder_name"] == "tiny"
        assert len(payload["points"]) == 2
        with pytest.raises(KeyError):
            result.point(99)

    def test_small_drift_adaptation_bench(self):
        """Structural check at toy scale (the dominance floors live in
        benchmarks/test_bench_fleet.py at full scale)."""
        result = run_drift_adaptation_bench(
            n_users=6,
            queries_per_user=30,
            encoder=make_tiny_encoder(),
            encoder_name="tiny",
            seed=0,
        )
        assert result.static.label == "static"
        assert result.adaptive.label == "adaptive"
        assert result.static.n_lookups == result.adaptive.n_lookups == 6 * 30
        assert result.n_rounds > 0
        assert len(result.threshold_trajectory) == result.n_rounds
        assert 0.0 <= result.adaptive.false_hit_rate <= result.adaptive.hit_rate
        payload = result.to_dict()
        assert payload["workload"]["metadata"]["drift_phases"]
        assert payload["adaptation"]["round_interval_s"] > 0
        assert payload["static"]["hit_rate"] == pytest.approx(result.static.hit_rate)
        assert "Online federated" in result.format()
