"""Integration-level tests: encoder zoo, full FL simulation, experiment smoke runs.

These use the real zoo encoders (pretrained once per session) and the quick
experiment scale, so they are the slowest tests in the suite.
"""

import numpy as np
import pytest

from repro.datasets.semantic_pairs import generate_pair_dataset
from repro.embeddings.similarity import cosine_similarity
from repro.embeddings.zoo import ENCODER_SPECS, load_encoder, spec_for
from repro.federated.simulation import FLSimulation, SimulationConfig


class TestZoo:
    def test_specs_cover_three_paper_models(self):
        assert set(ENCODER_SPECS) == {"mpnet-sim", "albert-sim", "llama2-sim"}

    def test_embedding_storage_matches_paper(self):
        # 768-d float64 -> 6 KB; 4096-d float64 -> 32 KB (paper Figure 15).
        assert spec_for("mpnet-sim").embedding_bytes == 6 * 1024
        assert spec_for("albert-sim").embedding_bytes == 6 * 1024
        assert spec_for("llama2-sim").embedding_bytes == 32 * 1024

    def test_unknown_encoder_rejected(self):
        with pytest.raises(KeyError):
            load_encoder("bert-sim")

    def test_pretrained_encoder_is_cached_and_deterministic(self, albert_encoder):
        again = load_encoder("albert-sim")
        text = "how do I sort a list in python"
        assert np.allclose(albert_encoder.encode(text), again.encode(text))

    def test_pretrained_beats_untrained_on_paraphrases(self, albert_encoder):
        raw = load_encoder("albert-sim", pretrained=False)
        q = "How can I sort a list in python?"
        dup = "What is the best way to order a python list?"
        neg = "How do I plan a trip to japan?"
        def gap(enc):
            return cosine_similarity(enc.encode(q), enc.encode(dup)) - cosine_similarity(
                enc.encode(q), enc.encode(neg)
            )
        assert gap(albert_encoder) > gap(raw)

    def test_llama_embedding_dim_and_quality(self):
        llama = load_encoder("llama2-sim")
        emb = llama.encode("a single query")
        assert emb.shape == (4096,)
        # The llama2 analogue must be a *worse* duplicate detector than the
        # pretrained small encoders (paper §IV-G).
        albert = load_encoder("albert-sim")
        q = "How can I sort a list in python?"
        dup = "What is the best way to order a python list?"
        neg = "How can I reverse a list in python?"
        gap_llama = cosine_similarity(llama.encode(q), llama.encode(dup)) - cosine_similarity(
            llama.encode(q), llama.encode(neg)
        )
        gap_albert = cosine_similarity(albert.encode(q), albert.encode(dup)) - cosine_similarity(
            albert.encode(q), albert.encode(neg)
        )
        assert gap_llama < gap_albert


class TestFLSimulation:
    @pytest.fixture(scope="class")
    def sim_result(self):
        pairs = generate_pair_dataset(n_pairs=240, seed=31)
        train, val, test = pairs.split(0.7, 0.15, seed=1)
        config = SimulationConfig(
            encoder_name="albert-sim",
            n_clients=4,
            n_rounds=2,
            clients_per_round=2,
            local_epochs=1,
            batch_size=64,
            seed=0,
        )
        sim = FLSimulation(train, val, test_data=test, config=config)
        return sim, sim.run()

    def test_runs_requested_rounds(self, sim_result):
        _, result = sim_result
        assert result.n_rounds == 2
        assert len(result.curves["round"]) == 2

    def test_threshold_in_range_and_metrics_present(self, sim_result):
        _, result = sim_result
        assert 0.0 <= result.final_threshold <= 1.0
        assert {"f_score", "precision", "recall", "accuracy"} <= set(result.final_metrics)

    def test_trained_encoder_differs_from_pretrained(self, sim_result):
        sim, result = sim_result
        pretrained = load_encoder("albert-sim")
        trained = sim.trained_encoder()
        assert any(
            not np.allclose(a, b)
            for a, b in zip(pretrained.get_parameters(), trained.get_parameters())
        )

    def test_topic_partition_mode(self):
        pairs = generate_pair_dataset(n_pairs=120, seed=32)
        train, val, test = pairs.split(0.7, 0.15, seed=1)
        config = SimulationConfig(
            encoder_name="albert-sim",
            n_clients=3,
            n_rounds=1,
            clients_per_round=2,
            local_epochs=1,
            partition="topic",
            seed=1,
        )
        result = FLSimulation(train, val, test_data=test, config=config).run()
        assert result.n_rounds == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(partition="weird")
        with pytest.raises(ValueError):
            SimulationConfig(n_workers=0)


class TestExperimentSmoke:
    """End-to-end smoke tests of the experiment harness at a tiny scale."""

    @pytest.fixture(scope="class")
    def tiny_bundle(self):
        from repro.experiments.common import ExperimentScale, build_system_bundle

        scale = ExperimentScale(
            name="tiny",
            n_pairs=240,
            n_cached=80,
            n_probes=80,
            fl_rounds=2,
            fl_clients=4,
            fl_clients_per_round=2,
            fl_local_epochs=1,
            contextual_cached_standalone=20,
            contextual_cached_followups=20,
            contextual_dup_standalone=15,
            contextual_dup_contextual=15,
            contextual_unique=20,
            compression_cache_sizes=(40, 80),
            latency_probe_count=30,
            threshold_grid=26,
        )
        return build_system_bundle(scale, seed=1, train_albert=False)

    def test_table1_runs_and_reports_all_systems(self, tiny_bundle):
        from repro.experiments.table1 import run_table1

        result = run_table1(bundle=tiny_bundle, include_albert=False)
        assert "GPTCache" in result.systems and "MeanCache (MPNet)" in result.systems
        for ev in result.systems.values():
            assert ev.matrix.total == tiny_bundle.scale.n_probes
        assert "Table I" in result.format()

    def test_contextual_experiment_context_check_reduces_trap_hits(self, tiny_bundle):
        from repro.experiments.contextual import run_contextual

        result = run_contextual(bundle=tiny_bundle)
        with_ctx = result.systems["MeanCache"].trap_false_hits
        without_ctx = result.systems["MeanCache (no context check)"].trap_false_hits
        assert with_ctx <= without_ctx

    def test_fig04_matches_paper_average(self):
        from repro.experiments.fig04_userstudy import run_fig04

        result = run_fig04()
        assert result.mean_rate == pytest.approx(0.31, abs=0.02)
        assert len(result.totals) == 20

    def test_fig05_latency_shape(self, tiny_bundle):
        from repro.experiments.fig05_latency import run_fig05

        result = run_fig05(bundle=tiny_bundle, n_probes=20)
        assert set(result.traces) == {"Llama 2", "Llama 2 + GPTCache", "Llama 2 + MeanCache"}
        # Cached configurations must be no slower than the raw service overall
        # and strictly faster on true duplicates.
        assert result.traces["Llama 2 + MeanCache"].mean_latency_s <= result.traces["Llama 2"].mean_latency_s * 1.2
        assert result.speedup_on_duplicates("Llama 2 + MeanCache") > 1.0

    def test_fig10_compression_saves_storage(self, tiny_bundle):
        from repro.experiments.fig10_compression import run_fig10

        result = run_fig10(bundle=tiny_bundle, include_albert=False, n_components=16)
        saving = result.storage_saving()
        assert saving > 0.5
        systems = result.systems()
        assert "GPTCache" in systems and "MeanCache-Compressed (MPNet)" in systems

    def test_fig11_curves_available(self, tiny_bundle):
        from repro.experiments.fig11_12_fl_training import run_fig11_12

        result = run_fig11_12(bundle=tiny_bundle, include_albert=False)
        assert len(result.mpnet.curves["precision"]) == tiny_bundle.scale.fl_rounds

    def test_fig13_threshold_sweep(self, tiny_bundle):
        from repro.experiments.fig13_14_threshold import run_fig13_14

        result = run_fig13_14(bundle=tiny_bundle, include_albert=False)
        assert 0.0 <= result.mpnet.optimal_metrics["threshold"] <= 1.0

    def test_fig15_model_cost_ordering(self):
        from repro.experiments.fig15_model_cost import run_fig15

        result = run_fig15(n_queries=20, repeats=1)
        llama = result.row("llama2-sim")
        mpnet = result.row("mpnet-sim")
        albert = result.row("albert-sim")
        assert llama.embedding_storage_kb == pytest.approx(32.0)
        assert mpnet.embedding_storage_kb == pytest.approx(6.0)
        # Llama-class embedding must cost more compute than the small models.
        assert llama.mean_embed_time_s > mpnet.mean_embed_time_s
        assert llama.mean_embed_time_s > albert.mean_embed_time_s

    def test_fig16_llama_is_weak(self, tiny_bundle):
        from repro.experiments.fig16_llama_threshold import run_fig16

        result = run_fig16(bundle=tiny_bundle)
        assert result.max_f1 < 0.9
