"""Golden-decision regression: the pipeline rewire changes no decision.

``tests/fixtures/golden_decisions_quick.json`` was generated from the
pre-pipeline implementation (monolithic ``lookup``/``_decide``/``insert``
loops) by ``tests/golden_decisions.py``.  This test re-runs Table I
(standalone), Table I (contextual) and Figure 5 on the current code and
asserts every system's hit/miss stream, similarity stream (bit-exact via
``float.hex``) and matched-entry stream are byte-identical to the fixture.
"""

from __future__ import annotations

import json

import pytest

from golden_decisions import FIXTURE_PATH, GOLDEN_SCALE, GOLDEN_SEED, collect_decision_summary

from repro.experiments.common import cached_system_bundle


@pytest.fixture(scope="module")
def golden():
    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate with "
        "`PYTHONPATH=src:tests python -m golden_decisions`"
    )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def current():
    bundle = cached_system_bundle(GOLDEN_SCALE, seed=GOLDEN_SEED, train_albert=True)
    return collect_decision_summary(bundle)


def test_fixture_metadata(golden):
    assert golden["scale"] == GOLDEN_SCALE
    assert golden["seed"] == GOLDEN_SEED


def test_table1_decisions_byte_identical(golden, current):
    assert set(current["table1"]) == set(golden["table1"])
    for system, expected in golden["table1"].items():
        got = current["table1"][system]
        assert got["hits"] == expected["hits"], f"{system}: hit/miss stream changed"
        assert got["sims"] == expected["sims"], f"{system}: similarity stream changed"
        assert got["matches"] == expected["matches"], f"{system}: matched entries changed"


def test_contextual_decisions_byte_identical(golden, current):
    assert set(current["contextual"]) == set(golden["contextual"])
    for system, expected in golden["contextual"].items():
        got = current["contextual"][system]
        assert got["hits"] == expected["hits"], f"{system}: hit/miss stream changed"


def test_fig05_decisions_byte_identical(golden, current):
    assert set(current["fig05"]) == set(golden["fig05"])
    for system, expected in golden["fig05"].items():
        got = current["fig05"][system]
        assert got["hits"] == expected["hits"], f"{system}: hit/miss stream changed"
