"""Setuptools shim.

The offline evaluation environment has no network access and no ``wheel``
package, so PEP 517/660 editable installs (which build an editable wheel)
cannot run.  Keeping a classic ``setup.py`` alongside ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy development install, which works
fully offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
