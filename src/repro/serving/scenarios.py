"""Scenario zoo: adversarial / heterogeneous workload construction + specs.

PRs 1–5 evaluated the serving stack on one workload shape — Poisson
arrivals over Dirichlet domain mixes with a couple of drift phases.  This
module goes wide, the way the paper's deployment framing (millions of
heterogeneous devices, adversarially mixed traffic) demands.  Everything
here is **trace construction**: pure, seeded transforms of
:class:`~repro.serving.workload.Trace` streams, with no encoder or cache
dependency, so every scenario replays through any fleet configuration.
The declarative *runner* — one matrix of scenarios, each producing the
same per-scenario hit / true-hit / false-hit / latency / cost table —
lives in :mod:`repro.experiments.scenario_bench`.

Scenario families
-----------------
* **poisoning** — :func:`inject_poisoning`: an attacker enrols misleading
  near-duplicates (hard-negative intents realized with high lexical
  overlap) into a shared cache moments before victims first ask the real
  thing, converting their first asks into false hits.
* **flooding** — :func:`build_flooding_trace`: adversarial devices flood
  weak-paraphrase re-asks whose similarities land in the near-threshold
  band the online τ adapter mines, trying to drag the federated threshold
  down for everyone.
* **arrival** — :class:`~repro.serving.workload.ArrivalSchedule` layered
  diurnal cycles and flash crowds (re-exported here; the warp itself lives
  with the generator).
* **mixed_domain** — :func:`build_cohort_trace`: cohorts of users drawing
  from disjoint domain-restricted corpora (the synthetic stand-in for
  multilingual / mixed-domain fleets), merged into one stream.
* **multi_tenant** — :func:`build_multi_tenant_trace`: quiet tenants plus
  one noisy tenant flooding unique traffic through a shared cache; the
  isolation floor bounds how much the noisy tenant may cost a quiet one.
* **replay** — :func:`trace_from_logs`: external request logs (foreign
  field names, unordered) imported into a replayable :class:`Trace`.

:class:`ScenarioSpec` + the registry (:func:`register_scenario`,
:func:`get_scenario`, :func:`available_scenarios`) make the zoo
declarative: a spec is a named, JSON-serializable description of one
scenario; the matrix driver resolves and runs them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.datasets.corpus import Corpus
from repro.serving.workload import (
    ArrivalSchedule,
    Trace,
    WorkloadConfig,
    WorkloadEvent,
    WorkloadGenerator,
    apply_arrival_schedule,
)

__all__ = [
    "ArrivalSchedule",
    "apply_arrival_schedule",
    "relabel_users",
    "merge_traces",
    "PoisoningConfig",
    "PoisoningInfo",
    "inject_poisoning",
    "FloodingConfig",
    "build_flooding_trace",
    "CohortSpec",
    "build_cohort_trace",
    "MultiTenantConfig",
    "build_multi_tenant_trace",
    "trace_from_logs",
    "trace_to_logs",
    "ScenarioSpec",
    "SCENARIO_FAMILIES",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
]


# --------------------------------------------------------------------------- #
# Trace surgery helpers
# --------------------------------------------------------------------------- #
def relabel_users(trace: Trace, prefix: str) -> Trace:
    """Prefix every user id in ``trace`` (cohort / tenant namespacing).

    Merged scenario streams combine traces from independently seeded
    generators whose user ids would otherwise collide; prefixing keeps
    every cohort's devices distinct and lets per-cohort metrics be
    recovered from the id alone.
    """
    events = [
        WorkloadEvent(
            time_s=e.time_s,
            user_id=f"{prefix}{e.user_id}",
            query=e.query,
            context=e.context,
            is_followup=e.is_followup,
            kind=e.kind,
            intent_key=e.intent_key,
        )
        for e in trace.events
    ]
    return Trace(
        events=events,
        n_users=trace.n_users,
        seed=trace.seed,
        metadata={**trace.metadata, "user_prefix": prefix},
    )


def merge_traces(*traces: Trace) -> Trace:
    """Merge several traces into one time-ordered fleet stream.

    User ids must already be distinct across the inputs (use
    :func:`relabel_users`); a collision would silently fuse two users'
    histories, so it is rejected loudly.
    """
    seen: Set[str] = set()
    for trace in traces:
        ids = set(trace.user_ids)
        overlap = seen & ids
        if overlap:
            raise ValueError(
                f"user ids collide across merged traces: {sorted(overlap)[:5]}"
            )
        seen |= ids
    events = [e for trace in traces for e in trace.events]
    events.sort(key=lambda e: (e.time_s, e.user_id))
    return Trace(
        events=events,
        n_users=len(seen),
        seed=traces[0].seed if traces else 0,
        metadata={"merged": [dict(t.metadata) for t in traces]},
    )


# --------------------------------------------------------------------------- #
# Adversarial cache poisoning
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PoisoningConfig:
    """Knobs of the cache-poisoning adversary.

    Attributes
    ----------
    target_fraction:
        Fraction of the victims' first-ask (``kind="unique"``) events the
        attacker front-runs with a poisoned near-duplicate.
    lead_s:
        Virtual seconds the poison lands *before* its target event.  Must
        exceed the fleet's batch window, or the poison's enrolment is not
        yet visible when the victim asks.
    object_bias:
        Canonical-object bias used to realize poison queries; near 1.0 the
        poison shares the victim intent's distinctive noun phrase, which is
        what makes it a *misleading* near-duplicate.
    attacker_prefix:
        User-id prefix of the attacker devices (one attacker per shard of
        ``attacker_shards`` so its traffic looks like ordinary users).
    attacker_shards:
        Number of attacker identities the poison stream is spread over.
    """

    target_fraction: float = 0.5
    lead_s: float = 5.0
    object_bias: float = 0.95
    attacker_prefix: str = "attacker-"
    attacker_shards: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction <= 1.0:
            raise ValueError("target_fraction must be in (0, 1]")
        if self.lead_s <= 0:
            raise ValueError("lead_s must be > 0")
        if not 0.0 <= self.object_bias <= 1.0:
            raise ValueError("object_bias must be in [0, 1]")
        if self.attacker_shards < 1:
            raise ValueError("attacker_shards must be >= 1")


@dataclass
class PoisoningInfo:
    """What the adversary actually injected (for attack accounting)."""

    n_targets: int
    poison_queries: Set[str] = field(default_factory=set)
    attacker_ids: Set[str] = field(default_factory=set)


def inject_poisoning(
    trace: Trace, corpus: Corpus, config: Optional[PoisoningConfig] = None, seed: int = 0
) -> Tuple[Trace, PoisoningInfo]:
    """Inject an adversarial poisoning stream into ``trace``.

    For a seeded sample of the victims' first asks, the attacker issues a
    *hard-negative* intent (same domain, sharing the action or the object)
    realized with strong lexical overlap, ``lead_s`` seconds earlier.  On a
    shared cache the attacker's miss enrols the misleading entry, and the
    victim's later probe can clear τ against it — a false hit serving the
    wrong answer.  Per-device caches are structurally immune (the poison
    lands in the attacker's own cache), which is itself a scenario finding.

    The victims' own events are byte-identical to the input trace, so the
    no-attack baseline is simply the unpoisoned ``trace``.
    """
    config = config or PoisoningConfig()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 9157]))
    intent_of = {intent.key: intent for intent in corpus.intents}
    first_asks = [
        e
        for e in trace.events
        if e.kind == "unique" and not e.is_followup and e.intent_key in intent_of
    ]
    n_targets = max(1, int(round(config.target_fraction * len(first_asks))))
    n_targets = min(n_targets, len(first_asks))
    target_idx = rng.choice(len(first_asks), size=n_targets, replace=False)
    info = PoisoningInfo(n_targets=n_targets)
    poison_events: List[WorkloadEvent] = []
    for i in sorted(int(j) for j in target_idx):
        target = first_asks[i]
        intent = intent_of[target.intent_key]
        poison_intent = corpus.hard_negative(intent, rng)
        query = corpus.realize(poison_intent, rng=rng, object_bias=config.object_bias)
        attacker = (
            f"{config.attacker_prefix}"
            f"{int(rng.integers(config.attacker_shards)):05d}"
        )
        poison_events.append(
            WorkloadEvent(
                time_s=max(0.0, target.time_s - config.lead_s),
                user_id=attacker,
                query=query,
                kind="unique",
                intent_key=poison_intent.key,
            )
        )
        info.poison_queries.add(query)
        info.attacker_ids.add(attacker)
    events = list(trace.events) + poison_events
    events.sort(key=lambda e: (e.time_s, e.user_id))
    poisoned = Trace(
        events=events,
        n_users=trace.n_users + len(info.attacker_ids),
        seed=trace.seed,
        metadata={
            **trace.metadata,
            "poisoning": {
                "n_targets": n_targets,
                "n_attackers": len(info.attacker_ids),
                "lead_s": config.lead_s,
                "object_bias": config.object_bias,
            },
        },
    )
    return poisoned, info


# --------------------------------------------------------------------------- #
# Near-miss flooding (τ-adapter gaming)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FloodingConfig:
    """Knobs of the near-miss flooding adversary.

    Flooder devices re-ask their own history almost every query as *weak*
    paraphrases (``paraphrase_bias`` near 0): the resulting similarities
    land just under τ, exactly the near-threshold band the online adapter
    mines, and every mined pair is a low-similarity positive — evidence
    that τ should drop.  Aggregation then drags the *global* threshold
    toward the flooders' optimum unless the adapter's configured floor
    (``OnlineAdaptationConfig.min_threshold``) clamps it.
    """

    n_flooders: int = 4
    queries_per_flooder: int = 120
    duplicate_rate: float = 0.95
    paraphrase_bias: float = 0.0
    arrival_rate_qps: float = 1.0
    prefix: str = "flood-"

    def __post_init__(self) -> None:
        if self.n_flooders < 1:
            raise ValueError("n_flooders must be >= 1")
        if self.queries_per_flooder < 1:
            raise ValueError("queries_per_flooder must be >= 1")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if not 0.0 <= self.paraphrase_bias <= 1.0:
            raise ValueError("paraphrase_bias must be in [0, 1]")
        if self.arrival_rate_qps <= 0:
            raise ValueError("arrival_rate_qps must be > 0")


def build_flooding_trace(
    honest_config: WorkloadConfig,
    flooding: Optional[FloodingConfig] = None,
    corpus: Optional[Corpus] = None,
    seed: int = 0,
) -> Tuple[Trace, List[str], List[str]]:
    """Merge an honest fleet's trace with an adversarial flooder cohort.

    Returns ``(trace, honest_ids, flooder_ids)``.  The honest stream is
    exactly ``WorkloadGenerator(honest_config, seed)``'s, so the no-attack
    baseline replays the same honest traffic; flooders are generated from
    an offset seed and namespaced under ``flooding.prefix``.
    """
    flooding = flooding or FloodingConfig()
    honest = WorkloadGenerator(honest_config, corpus=corpus, seed=seed).generate()
    flood_config = WorkloadConfig(
        n_users=flooding.n_flooders,
        queries_per_user=flooding.queries_per_flooder,
        arrival_rate_qps=flooding.arrival_rate_qps,
        duplicate_rate=flooding.duplicate_rate,
        followup_rate=0.0,
        paraphrase_bias=flooding.paraphrase_bias,
    )
    flood = relabel_users(
        WorkloadGenerator(flood_config, corpus=corpus, seed=seed + 7919).generate(),
        flooding.prefix,
    )
    merged = merge_traces(honest, flood)
    return merged, honest.user_ids, flood.user_ids


# --------------------------------------------------------------------------- #
# Mixed-domain / multilingual-style cohorts
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CohortSpec:
    """One user cohort drawing from a domain-restricted corpus.

    Disjoint domain vocabularies are the synthetic stand-in for
    multilingual / mixed-domain fleets: cohorts share no surface forms, so
    cross-cohort retrievals are pure noise while in-cohort duplicates stay
    cacheable — the regime a heterogeneous deployment must serve well
    simultaneously.
    """

    name: str
    domains: Tuple[str, ...]
    n_users: int = 5
    queries_per_user: int = 30
    duplicate_rate: float = 0.35
    followup_rate: float = 0.2
    domain_concentration: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "domains", tuple(self.domains))
        if not self.name:
            raise ValueError("cohort name must be non-empty")
        if not self.domains:
            raise ValueError("cohort needs at least one domain")
        if self.n_users < 1 or self.queries_per_user < 1:
            raise ValueError("n_users and queries_per_user must be >= 1")


def build_cohort_trace(
    cohorts: Sequence[CohortSpec], seed: int = 0
) -> Tuple[Trace, Dict[str, List[str]]]:
    """Merge per-cohort traces (each from its own restricted corpus).

    Returns ``(trace, {cohort_name: user_ids})``.  Each cohort gets an
    independently seeded generator over ``Corpus(domains=cohort.domains)``
    and a ``<name>-`` user-id prefix.
    """
    if not cohorts:
        raise ValueError("need at least one cohort")
    names = [c.name for c in cohorts]
    if len(set(names)) != len(names):
        raise ValueError("cohort names must be distinct")
    traces: List[Trace] = []
    members: Dict[str, List[str]] = {}
    for offset, cohort in enumerate(cohorts):
        corpus = Corpus(seed=seed, domains=list(cohort.domains))
        config = WorkloadConfig(
            n_users=cohort.n_users,
            queries_per_user=cohort.queries_per_user,
            duplicate_rate=cohort.duplicate_rate,
            followup_rate=cohort.followup_rate,
            domain_concentration=cohort.domain_concentration,
        )
        trace = relabel_users(
            WorkloadGenerator(config, corpus=corpus, seed=seed + 101 * (offset + 1)).generate(),
            f"{cohort.name}-",
        )
        traces.append(trace)
        members[cohort.name] = trace.user_ids
    return merge_traces(*traces), members


# --------------------------------------------------------------------------- #
# Multi-tenant isolation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MultiTenantConfig:
    """Quiet tenants sharing a cache with one noisy tenant.

    The noisy tenant floods all-unique traffic (nothing it asks is ever
    re-asked, so none of it is cacheable) at a multiple of the quiet
    arrival rate — the classic noisy-neighbour pattern.  Isolation holds
    when a quiet tenant's hit rate in the mixed deployment stays within a
    small ε of its hit rate running alone on the same seed.
    """

    n_quiet_users: int = 8
    queries_per_quiet_user: int = 30
    quiet_duplicate_rate: float = 0.4
    n_noisy_users: int = 2
    queries_per_noisy_user: int = 120
    noisy_rate_multiplier: float = 5.0
    quiet_prefix: str = "quiet-"
    noisy_prefix: str = "noisy-"

    def __post_init__(self) -> None:
        if self.n_quiet_users < 1 or self.n_noisy_users < 1:
            raise ValueError("tenant sizes must be >= 1")
        if self.queries_per_quiet_user < 1 or self.queries_per_noisy_user < 1:
            raise ValueError("queries per user must be >= 1")
        if self.noisy_rate_multiplier <= 0:
            raise ValueError("noisy_rate_multiplier must be > 0")


def build_multi_tenant_trace(
    config: Optional[MultiTenantConfig] = None,
    base_rate_qps: float = 0.2,
    corpus: Optional[Corpus] = None,
    seed: int = 0,
) -> Tuple[Trace, Trace, List[str], List[str]]:
    """Build the mixed-tenancy stream plus the quiet tenant's solo stream.

    Returns ``(mixed, quiet_alone, quiet_ids, noisy_ids)``.  The quiet
    tenant's events are byte-identical in both traces (same generator,
    same seed), so any hit-rate difference is attributable to the noisy
    tenant's presence — the quantity the isolation floor bounds.
    """
    config = config or MultiTenantConfig()
    quiet_config = WorkloadConfig(
        n_users=config.n_quiet_users,
        queries_per_user=config.queries_per_quiet_user,
        arrival_rate_qps=base_rate_qps,
        duplicate_rate=config.quiet_duplicate_rate,
    )
    quiet = relabel_users(
        WorkloadGenerator(quiet_config, corpus=corpus, seed=seed).generate(),
        config.quiet_prefix,
    )
    noisy_config = WorkloadConfig(
        n_users=config.n_noisy_users,
        queries_per_user=config.queries_per_noisy_user,
        arrival_rate_qps=base_rate_qps * config.noisy_rate_multiplier,
        duplicate_rate=0.0,
        followup_rate=0.0,
    )
    noisy = relabel_users(
        WorkloadGenerator(noisy_config, corpus=corpus, seed=seed + 4243).generate(),
        config.noisy_prefix,
    )
    mixed = merge_traces(quiet, noisy)
    return mixed, quiet, quiet.user_ids, noisy.user_ids


# --------------------------------------------------------------------------- #
# External trace import (log replay)
# --------------------------------------------------------------------------- #
def trace_from_logs(
    records: Iterable[Mapping[str, object]],
    *,
    time_key: str = "timestamp",
    user_key: str = "user",
    query_key: str = "prompt",
    context_key: Optional[str] = "context",
    intent_key: Optional[str] = "intent",
    normalize_time: bool = True,
) -> Trace:
    """Import external request logs into a replayable :class:`Trace`.

    ``records`` is any iterable of mappings — parsed JSON lines, CSV rows —
    with arbitrary field names declared through the ``*_key`` arguments.
    Records are sorted into arrival order; with ``normalize_time`` the
    earliest arrival becomes t=0 so foreign epochs replay on the fleet's
    virtual clock.  Missing optional fields degrade gracefully: no context
    means no conversation chain, no intent key means hits on that entry are
    unverifiable (exactly as for any traffic without an oracle).

    Together with :meth:`Trace.save` / :meth:`Trace.load` this closes the
    loop for production logs: import once, replay through any fleet or
    cache configuration forever after.
    """
    events: List[WorkloadEvent] = []
    for i, record in enumerate(records):
        if time_key not in record:
            raise ValueError(f"log record {i} is missing its {time_key!r} field")
        if user_key not in record or query_key not in record:
            raise ValueError(
                f"log record {i} is missing its {user_key!r} or {query_key!r} field"
            )
        context: Tuple[str, ...] = ()
        if context_key is not None and record.get(context_key):
            raw = record[context_key]
            if isinstance(raw, str):
                context = (raw,)
            else:
                context = tuple(str(turn) for turn in raw)
        events.append(
            WorkloadEvent(
                time_s=float(record[time_key]),
                user_id=str(record[user_key]),
                query=str(record[query_key]),
                context=context,
                is_followup=bool(context),
                kind="unique",
                intent_key=(
                    str(record[intent_key])
                    if intent_key is not None and record.get(intent_key)
                    else ""
                ),
            )
        )
    events.sort(key=lambda e: (e.time_s, e.user_id))
    if normalize_time and events:
        t0 = events[0].time_s
        if t0 != 0.0:
            events = [
                WorkloadEvent(
                    time_s=e.time_s - t0,
                    user_id=e.user_id,
                    query=e.query,
                    context=e.context,
                    is_followup=e.is_followup,
                    kind=e.kind,
                    intent_key=e.intent_key,
                )
                for e in events
            ]
    return Trace(
        events=events,
        n_users=len({e.user_id for e in events}),
        seed=0,
        metadata={"source": "external_logs", "n_records": len(events)},
    )


def trace_to_logs(
    trace: Trace,
    *,
    time_key: str = "timestamp",
    user_key: str = "user",
    query_key: str = "prompt",
    context_key: str = "context",
    intent_key: str = "intent",
) -> List[Dict[str, object]]:
    """Export a trace as external-log records (inverse of :func:`trace_from_logs`).

    Mainly a test fixture: round-tripping a generated trace through the
    foreign schema and back must replay identically.
    """
    return [
        {
            time_key: e.time_s,
            user_key: e.user_id,
            query_key: e.query,
            context_key: list(e.context),
            intent_key: e.intent_key,
        }
        for e in trace.events
    ]


# --------------------------------------------------------------------------- #
# Declarative scenario specs + registry
# --------------------------------------------------------------------------- #
#: The scenario families the matrix driver knows how to run.
SCENARIO_FAMILIES = frozenset(
    {"poisoning", "flooding", "arrival", "mixed_domain", "multi_tenant", "replay"}
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative scenario description.

    A spec is data, not code: family selects the construction + floor
    semantics, ``workload`` overrides the honest-traffic
    :class:`WorkloadConfig` knobs, ``params`` feeds the family's own config
    (e.g. :class:`PoisoningConfig` fields), and ``adaptation`` (when not
    ``None``) switches the fleet onto an
    :class:`~repro.federated.online.OnlineThresholdAdapter` built from the
    given :class:`~repro.federated.online.OnlineAdaptationConfig`
    overrides.  Everything serializes to JSON, so the whole matrix is
    reproducible from the benchmark payload alone.
    """

    name: str
    family: str
    description: str = ""
    n_users: int = 8
    queries_per_user: int = 30
    seed: int = 0
    similarity_threshold: float = 0.75
    workload: Mapping[str, object] = field(default_factory=dict)
    params: Mapping[str, object] = field(default_factory=dict)
    adaptation: Optional[Mapping[str, object]] = None
    shared_cache: bool = False
    max_entries: int = 100_000

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.family not in SCENARIO_FAMILIES:
            raise ValueError(
                f"unknown scenario family {self.family!r}; "
                f"expected one of {sorted(SCENARIO_FAMILIES)}"
            )
        if self.n_users < 1 or self.queries_per_user < 1:
            raise ValueError("n_users and queries_per_user must be >= 1")
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        object.__setattr__(self, "workload", dict(self.workload))
        object.__setattr__(self, "params", dict(self.params))
        if self.adaptation is not None:
            object.__setattr__(self, "adaptation", dict(self.adaptation))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (recorded in the benchmark payload)."""
        return {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "n_users": self.n_users,
            "queries_per_user": self.queries_per_user,
            "seed": self.seed,
            "similarity_threshold": self.similarity_threshold,
            "workload": dict(self.workload),
            "params": dict(self.params),
            "adaptation": None if self.adaptation is None else dict(self.adaptation),
            "shared_cache": self.shared_cache,
            "max_entries": self.max_entries,
        }


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a spec to the zoo registry (rejects silent name collisions)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {available_scenarios()}"
        ) from None


def available_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)
