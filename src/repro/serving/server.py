"""The real-concurrency serving tier: an asyncio semantic-cache service.

Everything the repo measured before PR 8 ran on the simulator's
single-threaded virtual clock.  :class:`CacheServer` serves the same
federated-cache stack under *real* concurrent load:

* **Hash-sharded per-user caches.**  Users hash (stable CRC32) onto
  ``n_shards`` shards; each shard owns its users' caches behind one
  ``threading.Lock``, so index mutation is serialized per shard while a
  flush's lookups run across shards.  A ``cache_factory`` returning one
  shared object (a central GPTCache) is detected by object identity and
  collapsed onto a single owning shard — the shared index is never touched
  from two locks.
* **Bounded admission queue with backpressure.**  ``max_queue_depth`` caps
  the pending queue; an arrival beyond it is shed immediately with a typed
  :class:`BackpressureError` instead of growing an unbounded backlog.
* **Adaptive micro-batching.**  Concurrent requests coalesce into one
  flush: the batcher fires when ``max_batch_size`` requests are pending or
  the oldest has waited ``max_batch_wait_s``, whichever comes first.  A
  flush is embedded with **one** cross-user encoder call (the dominant
  per-request cost) and each shard's caches then retrieve from their own
  indexes via the precomputed rows.
* **Optional shared L2.**  A ``shared_cache`` is consulted on per-user
  misses before the LLM (behind its own lock); LLM responses enrol into
  both tiers.

The execution semantics inside a flush are exactly the simulator's
(:class:`~repro.serving.scheduling.BatchExecutor` is shared): all lookups
complete before any enrolment.  Replaying a trace through
:meth:`CacheServer.replay` (the synchronous single-worker deterministic
mode) therefore produces byte-identical per-event decisions to
:class:`~repro.serving.fleet.FleetSimulator` — ``tests/test_serving_parity.py``
pins this.

Live wall-clock serving runs on an asyncio event loop (started in-thread or
via :meth:`start` on a dedicated daemon thread) with flush execution on a
small thread pool; ``experiments/serving_bench.py`` drives it from real
client threads and lands the numbers in ``BENCH_serving.json``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import guard_cache, maybe_tracked_lock
from repro.llm.service import SimulatedLLMService
from repro.metrics.timing import LatencyHistogram
from repro.serving.fleet import FleetResult, UserStats
from repro.serving.scheduling import (
    BatchExecutor,
    CacheAdapter,
    LookupOutcome,
    iter_windows,
    storage_report,
)
from repro.serving.workload import Trace, WorkloadEvent


class BackpressureError(RuntimeError):
    """A request was shed because the admission queue is full.

    Carries the depth the queue stood at and the configured bound, so
    callers can log/aggregate shed decisions without parsing messages.
    """

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(
            f"admission queue full ({queue_depth} pending >= limit {limit}); "
            "request shed"
        )
        self.queue_depth = queue_depth
        self.limit = limit


@dataclass(frozen=True)
class ServerConfig:
    """Serving-tier knobs.

    Attributes
    ----------
    n_shards:
        Number of cache shards.  Users are assigned by stable hash; each
        shard's caches are mutated only under that shard's lock.
    max_queue_depth:
        Admission bound: requests arriving while this many are already
        pending are shed with :class:`BackpressureError`.
    max_batch_size:
        Flush when this many requests are pending (the batch cap).
    max_batch_wait_s:
        Flush when the oldest pending request has waited this long, even if
        the batch is not full (the latency bound on coalescing).
    enroll_on_miss:
        Whether misses enrol the LLM's response in the user's cache.
    index_maintenance:
        Run deferred index maintenance on touched caches after each flush.
    deterministic:
        Single-worker mode: flush execution runs inline on the calling
        thread (no pool, no cross-shard parallelism) and LLM requests are
        stamped with virtual event times — the mode :meth:`CacheServer.replay`
        uses for byte-exact parity with the simulator.
    worker_threads:
        Size of the flush executor pool in live mode (default 1: flushes
        execute sequentially off the event loop, which preserves per-user
        FIFO while arrivals keep filling the next batch; ignored when
        ``deterministic``).
    precompute_embeddings:
        Embed each flush with one cross-user encoder call and hand every
        cache its rows (requires constructing the server with ``encoder=``).
    """

    n_shards: int = 4
    max_queue_depth: int = 4096
    max_batch_size: int = 64
    max_batch_wait_s: float = 0.002
    enroll_on_miss: bool = True
    index_maintenance: bool = True
    deterministic: bool = False
    worker_threads: Optional[int] = None
    precompute_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_batch_wait_s < 0:
            raise ValueError("max_batch_wait_s must be >= 0")
        if self.worker_threads is not None and self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1 when set")


@dataclass
class ServerResponse:
    """What one served request resolves to."""

    user_id: str
    query: str
    hit: bool
    response: Optional[str]
    #: where the answer came from: ``"local"`` (per-user cache), ``"shared"``
    #: (the L2 tier) or ``"llm"`` (a miss forwarded to the service)
    source: str
    similarity: float = 0.0
    cache_overhead_s: float = 0.0
    llm_latency_s: float = 0.0
    cost_usd: float = 0.0
    queue_wait_s: float = 0.0
    batch_size: int = 1


@dataclass
class ServerMetrics:
    """Wall-clock serving metrics, aggregated across the server's lifetime."""

    completed: int = 0
    hits: int = 0
    shared_hits: int = 0
    llm_requests: int = 0
    shed: int = 0
    flushes: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    depth_samples: List[int] = field(default_factory=list)
    max_depth_seen: int = 0
    e2e_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def offered(self) -> int:
        """Requests that reached admission (served + shed)."""
        return self.completed + self.shed

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed by backpressure."""
        offered = self.offered
        return self.shed / offered if offered else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of completed requests served from either cache tier."""
        return self.hits / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Mean flush size (1.0 = no coalescing happened)."""
        if not self.batch_sizes:
            return 0.0
        return float(sum(self.batch_sizes)) / len(self.batch_sizes)

    def batch_size_histogram(self) -> Dict[int, int]:
        """Flush-size -> count histogram."""
        hist: Dict[int, int] = {}
        for size in self.batch_sizes:
            hist[size] = hist.get(size, 0) + 1
        return dict(sorted(hist.items()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary."""
        return {
            "completed": self.completed,
            "hits": self.hits,
            "shared_hits": self.shared_hits,
            "llm_requests": self.llm_requests,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "hit_rate": self.hit_rate,
            "flushes": self.flushes,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(k): v for k, v in self.batch_size_histogram().items()
            },
            "max_queue_depth_seen": self.max_depth_seen,
            "e2e_latency": self.e2e_latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
        }


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or inside) a flush."""

    seq: int
    user_id: str
    query: str
    context: Tuple[str, ...]
    time_s: float
    enqueued_at: float
    future: Optional[asyncio.Future] = None
    intent_key: str = ""
    is_followup: bool = False

    def to_event(self) -> WorkloadEvent:
        """The executor-facing event form of this request."""
        return WorkloadEvent(
            time_s=self.time_s,
            user_id=self.user_id,
            query=self.query,
            context=self.context,
            is_followup=self.is_followup,
            intent_key=self.intent_key,
        )


class MicroBatcher:
    """The admission queue + flush policy, as a pure deterministic core.

    All time flows in through arguments (``now``), so the class is directly
    testable under arbitrary arrival/flush interleavings — the Hypothesis
    suite in ``tests/test_server_properties.py`` drives exactly this object.
    Invariants it maintains (and the tests assert):

    * pending depth never exceeds ``max_queue_depth``; an ``offer`` beyond
      the bound raises :class:`BackpressureError` and the request is never
      stored;
    * every admitted request is drained exactly once, in global FIFO offer
      order (which implies per-user FIFO);
    * :meth:`due` fires iff the batch is full or the oldest pending request
      has waited ``max_wait_s``.

    The class is not thread-safe; the server only touches it from its event
    loop (live mode) or the replaying thread (deterministic mode).
    """

    def __init__(
        self, max_batch_size: int, max_wait_s: float, max_queue_depth: int
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_queue_depth = max_queue_depth
        self._pending: Deque[Tuple[float, object]] = deque()
        self.admitted = 0
        self.shed = 0
        self.drained = 0

    @property
    def depth(self) -> int:
        """Number of pending (admitted, not yet drained) requests."""
        return len(self._pending)

    def offer(self, item: object, now: float) -> None:
        """Admit one request, or shed it with :class:`BackpressureError`."""
        if len(self._pending) >= self.max_queue_depth:
            self.shed += 1
            raise BackpressureError(len(self._pending), self.max_queue_depth)
        self._pending.append((float(now), item))
        self.admitted += 1

    def oldest_wait(self, now: float) -> float:
        """Seconds the oldest pending request has been waiting (0 if none)."""
        if not self._pending:
            return 0.0
        return max(0.0, float(now) - self._pending[0][0])

    def next_deadline(self) -> Optional[float]:
        """Absolute time at which the oldest pending request forces a flush."""
        if not self._pending:
            return None
        return self._pending[0][0] + self.max_wait_s

    def due(self, now: float) -> bool:
        """Whether a flush should fire now (batch full, or oldest aged out)."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch_size:
            return True
        return self.oldest_wait(now) >= self.max_wait_s

    def drain(self, limit: Optional[int] = None) -> List[object]:
        """Pop up to ``limit`` requests in FIFO order (``None`` = all).

        The default live flush passes ``max_batch_size``; the deterministic
        replay drains a whole virtual window in one call so window grouping
        matches the simulator's exactly.
        """
        if limit is None:
            limit = len(self._pending)
        batch = [self._pending.popleft()[1] for _ in range(min(limit, len(self._pending)))]
        self.drained += len(batch)
        return batch


class _Shard:
    """One shard: a lock plus the executor owning its users' caches."""

    def __init__(self, executor: BatchExecutor, name: str = "shard") -> None:
        self.lock = maybe_tracked_lock(name)
        self.executor = executor


class _SharedL2:
    """The optional shared second-tier cache, serialized behind its own lock.

    Plugged into every shard executor as the ``miss_fallback`` hook: a
    per-user miss probes this tier before paying the LLM, and LLM answers
    enrol here as well as in the user's own cache.  The lock is this tier's
    whole concurrency story — several shard executors may probe it at once.
    """

    def __init__(self, cache) -> None:
        self.lock = maybe_tracked_lock("shared.l2")
        self.adapter = CacheAdapter(guard_cache(cache, self.lock, "shared_l2"))

    def lookup(
        self, event: WorkloadEvent, embedding: Optional[np.ndarray]
    ) -> Optional[Tuple[str, float]]:
        """Probe the shared tier; returns (response, similarity) on a hit."""
        embs = None
        if embedding is not None:
            embs = np.atleast_2d(np.asarray(embedding, dtype=np.float64))
        with self.lock:
            result = self.adapter.lookup_batch(
                [event.query], [event.context], embeddings=embs
            )[0]
        if result.hit and result.response is not None:
            return result.response, result.similarity
        return None

    def enroll(self, event: WorkloadEvent, response: str, embedding) -> None:
        """Enrol an LLM answer into the shared tier."""
        with self.lock:
            self.adapter.enroll(
                event.query, response, event.context, event.user_id, embedding=embedding
            )


class CacheServer:
    """Asyncio cache service over hash-sharded per-user caches.

    Synchronous single-worker use (deterministic replay, unit tests) needs
    no event loop: :meth:`replay` drives the micro-batcher and shards
    inline.  Live use either runs inside an existing loop (``await
    server.submit(...)`` with ``async with server.serving()``), or lets the
    server own a loop on a daemon thread (:meth:`start` / :meth:`stop`) and
    drives it from real client threads via :meth:`submit_threadsafe` — the
    load generator's mode.
    """

    def __init__(
        self,
        cache_factory: Callable[[str], object],
        service: Optional[SimulatedLLMService] = None,
        config: Optional[ServerConfig] = None,
        encoder=None,
        compress: bool = False,
        shared_cache=None,
        adaptation: Optional[object] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """``cache_factory(user_id)`` supplies each user's cache instance.

        ``encoder`` (with ``compress`` matching the caches' config) enables
        the cross-user batched embed; without it each cache embeds its own
        flush slice.  ``service`` defaults to a thread-safe
        :class:`SimulatedLLMService` stamping requests on ``clock``.
        ``shared_cache`` adds the L2 tier.  ``adaptation`` hooks the online
        federated loop exactly as in the simulator (advance fires after
        each flush on the flush's max event time).
        """
        self.config = config or ServerConfig()
        self.clock = clock
        if service is None:
            service = SimulatedLLMService(clock=clock, thread_safe=True)
        self.service = service
        self.encoder = encoder
        self.compress = compress
        self.adaptation = adaptation
        self.metrics = ServerMetrics()
        self._factory = cache_factory
        self.shared = _SharedL2(shared_cache) if shared_cache is not None else None
        self._shards = [
            _Shard(
                BatchExecutor(
                    cache_factory=cache_factory,
                    service=service,
                    enroll_on_miss=self.config.enroll_on_miss,
                    adaptation=adaptation,
                    stamp_event_time=self.config.deterministic,
                    miss_fallback=self.shared,
                ),
                name=f"shard[{i}]",
            )
            for i in range(self.config.n_shards)
        ]
        self._registry_lock = maybe_tracked_lock("server.registry")
        self._user_shard: Dict[str, int] = {}
        self._cache_shard: Dict[int, int] = {}
        self._batcher = MicroBatcher(
            self.config.max_batch_size,
            self.config.max_batch_wait_s,
            self.config.max_queue_depth,
        )
        self._seq = 0
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._arrival: Optional[asyncio.Event] = None
        self._running = False

    # ------------------------------------------------------------------ #
    # Shard registry
    # ------------------------------------------------------------------ #
    def shard_of(self, user_id: str) -> int:
        """The shard index serving ``user_id`` (stable CRC32 hash).

        A user whose cache object is shared with users already living on
        another shard is re-homed onto that shard: one cache object is only
        ever touched under one shard lock.
        """
        shard = self._user_shard.get(user_id)
        if shard is not None:
            return shard
        with self._registry_lock:
            shard = self._user_shard.get(user_id)
            if shard is not None:
                return shard
            cache = self._factory(user_id)
            owner = self._cache_shard.get(id(cache))
            if owner is None:
                owner = zlib.crc32(user_id.encode("utf-8")) % self.config.n_shards
                self._cache_shard[id(cache)] = owner
            self._user_shard[user_id] = owner
            self._shards[owner].executor.register(user_id, cache)
            # Under REPRO_DEBUG_CONCURRENCY=1 the cache's index raises if
            # mutated without this shard's lock held (no-op otherwise).
            guard_cache(cache, self._shards[owner].lock, f"shard[{owner}].cache")
            return owner

    @property
    def n_users(self) -> int:
        """Users registered so far."""
        return len(self._user_shard)

    def cache_for(self, user_id: str):
        """The (possibly shared) cache object serving ``user_id``."""
        shard = self.shard_of(user_id)
        return self._shards[shard].executor.adapters[user_id].cache

    def storage_report(self) -> Dict[str, object]:
        """Server-wide bytes-vs-hit-rate accounting over every live cache.

        Covers all shard-local caches plus the optional shared L2 tier,
        each distinct cache object counted once; tiered caches contribute
        their per-tier breakdown — see
        :func:`repro.serving.scheduling.storage_report`.
        """
        caches = [
            adapter.cache
            for shard in self._shards
            for adapter in shard.executor.adapters.values()
        ]
        if self.shared is not None:
            caches.append(self.shared.adapter.cache)
        return storage_report(caches)

    # ------------------------------------------------------------------ #
    # Flush execution (shared by live + deterministic paths)
    # ------------------------------------------------------------------ #
    def _embed_flush(self, requests: Sequence[_PendingRequest]) -> Optional[np.ndarray]:
        """One cross-user encoder call for the whole flush (or None)."""
        if self.encoder is None or not self.config.precompute_embeddings:
            return None
        embs = self.encoder.encode(
            [r.query for r in requests], compress=self.compress
        )
        return np.atleast_2d(np.asarray(embs, dtype=np.float64))

    def _run_shard(
        self,
        shard: _Shard,
        events: List[WorkloadEvent],
        embeddings: Optional[np.ndarray],
    ) -> List[LookupOutcome]:
        """Execute one shard's slice of a flush under the shard lock.

        The shared L2 (if any) is consulted inside the executor's miss path
        via its ``miss_fallback`` hook; the L2 carries its own lock, so two
        shards probing it concurrently stay serialized there.
        """
        with shard.lock:
            outcomes = shard.executor.execute(events, embeddings=embeddings)
            if self.config.index_maintenance:
                shard.executor.maintenance()
            return outcomes

    def _classify_flush(
        self, requests: List[_PendingRequest]
    ) -> List[Tuple[_PendingRequest, LookupOutcome]]:
        """Group a flush by shard, execute each slice, restore input order.

        Shard slices run sequentially on the calling thread (each under its
        shard lock): flushes execute one at a time anyway — per-user FIFO
        depends on it — and with the GIL over NumPy-bound work, fanning the
        slices out to more threads buys nothing while risking pool
        starvation (this method already runs *on* the worker pool in live
        mode).  Cross-request amortization comes from the single flush-wide
        encoder call, not from shard parallelism.
        """
        events = [r.to_event() for r in requests]
        embeddings = self._embed_flush(requests)
        by_shard: Dict[int, List[int]] = {}
        for i, request in enumerate(requests):
            by_shard.setdefault(self.shard_of(request.user_id), []).append(i)
        results: List[Optional[LookupOutcome]] = [None] * len(requests)
        for shard_idx, rows in by_shard.items():
            shard_events = [events[i] for i in rows]
            shard_embs = (
                embeddings[np.asarray(rows)] if embeddings is not None else None
            )
            outcomes = self._run_shard(self._shards[shard_idx], shard_events, shard_embs)
            for i, outcome in zip(rows, outcomes):
                results[i] = outcome
        if self.adaptation is not None and events:
            self._advance_adaptation(max(e.time_s for e in events))
        return [(request, results[i]) for i, request in enumerate(requests)]

    def _advance_adaptation(self, now_s: float) -> None:
        """Fire adaptation rounds after a flush (serialized across shards)."""
        with self._registry_lock:
            self.adaptation.advance(now_s)

    def _record(
        self,
        request: _PendingRequest,
        outcome: LookupOutcome,
        batch_size: int,
        drained_at: float,
    ) -> ServerResponse:
        """Fold one flush result into the metrics and build the response."""
        source = outcome.source
        queue_wait = max(0.0, drained_at - request.enqueued_at)
        self.metrics.completed += 1
        self.metrics.hits += int(outcome.hit)
        self.metrics.shared_hits += int(source == "shared")
        self.metrics.llm_requests += int(not outcome.hit)
        self.metrics.queue_wait.record(int(queue_wait * 1e9))
        return ServerResponse(
            user_id=request.user_id,
            query=request.query,
            hit=outcome.hit,
            response=outcome.response,
            source=source,
            similarity=outcome.similarity,
            cache_overhead_s=outcome.cache_overhead_s,
            llm_latency_s=outcome.llm_latency_s,
            cost_usd=outcome.cost_usd,
            queue_wait_s=queue_wait,
            batch_size=batch_size,
        )

    # ------------------------------------------------------------------ #
    # Deterministic replay (single-worker mode)
    # ------------------------------------------------------------------ #
    def replay(
        self,
        trace: Trace,
        batch_window_s: float = 0.25,
        collect_outcomes: bool = False,
    ) -> FleetResult:
        """Replay a trace synchronously through the full serving path.

        Events are offered to the admission queue window by window (the
        same virtual-time windows the simulator schedules) and each window
        drains as one flush, so per-event decisions are byte-identical to
        :meth:`FleetSimulator.run` on the same trace — the parity pin.
        Requires ``deterministic=True`` in the config (single worker,
        virtual time stamps).  Events shed by the admission bound appear in
        no aggregate except ``metrics.shed`` (size the queue generously when
        parity matters).
        """
        if not self.config.deterministic:
            raise ValueError("replay requires ServerConfig(deterministic=True)")
        per_user: Dict[str, UserStats] = {}
        outcomes: List[LookupOutcome] = []
        virtual_end = 0.0
        start = time.perf_counter()
        for window in iter_windows(trace.events, batch_window_s):
            requests: List[_PendingRequest] = []
            for event in window:
                request = _PendingRequest(
                    seq=self._seq,
                    user_id=event.user_id,
                    query=event.query,
                    context=tuple(event.context),
                    time_s=event.time_s,
                    enqueued_at=event.time_s,
                    intent_key=event.intent_key,
                    is_followup=event.is_followup,
                )
                self._seq += 1
                try:
                    self._batcher.offer(request, now=event.time_s)
                except BackpressureError:
                    self.metrics.shed += 1
                    continue
                requests.append(request)
            drained = self._batcher.drain(limit=None)
            assert drained == requests
            if not drained:
                continue
            self.metrics.flushes += 1
            self.metrics.batch_sizes.append(len(drained))
            for request, outcome in self._classify_flush(drained):
                self._record(request, outcome, len(drained), request.enqueued_at)
                stats = per_user.setdefault(request.user_id, UserStats())
                stats.record(outcome)
                virtual_end = max(
                    virtual_end, outcome.event.time_s + outcome.total_latency_s
                )
                if collect_outcomes:
                    outcomes.append(outcome)
        wall_clock = time.perf_counter() - start
        return FleetResult(
            n_users=len(per_user),
            n_events=len(trace),
            virtual_duration_s=virtual_end,
            wall_clock_s=wall_clock,
            per_user=per_user,
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------ #
    # Live asyncio serving
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        user_id: str,
        query: str,
        context: Sequence[str] = (),
        intent_key: str = "",
    ) -> ServerResponse:
        """Admit one request and await its flushed result.

        Raises :class:`BackpressureError` immediately when the admission
        queue is at its bound (the request is shed, not queued).
        """
        if self._loop is None:
            raise RuntimeError("server is not running; call start() or serve()")
        now = self.clock()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        request = _PendingRequest(
            seq=self._seq,
            user_id=user_id,
            query=query,
            context=tuple(context),
            time_s=now,
            enqueued_at=now,
            future=future,
            intent_key=intent_key,
        )
        self._seq += 1
        try:
            self._batcher.offer(request, now=now)
        except BackpressureError:
            self.metrics.shed += 1
            raise
        self.metrics.depth_samples.append(self._batcher.depth)
        self.metrics.max_depth_seen = max(
            self.metrics.max_depth_seen, self._batcher.depth
        )
        if self._arrival is not None:
            self._arrival.set()
        response = await future
        self.metrics.e2e_latency.record(int((self.clock() - now) * 1e9))
        return response

    def submit_threadsafe(
        self, user_id: str, query: str, context: Sequence[str] = ()
    ) -> "concurrent.futures.Future[ServerResponse]":
        """Submit from any thread into the server's own loop (see start())."""
        if self._loop is None:
            raise RuntimeError("server is not running; call start() first")
        return asyncio.run_coroutine_threadsafe(
            self.submit(user_id, query, context), self._loop
        )

    async def _flush(self, batch: List[_PendingRequest]) -> None:
        """Execute one drained batch and resolve its futures."""
        drained_at = self.clock()
        self.metrics.flushes += 1
        self.metrics.batch_sizes.append(len(batch))
        loop = asyncio.get_running_loop()
        try:
            if self._pool is not None and not self.config.deterministic:
                pairs = await loop.run_in_executor(
                    self._pool, self._classify_flush, batch
                )
            else:
                pairs = self._classify_flush(batch)
        except BaseException as exc:  # pragma: no cover - defensive
            for request in batch:
                if request.future is not None and not request.future.done():
                    request.future.set_exception(exc)
            raise
        for request, outcome in pairs:
            response = self._record(request, outcome, len(batch), drained_at)
            if request.future is not None and not request.future.done():
                request.future.set_result(response)

    async def _batch_loop(self) -> None:
        """Coalesce pending requests into flushes (max-batch or max-wait)."""
        assert self._arrival is not None
        while self._running or self._batcher.depth:
            if self._batcher.depth == 0:
                self._arrival.clear()
                if not self._running:
                    break
                try:
                    await asyncio.wait_for(self._arrival.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    continue
            now = self.clock()
            if not self._batcher.due(now):
                deadline = self._batcher.next_deadline()
                delay = max(0.0, (deadline or now) - now)
                self._arrival.clear()
                try:
                    # Wake early on new arrivals (the batch may fill before
                    # the oldest request ages out).
                    await asyncio.wait_for(self._arrival.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
                if not self._batcher.due(self.clock()) and self._running:
                    continue
            batch = self._batcher.drain(limit=self.config.max_batch_size)
            if batch:
                await self._flush(batch)

    # -- lifecycle ------------------------------------------------------ #
    async def serve(self) -> None:
        """Start serving inside the *current* event loop (async context)."""
        if self._running:
            return
        self._loop = asyncio.get_running_loop()
        self._arrival = asyncio.Event()
        if not self.config.deterministic:
            # One worker is the sweet spot: flushes execute sequentially
            # (per-user FIFO requires it) while the event loop stays free to
            # admit arrivals — which is what fills the next batch.
            workers = self.config.worker_threads or 1
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="cache-server"
            )
        self._running = True
        self._batch_task = asyncio.get_running_loop().create_task(self._batch_loop())

    async def shutdown(self) -> None:
        """Drain pending requests and stop the batch loop."""
        if not self._running:
            return
        self._running = False
        if self._arrival is not None:
            self._arrival.set()
        if self._batch_task is not None:
            await self._batch_task
            self._batch_task = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._loop = None

    def start(self) -> None:
        """Run the server's event loop on a dedicated daemon thread.

        The load-generator mode: real client threads then call
        :meth:`submit_threadsafe`.  Pair with :meth:`stop`.
        """
        if self._loop_thread is not None:
            raise RuntimeError("server already started")
        ready = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def _main() -> None:
                await self.serve()
                ready.set()
                while self._running:
                    await asyncio.sleep(0.01)
                await self.shutdown()

            loop.run_until_complete(_main())
            loop.close()

        self._loop_thread = threading.Thread(
            target=_run, name="cache-server-loop", daemon=True
        )
        self._loop_thread.start()
        ready.wait()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop a :meth:`start`-ed server, draining pending requests."""
        if self._loop_thread is None:
            return
        self._running = False
        if self._loop is not None and self._arrival is not None:
            self._loop.call_soon_threadsafe(self._arrival.set)
        self._loop_thread.join(timeout=timeout)
        self._loop_thread = None
