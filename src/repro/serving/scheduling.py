"""The shared scheduling layer under every serving frontend.

PR 2 gave the repo a deterministic virtual-clock simulator
(:class:`~repro.serving.fleet.FleetSimulator`); the live asyncio server
(:class:`~repro.serving.server.CacheServer`) needs to drive the *same*
pipeline stages under real wall-clock concurrency.  This module factors the
piece both share — "take a batch of arrivals, classify them through their
caches, forward misses to the LLM service, enrol" — out of the simulator so
the two frontends cannot drift:

* :class:`CacheAdapter` — normalises any cache variant (MeanCache decision
  objects, GPTCache decisions, KeywordCache's plain ``Optional[str]``) to one
  batched lookup/enroll surface.
* :class:`BatchExecutor` — executes one batch of
  :class:`~repro.serving.workload.WorkloadEvent` arrivals with the
  two-phase semantics the simulator pinned byte-exact in PR 2: **all** of a
  batch's lookups complete before **any** of its misses enrol, so no event
  can hit an entry enrolled by a later-arriving event and results are
  independent of grouping order.  The executor owns the per-cache intent
  oracle (hit verification), the optional online-adaptation hookup, and the
  deferred index-maintenance pass.
* :class:`Scheduler` — turns a trace into an ordered stream of batches.
  :class:`VirtualClockScheduler` is the simulator's windowing policy
  (arrivals within ``batch_window_s`` of a window's first event batch
  together); the live server's adaptive micro-batcher
  (:class:`~repro.serving.server.MicroBatcher`) is the wall-clock
  counterpart.  ``tests/test_serving_parity.py`` replays one trace through
  both frontends and asserts byte-identical per-event decisions.

Concurrency contract
--------------------
:class:`BatchExecutor` is **not** thread-safe: it mutates caches, whose
index backends share scratch buffers and rewire postings in place (no
:class:`~repro.index.VectorIndex` backend supports concurrent calls — see
``docs/api.md``).  The simulator runs one executor on one thread; the server
runs one executor per shard and serializes each behind that shard's lock.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clock import VirtualClock
from repro.serving.workload import Trace, WorkloadEvent


@dataclass
class LookupOutcome:
    """Variant-agnostic result of one served lookup."""

    event: WorkloadEvent
    hit: bool
    response: Optional[str]
    cache_overhead_s: float = 0.0
    llm_latency_s: float = 0.0
    cost_usd: float = 0.0
    #: probe embedding from the lookup (reused by enrolment; None for
    #: non-vector variants)
    embedding: Optional[object] = None
    #: best retrieved similarity (1.0/0.0 for exact-match variants); feeds
    #: the online adaptation loop's near-threshold miss mining
    similarity: float = 0.0
    #: the matched entry's query text on a hit (None when the variant does
    #: not report one)
    matched_query: Optional[str] = None
    #: hit verification against the workload's intent oracle: True = the hit
    #: answered the probe's intent, False = a false hit, None = unverifiable
    #: (miss, no intent metadata, or an entry the fleet never saw enrol)
    verified: Optional[bool] = None
    #: where the response came from: ``"local"`` (the user's cache tier),
    #: ``"shared"`` (the executor's miss fallback, e.g. the server's L2) or
    #: ``"llm"`` (a full miss forwarded to the service)
    source: str = "llm"

    @property
    def total_latency_s(self) -> float:
        """Latency the user experienced for this query."""
        return self.cache_overhead_s + self.llm_latency_s


@dataclass
class BatchLookup:
    """One normalised per-query result out of :meth:`CacheAdapter.lookup_batch`."""

    hit: bool
    response: Optional[str]
    overhead_s: float
    embedding: Optional[object]
    similarity: float
    matched_query: Optional[str]
    top_query: Optional[str]


class CacheAdapter:
    """Normalises any cache variant to one batched lookup/enroll surface."""

    def __init__(self, cache) -> None:
        """Wrap ``cache`` and sniff its batched-lookup capabilities."""
        self.cache = cache
        params = inspect.signature(cache.lookup_batch).parameters
        self._accepts_contexts = "contexts" in params
        self._accepts_embeddings = "embeddings" in params

    def lookup_batch(
        self,
        queries: Sequence[str],
        contexts: Sequence[Sequence[str]],
        embeddings: Optional[np.ndarray] = None,
    ) -> List[BatchLookup]:
        """Batched lookup normalised to one :class:`BatchLookup` per query.

        Decision objects must expose ``hit``/``response``/``total_overhead_s``
        (attribute errors surface loudly rather than skewing aggregates with
        silent defaults); ``similarity``/``matched_query`` are optional (the
        adaptation loop degrades gracefully without them).  A bare
        ``str | None`` is the exact-match shape: similarity 1.0 on a hit.

        ``embeddings`` (one row per query) is the cross-cache micro-batcher's
        amortization hook: when the serving layer already embedded the whole
        flush with one encoder call, vector caches skip their own Embed stage.
        Variants that cannot consume precomputed embeddings (the keyword
        baseline) silently ignore them.
        """
        kwargs: Dict[str, object] = {}
        if self._accepts_contexts:
            kwargs["contexts"] = [list(c) for c in contexts]
        if self._accepts_embeddings and embeddings is not None:
            kwargs["embeddings"] = embeddings
        raw = self.cache.lookup_batch(list(queries), **kwargs)
        outcomes: List[BatchLookup] = []
        for item in raw:
            if item is None or isinstance(item, str):
                # KeywordCache-style: the response itself (or None on miss).
                outcomes.append(
                    BatchLookup(
                        hit=item is not None,
                        response=item,
                        overhead_s=0.0,
                        embedding=None,
                        similarity=1.0 if item is not None else 0.0,
                        matched_query=None,
                        top_query=None,
                    )
                )
            else:
                outcomes.append(
                    BatchLookup(
                        hit=bool(item.hit),
                        response=item.response,
                        overhead_s=float(item.total_overhead_s),
                        embedding=getattr(item, "embedding", None),
                        similarity=float(getattr(item, "similarity", 0.0)),
                        matched_query=getattr(item, "matched_query", None),
                        top_query=getattr(item, "top_candidate_query", None),
                    )
                )
        return outcomes

    def enroll(
        self,
        query: str,
        response: str,
        context: Sequence[str],
        user_id: str,
        embedding: Optional[object] = None,
    ) -> None:
        """Enrol through the variant's pipeline Enroll/Evict stage.

        ``user_id`` keeps per-user attribution in central shared caches
        (per-device caches ignore it); ``embedding`` reuses the lookup's
        Embed-stage output so enrolment skips a second encoder forward.
        """
        pipeline = getattr(self.cache, "pipeline", None)
        if pipeline is not None and pipeline.enroll is not None:
            pipeline.enroll.enroll(
                query, response, context=context, user_id=user_id, embedding=embedding
            )
        else:  # pragma: no cover - every repo variant has a pipeline
            self.cache.insert(query, response)


class BatchExecutor:
    """Executes batches of arrivals against per-user caches + one service.

    The execution core shared by :class:`~repro.serving.fleet.FleetSimulator`
    and :class:`~repro.serving.server.CacheServer`.  One executor owns a set
    of users' caches (created through ``cache_factory`` on first use), the
    per-cache intent oracle used to verify hits, and the optional online
    adaptation hookup; :meth:`execute` runs one batch with the pinned
    two-phase semantics (all lookups, then misses/enrolment in arrival
    order).

    ``stamp_event_time=True`` (the simulator) timestamps LLM requests with
    each event's virtual arrival time; ``False`` (the live server) lets the
    service read its own injected wall clock instead — the two-clocks fix
    from :class:`~repro.llm.service.SimulatedLLMService`.

    ``miss_fallback`` inserts a second cache tier between a local miss and
    the LLM: an object with ``lookup(event, embedding) ->
    Optional[(response, similarity)]`` (probe the tier) and
    ``enroll(event, response, embedding)`` (called after the LLM answers a
    full miss).  The server wires its optional shared L2 through this hook;
    the hook object owns its own synchronization (it may be contended by
    several shard executors at once).
    """

    def __init__(
        self,
        cache_factory: Callable[[str], object],
        service,
        enroll_on_miss: bool = True,
        adaptation: Optional[object] = None,
        stamp_event_time: bool = True,
        miss_fallback: Optional[object] = None,
    ) -> None:
        self.cache_factory = cache_factory
        self.service = service
        self.enroll_on_miss = enroll_on_miss
        self.adaptation = adaptation
        self.stamp_event_time = stamp_event_time
        self.miss_fallback = miss_fallback
        #: Simulation runs (``stamp_event_time=True``) drive every cache's
        #: entry timestamps from this virtual clock, advanced to each
        #: window's max event time before lookups run — entry TTL/recency
        #: state then depends only on the trace, not on wall speed or
        #: processing order.  The live server keeps caches on wall time.
        self.virtual_clock: Optional[VirtualClock] = (
            VirtualClock() if stamp_event_time else None
        )
        self.adapters: Dict[str, CacheAdapter] = {}
        #: per underlying cache object: enrolled query text -> intent key,
        #: the oracle used to verify hits (user feedback stand-in)
        self._intent_maps: Dict[int, Dict[str, str]] = {}
        self._touched: Dict[int, CacheAdapter] = {}
        self._service_accepts_now = "now" in inspect.signature(service.query).parameters

    # ------------------------------------------------------------------ #
    def register(self, user_id: str, cache) -> CacheAdapter:
        """Attach a user's cache (intent oracle + adaptation loop).

        Idempotent per user; a cache object shared by several users gets one
        intent map no matter how many users route to it.
        """
        adapter = self.adapters.get(user_id)
        if adapter is None or adapter.cache is not cache:
            adapter = CacheAdapter(cache)
            self.adapters[user_id] = adapter
            self._intent_maps.setdefault(id(cache), {})
            if self.virtual_clock is not None:
                set_clock = getattr(cache, "set_clock", None)
                if callable(set_clock):
                    set_clock(self.virtual_clock)
            if self.adaptation is not None:
                self.adaptation.register_user(user_id, cache)
        return adapter

    def adapter(self, user_id: str) -> CacheAdapter:
        """The user's cache adapter, creating it via the factory on first use."""
        adapter = self.adapters.get(user_id)
        if adapter is None:
            adapter = self.register(user_id, self.cache_factory(user_id))
        return adapter

    # ------------------------------------------------------------------ #
    def execute(
        self,
        events: Sequence[WorkloadEvent],
        embeddings: Optional[np.ndarray] = None,
    ) -> List[LookupOutcome]:
        """Run one batch of arrivals; returns outcomes in input order.

        Phase 1 — lookups.  The batch's arrivals are grouped by *underlying
        cache object* (per-user fleets: one group per user; a shared central
        cache: one group for the whole batch), preserving arrival order
        within each group, and each group is classified with one
        ``lookup_batch`` call.  ``embeddings`` (one row per event, e.g. the
        server's single cross-user encoder call for the whole flush) is
        sliced per group and handed to caches that accept precomputed
        embeddings.

        Phase 2 — misses and enrolment, in input order.  All lookups
        complete before any enrolment, so a decision can only depend on
        entries enrolled by *previous* batches — no event can hit an entry
        enrolled by a later-arriving event, even on a shared cache, and
        results are independent of grouping order.
        """
        if self.virtual_clock is not None and len(events):
            # Window-level stamping: every entry enrolled by this batch is
            # stamped with the window's max arrival time, so stamps are
            # independent of intra-window processing order (pinned in
            # tests/test_clock.py).
            self.virtual_clock.advance_to(max(e.time_s for e in events))
        by_cache: Dict[int, Tuple[CacheAdapter, List[int]]] = {}
        for i, event in enumerate(events):
            adapter = self.adapter(event.user_id)
            by_cache.setdefault(id(adapter.cache), (adapter, []))[1].append(i)
        looked_up: Dict[int, BatchLookup] = {}
        for adapter, rows in by_cache.values():
            group = [events[i] for i in rows]
            group_embs = embeddings[np.asarray(rows)] if embeddings is not None else None
            results = adapter.lookup_batch(
                [e.query for e in group],
                [e.context for e in group],
                embeddings=group_embs,
            )
            for i, result in zip(rows, results):
                looked_up[i] = result
        self._touched = {id(a.cache): a for a, _ in by_cache.values()}

        outcomes: List[LookupOutcome] = []
        for i, event in enumerate(events):
            result = looked_up[i]
            adapter = self.adapters[event.user_id]
            intent_map = self._intent_maps[id(adapter.cache)]
            # Verification against the intent oracle (the user-feedback
            # stand-in): on a hit, whether the served entry answers the
            # probe's intent; on a miss, whether the *top retrieved
            # candidate* would have (feeding near-miss pair mining).
            verified: Optional[bool] = None
            reference = result.matched_query if result.hit else result.top_query
            if reference is not None and event.intent_key:
                reference_intent = intent_map.get(reference)
                if reference_intent is not None:
                    verified = reference_intent == event.intent_key
            outcome = LookupOutcome(
                event=event,
                hit=result.hit,
                response=result.response,
                cache_overhead_s=result.overhead_s,
                embedding=result.embedding,
                similarity=result.similarity,
                matched_query=result.matched_query,
                verified=verified,
                source="local" if result.hit else "llm",
            )
            if not result.hit:
                fallback_hit = None
                if self.miss_fallback is not None:
                    fallback_hit = self.miss_fallback.lookup(event, result.embedding)
                if fallback_hit is not None:
                    response, similarity = fallback_hit
                    outcome.hit = True
                    outcome.response = response
                    outcome.similarity = max(outcome.similarity, float(similarity))
                    outcome.source = "shared"
                else:
                    kwargs: Dict[str, object] = {}
                    if self._service_accepts_now and self.stamp_event_time:
                        kwargs["now"] = event.time_s
                    llm = self.service.query(
                        event.query,
                        client_id=event.user_id,
                        context=list(event.context),
                        **kwargs,
                    )
                    outcome.response = llm.text
                    outcome.llm_latency_s = llm.latency_s
                    outcome.cost_usd = llm.cost_usd
                    if self.enroll_on_miss:
                        adapter.enroll(
                            event.query,
                            llm.text,
                            event.context,
                            event.user_id,
                            embedding=result.embedding,
                        )
                        if event.intent_key:
                            intent_map[event.query] = event.intent_key
                        if self.miss_fallback is not None:
                            self.miss_fallback.enroll(
                                event, llm.text, result.embedding
                            )
            if self.adaptation is not None:
                self.adaptation.observe(
                    event.user_id,
                    similarity=outcome.similarity,
                    hit=outcome.hit,
                    verified=outcome.verified,
                    followup=event.is_followup,
                    query=event.query,
                    matched_query=outcome.matched_query or result.top_query,
                    time_s=event.time_s,
                )
            outcomes.append(outcome)
        return outcomes

    def advance_adaptation(self, now_s: float) -> None:
        """Fire adaptation rounds due at ``now_s`` (no-op without a loop)."""
        if self.adaptation is not None:
            self.adaptation.advance(now_s)

    def maintenance(self) -> None:
        """Deferred background work for every cache the last batch touched.

        IVF repartitioning (``auto_repartition=False``), probe-bound stat
        refreshes, layout compaction and snapshot delta-log folding run
        here, between batches — the query path itself never pays for
        reorganization.  A cache exposing its own ``maintenance()`` (the
        tiered cache compacts its L2 delta log there) owns the whole hook;
        otherwise the executor falls through to the cache's index.
        """
        for adapter in self._touched.values():
            maintain = getattr(adapter.cache, "maintenance", None)
            if maintain is not None:
                maintain()
                continue
            index = getattr(adapter.cache, "index", None)
            if index is not None and hasattr(index, "maintenance"):
                index.maintenance()


# --------------------------------------------------------------------------- #
# Schedulers
# --------------------------------------------------------------------------- #
def storage_report(caches: Iterable[object]) -> Dict[str, object]:
    """Fleet-level bytes-vs-hit-rate accounting over a set of cache objects.

    Shared by :meth:`FleetSimulator.storage_report` and
    :meth:`CacheServer.storage_report`.  Each distinct cache *object* is
    counted once (pass duplicates freely — a shared central cache routed to
    by many users does not multiply).  Tiered caches contribute a per-tier
    breakdown, and a quantized tier shared by several tiered caches is
    counted once on both the bytes and the hit-counter side.
    """
    seen: Dict[int, object] = {}
    shared_tiers: Dict[int, object] = {}
    total_bytes = 0
    total_entries = 0
    l1_bytes = l2_bytes = l1_entries = l2_entries = 0
    lookups = hits = 0
    for cache in caches:
        if id(cache) in seen:
            continue
        seen[id(cache)] = cache
        entries = len(cache) if hasattr(cache, "__len__") else 0
        breakdown = getattr(cache, "storage_breakdown", None)
        if breakdown is not None:
            # A tiered cache: count its L1 per cache and its quantized tier
            # once even when shared (a shared tier's hits would otherwise be
            # re-added through every owner's combined stats).
            tier = getattr(cache, "l2", None)
            tier_is_new = tier is not None and id(tier) not in shared_tiers
            tier_stats = cache.tier_stats()
            lookups += int(tier_stats["l1"].lookups)
            hits += int(tier_stats["l1"].hits)
            if tier_is_new:
                hits += int(tier_stats["l2"].hits)
            parts = breakdown()
            if tier is not None and not tier_is_new:
                parts = dict(parts)
                parts["l2_bytes"] = 0
                parts["l2_entries"] = 0
            elif tier is not None:
                shared_tiers[id(tier)] = tier
            l1_bytes += int(parts["l1_bytes"])
            l2_bytes += int(parts["l2_bytes"])
            l1_entries += int(parts["l1_entries"])
            l2_entries += int(parts["l2_entries"])
            cache_bytes = int(parts["l1_bytes"]) + int(parts["l2_bytes"])
            entries = int(parts["l1_entries"]) + int(parts["l2_entries"])
        else:
            stats = getattr(cache, "stats", None)
            if stats is not None:
                lookups += int(getattr(stats, "lookups", 0))
                hits += int(getattr(stats, "hits", 0))
            embedding_bytes = getattr(cache, "embedding_storage_bytes", None)
            cache_bytes = int(embedding_bytes()) if embedding_bytes else 0
            cache_bytes += int(getattr(getattr(cache, "index", None), "nbytes", 0))
        total_bytes += cache_bytes
        total_entries += entries
    return {
        "n_caches": len(seen),
        "total_entries": total_entries,
        "total_bytes": total_bytes,
        "bytes_per_entry": total_bytes / total_entries if total_entries else 0.0,
        "hit_rate": hits / lookups if lookups else 0.0,
        "l1_entries": l1_entries,
        "l1_bytes": l1_bytes,
        "l2_entries": l2_entries,
        "l2_bytes": l2_bytes,
    }


def iter_windows(
    events: Iterable[WorkloadEvent], width: float
) -> Iterator[List[WorkloadEvent]]:
    """Split an event stream into virtual-time batching windows.

    The stream is re-sorted by arrival time first: the windowing and the
    "enrolments become visible next window" invariant both assume time
    order, and a hand-merged replay file may not provide it.
    """
    ordered = sorted(events, key=lambda e: (e.time_s, e.user_id))
    window: List[WorkloadEvent] = []
    window_end: Optional[float] = None
    for event in ordered:
        if window_end is None:
            window_end = event.time_s + width
        if event.time_s <= window_end:
            window.append(event)
        else:
            yield window
            window = [event]
            window_end = event.time_s + width
    if window:
        yield window


class Scheduler:
    """Turns a trace into an ordered stream of executor batches.

    A scheduler decides *which arrivals run together*; the
    :class:`BatchExecutor` decides what happens inside a batch.  The
    deterministic simulator and the live server differ only in scheduler:
    virtual-time windows vs a wall-clock adaptive micro-batcher.
    """

    def batches(self, trace: Trace) -> Iterator[List[WorkloadEvent]]:
        """Yield the trace's events as ordered batches."""
        raise NotImplementedError


class VirtualClockScheduler(Scheduler):
    """The simulator's policy: batch arrivals within ``batch_window_s``.

    Windowed batching has the standard batched-lookup semantics: all of a
    window's lookups complete before any of its misses enrol, so an entry
    enrolled in window *k* is visible from window *k+1* on.  Duplicate
    queries that miss inside the *same* window therefore each pay the LLM
    and each enrol; ``batch_window_s=0`` batches only simultaneous arrivals,
    approaching sequential semantics.
    """

    def __init__(self, batch_window_s: float = 0.25) -> None:
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.batch_window_s = batch_window_s

    def batches(self, trace: Trace) -> Iterator[List[WorkloadEvent]]:
        """Yield virtual-time windows over the trace."""
        return iter_windows(trace.events, self.batch_window_s)
