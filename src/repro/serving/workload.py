"""Deterministic multi-user workload generation (the fleet's traffic source).

The paper's setting is a *fleet* of user devices, each running a local
MeanCache in front of one shared LLM web service.  :class:`WorkloadGenerator`
produces that fleet's traffic as a :class:`Trace` — a time-ordered stream of
:class:`WorkloadEvent` arrivals — from a handful of seeded stochastic knobs:

* **arrival process** — each user emits queries as an independent Poisson
  process (exponential inter-arrival times at ``arrival_rate_qps``);
* **per-user query mix** — every user draws a Dirichlet preference vector
  over the corpus domains, so users have distinct topical habits;
* **conversations** — with probability ``followup_rate`` a query continues
  the user's current conversation and carries its context chain;
* **duplicates** — with probability ``duplicate_rate`` a query re-asks (as a
  fresh paraphrase) an intent from the user's own history: the traffic that
  a local semantic cache should convert into hits.

Everything derives from ``(seed, user_index)`` so a trace is reproducible
event-for-event, and traces serialize to/from JSON for **traffic replay**:
record once, re-run against any cache variant or fleet configuration.

**Non-stationary scenarios.**  Real fleet traffic drifts; the online
federated adaptation loop (:mod:`repro.federated.online`) needs something to
chase.  :class:`DriftPhase` entries on ``WorkloadConfig.drift_phases`` apply
mid-stream overrides to every user — paraphrase/duplicate-rate shifts and
domain-mix drift (each user re-draws its Dirichlet preference vector, so the
topical mix of its traffic — and with it the hard-negative density its cache
faces — changes) — while ``churn_fraction`` replaces a share of the users
mid-stream with cold-start successors (fresh id, empty history, new domain
mix).  A config without drift knobs generates streams identical to the
stationary generator, so existing traces and benchmarks are unaffected.

**Arrival schedules.**  :class:`ArrivalSchedule` layers diurnal cycles and
flash crowds on the Poisson arrivals as a pure time-warp of the drawn
arrival times (inhomogeneous-Poisson time rescaling).  The warp runs after
generation and consumes no RNG draws, so schedules can never perturb the
seeded query contents — the structural guarantee the scenario zoo
(:mod:`repro.serving.scenarios`) builds on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.corpus import Corpus


@dataclass(frozen=True)
class WorkloadEvent:
    """One query arrival in the fleet trace."""

    time_s: float
    user_id: str
    query: str
    context: Tuple[str, ...] = ()
    is_followup: bool = False
    kind: str = "unique"  # "unique" | "duplicate"
    intent_key: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the replay file format)."""
        return {
            "time_s": self.time_s,
            "user_id": self.user_id,
            "query": self.query,
            "context": list(self.context),
            "is_followup": self.is_followup,
            "kind": self.kind,
            "intent_key": self.intent_key,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time_s=float(data["time_s"]),
            user_id=str(data["user_id"]),
            query=str(data["query"]),
            context=tuple(data.get("context", ())),
            is_followup=bool(data.get("is_followup", False)),
            kind=str(data.get("kind", "unique")),
            intent_key=str(data.get("intent_key", "")),
        )


@dataclass
class Trace:
    """A time-ordered fleet traffic trace (the replayable artefact)."""

    events: List[WorkloadEvent]
    n_users: int
    seed: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration_s(self) -> float:
        """Virtual time of the last arrival."""
        return self.events[-1].time_s if self.events else 0.0

    @property
    def user_ids(self) -> List[str]:
        """Distinct users appearing in the trace (sorted)."""
        return sorted({e.user_id for e in self.events})

    def events_for_user(self, user_id: str) -> List[WorkloadEvent]:
        """This user's arrivals, in time order."""
        return [e for e in self.events if e.user_id == user_id]

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of events re-asking an intent from the user's history."""
        if not self.events:
            return 0.0
        return sum(e.kind == "duplicate" for e in self.events) / len(self.events)

    # ------------------------------------------------------------------ #
    # Replay serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form of the whole trace."""
        return {
            "n_users": self.n_users,
            "seed": self.seed,
            "metadata": dict(self.metadata),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Trace":
        """Inverse of :meth:`to_dict`.

        Events are re-sorted by arrival time, so hand-edited or merged
        replay files are normalised back to a valid time-ordered stream.
        """
        events = [WorkloadEvent.from_dict(e) for e in data["events"]]
        events.sort(key=lambda e: (e.time_s, e.user_id))
        return cls(
            events=events,
            n_users=int(data["n_users"]),
            seed=int(data.get("seed", 0)),
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, path: "str | Path") -> Path:
        """Write the trace as JSON (the traffic-replay file)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


@dataclass(frozen=True)
class ArrivalSchedule:
    """Deterministic rate profile layered on the Poisson arrival process.

    The stationary generator draws each user's arrivals as a *homogeneous*
    Poisson process.  A schedule reshapes those arrival times into an
    inhomogeneous process — diurnal load cycles, flash crowds — through the
    time-rescaling identity: a homogeneous arrival at virtual time ``u``
    lands at the warped time ``t`` solving ``∫₀ᵗ m(s) ds = u``, where
    ``m(t)`` is the schedule's rate multiplier.  Where ``m`` is large
    (peak hours, a flash crowd) arrivals compress together; where it is
    small they spread out.

    The warp is a pure, monotone transform of *already-drawn* times: it
    consumes no RNG draws and never touches event contents, so layering,
    changing or removing a schedule cannot perturb the per-user seeded
    query stream (``tests/test_serving.py`` pins that invariant with a
    golden digest).

    Attributes
    ----------
    kind:
        ``"constant"`` (identity), ``"diurnal"`` (sinusoidal load cycle) or
        ``"flash_crowd"`` (a rate spike over one interval).
    period_s:
        Diurnal cycle length in virtual seconds.
    amplitude:
        Diurnal multiplier swing: ``m(t) = 1 + amplitude·sin(2πt/period)``,
        so the rate oscillates in ``[1-amplitude, 1+amplitude]``; must stay
        below 1.0 to keep the intensity positive.
    flash_at_s, flash_duration_s, flash_multiplier:
        Flash-crowd window: between ``flash_at_s`` and
        ``flash_at_s + flash_duration_s`` the arrival rate is multiplied by
        ``flash_multiplier`` (≥ 1), compressing that interval's arrivals
        into a burst.
    """

    kind: str = "constant"
    period_s: float = 600.0
    amplitude: float = 0.6
    flash_at_s: float = 120.0
    flash_duration_s: float = 60.0
    flash_multiplier: float = 8.0

    #: grid points used for the numeric inversion of the cumulative rate
    _GRID_POINTS = 8193

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "diurnal", "flash_crowd"):
            raise ValueError(f"unknown arrival schedule kind: {self.kind!r}")
        if self.period_s <= 0:
            raise ValueError("period_s must be > 0")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.flash_at_s < 0:
            raise ValueError("flash_at_s must be >= 0")
        if self.flash_duration_s <= 0:
            raise ValueError("flash_duration_s must be > 0")
        if self.flash_multiplier < 1.0:
            raise ValueError("flash_multiplier must be >= 1")

    def rate_multiplier(self, times_s: "np.ndarray | float") -> np.ndarray:
        """The instantaneous rate multiplier ``m(t)`` (vectorized)."""
        t = np.asarray(times_s, dtype=np.float64)
        if self.kind == "diurnal":
            return 1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_s)
        if self.kind == "flash_crowd":
            in_flash = (t >= self.flash_at_s) & (
                t < self.flash_at_s + self.flash_duration_s
            )
            return np.where(in_flash, self.flash_multiplier, 1.0)
        return np.ones_like(t)

    def warp(self, times_s: Sequence[float]) -> np.ndarray:
        """Map homogeneous arrival times onto the schedule's clock.

        Solves ``Λ(t) = u`` for each input time ``u`` on a dense grid
        (``Λ`` is the cumulative rate multiplier), preserving order — the
        warp is strictly monotone because ``m(t) > 0`` everywhere.
        """
        times = np.asarray(times_s, dtype=np.float64)
        if self.kind == "constant" or times.size == 0:
            return times.copy()
        floor = 1.0 - self.amplitude if self.kind == "diurnal" else 1.0
        horizon = float(times.max()) / floor * 1.001 + 1.0
        grid = np.linspace(0.0, horizon, self._GRID_POINTS)
        m = self.rate_multiplier(grid)
        steps = np.diff(grid)
        cumulative = np.concatenate(
            [[0.0], np.cumsum(0.5 * (m[1:] + m[:-1]) * steps)]
        )
        return np.interp(times, cumulative, grid)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (stored in trace metadata)."""
        return {
            "kind": self.kind,
            "period_s": self.period_s,
            "amplitude": self.amplitude,
            "flash_at_s": self.flash_at_s,
            "flash_duration_s": self.flash_duration_s,
            "flash_multiplier": self.flash_multiplier,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArrivalSchedule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data.get("kind", "constant")),
            period_s=float(data.get("period_s", 600.0)),
            amplitude=float(data.get("amplitude", 0.6)),
            flash_at_s=float(data.get("flash_at_s", 120.0)),
            flash_duration_s=float(data.get("flash_duration_s", 60.0)),
            flash_multiplier=float(data.get("flash_multiplier", 8.0)),
        )


def apply_arrival_schedule(trace: "Trace", schedule: ArrivalSchedule) -> "Trace":
    """Re-time an existing trace under an arrival schedule.

    Returns a new :class:`Trace` whose events carry warped arrival times
    (contents untouched), re-sorted into the fleet's global time order; the
    schedule is recorded in the trace metadata.  Because the warp is a pure
    function of time, applying a schedule to a generated trace and
    generating with ``WorkloadConfig.arrival_schedule`` set produce the
    same result — the former is what scenario baselines use to compare one
    stream with and without its schedule.
    """
    times = schedule.warp([e.time_s for e in trace.events])
    events = [
        replace(event, time_s=float(t)) for event, t in zip(trace.events, times)
    ]
    events.sort(key=lambda e: (e.time_s, e.user_id))
    return Trace(
        events=events,
        n_users=trace.n_users,
        seed=trace.seed,
        metadata={**trace.metadata, "arrival_schedule": schedule.to_dict()},
    )


@dataclass(frozen=True)
class DriftPhase:
    """One mid-stream shift of the traffic distribution.

    Applies to every (non-churned-out) user from the query at
    ``start_fraction`` of its stream onward; unset fields keep the previous
    phase's value.

    Attributes
    ----------
    start_fraction:
        Position in each user's stream, as a fraction of
        ``queries_per_user`` in [0, 1], at which the overrides take effect.
    duplicate_rate:
        New probability of paraphrase re-asks (the paraphrase-rate shift).
    redraw_domain_mix:
        Re-draw the user's Dirichlet domain-preference vector — the user's
        topical habits drift to a new mix.
    domain_concentration:
        Dirichlet concentration used for re-draws from this phase on
        (defaults to the config's base concentration).
    paraphrase_bias:
        New canonical-object bias for query realisation (paraphrase-style
        drift): near 1.0 re-asks share the distinctive noun phrase and score
        high; near 0.0 they are weak paraphrases whose similarities — and
        with them the optimal admission threshold — shift down.
    """

    start_fraction: float
    duplicate_rate: Optional[float] = None
    redraw_domain_mix: bool = False
    domain_concentration: Optional[float] = None
    paraphrase_bias: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction <= 1.0:
            raise ValueError("start_fraction must be in [0, 1]")
        if self.duplicate_rate is not None and not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if self.domain_concentration is not None and self.domain_concentration <= 0:
            raise ValueError("domain_concentration must be > 0")
        if self.paraphrase_bias is not None and not 0.0 <= self.paraphrase_bias <= 1.0:
            raise ValueError("paraphrase_bias must be in [0, 1]")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (stored in trace metadata)."""
        return {
            "start_fraction": self.start_fraction,
            "duplicate_rate": self.duplicate_rate,
            "redraw_domain_mix": self.redraw_domain_mix,
            "domain_concentration": self.domain_concentration,
            "paraphrase_bias": self.paraphrase_bias,
        }


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the fleet traffic model.

    Attributes
    ----------
    n_users:
        Number of simulated user devices.
    queries_per_user:
        Arrivals generated per user.
    arrival_rate_qps:
        Per-user Poisson arrival rate (queries per virtual second).
    duplicate_rate:
        Probability a query re-asks (paraphrased) an intent from the user's
        own history — the cacheable fraction of the traffic.
    followup_rate:
        Probability a query continues the user's current conversation
        (carrying a context chain) rather than starting a fresh one.
    max_context_depth:
        Parent queries kept in a follow-up's context chain.
    domain_concentration:
        Dirichlet concentration of each user's domain-preference vector
        (lower = more specialised users).
    paraphrase_bias:
        Base canonical-object bias of query realisation (``None`` keeps the
        corpus default of 0.45); see :class:`DriftPhase.paraphrase_bias`.
    drift_phases:
        Mid-stream distribution shifts (see :class:`DriftPhase`), applied in
        ascending ``start_fraction`` order.  Empty = stationary traffic.
    churn_fraction:
        Probability that a user churns: at ``churn_point`` of its stream the
        device disappears and a cold-start successor (fresh id ``<uid>-r``,
        empty history, re-drawn domain mix) takes over its arrival slots.
    churn_point:
        Stream fraction at which churned users are replaced.
    arrival_schedule:
        Optional :class:`ArrivalSchedule` layered on the Poisson arrivals
        (diurnal cycles, flash crowds).  Applied as a pure time-warp *after*
        all per-user streams are drawn, so it can never perturb the seeded
        query contents; ``None`` keeps homogeneous arrivals.
    """

    n_users: int = 10
    queries_per_user: int = 20
    arrival_rate_qps: float = 0.2
    duplicate_rate: float = 0.3
    followup_rate: float = 0.25
    max_context_depth: int = 3
    domain_concentration: float = 1.0
    paraphrase_bias: Optional[float] = None
    drift_phases: Tuple[DriftPhase, ...] = ()
    churn_fraction: float = 0.0
    churn_point: float = 0.5
    arrival_schedule: Optional[ArrivalSchedule] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "drift_phases", tuple(self.drift_phases))
        starts = [p.start_fraction for p in self.drift_phases]
        if starts != sorted(starts):
            raise ValueError("drift_phases must be in ascending start_fraction order")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ValueError("churn_fraction must be in [0, 1]")
        if not 0.0 <= self.churn_point <= 1.0:
            raise ValueError("churn_point must be in [0, 1]")
        if self.paraphrase_bias is not None and not 0.0 <= self.paraphrase_bias <= 1.0:
            raise ValueError("paraphrase_bias must be in [0, 1]")
        if self.n_users < 1 or self.queries_per_user < 1:
            raise ValueError("n_users and queries_per_user must be >= 1")
        if self.arrival_rate_qps <= 0:
            raise ValueError("arrival_rate_qps must be > 0")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if not 0.0 <= self.followup_rate <= 1.0:
            raise ValueError("followup_rate must be in [0, 1]")
        if self.max_context_depth < 1:
            raise ValueError("max_context_depth must be >= 1")
        if self.domain_concentration <= 0:
            raise ValueError("domain_concentration must be > 0")


class WorkloadGenerator:
    """Generates deterministic fleet traffic traces.

    Every user's stream derives from ``(seed, user_index)`` alone, so traces
    are reproducible regardless of generation order and stable across runs.
    """

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        corpus: Optional[Corpus] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or WorkloadConfig()
        self.seed = seed
        self.corpus = corpus or Corpus(seed=seed)
        self._domains = list(self.corpus.domains)
        self._domain_intents = {
            d: self.corpus.intents_for_domain(d) for d in self._domains
        }

    # ------------------------------------------------------------------ #
    def user_id(self, user_index: int) -> str:
        """Canonical id of the ``user_index``-th simulated device."""
        return f"user-{user_index:05d}"

    def _user_rng(self, user_index: int) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence([self.seed, user_index]))

    def _user_events(self, user_index: int) -> List[WorkloadEvent]:
        """One user's whole arrival stream (independent of other users).

        Drift knobs consume RNG draws only when configured, so a config
        without them generates a stream identical to the stationary
        generator's.
        """
        cfg = self.config
        rng = self._user_rng(user_index)
        uid = self.user_id(user_index)
        mix = rng.dirichlet(np.full(len(self._domains), cfg.domain_concentration))
        duplicate_rate = cfg.duplicate_rate
        concentration = cfg.domain_concentration
        paraphrase_bias = cfg.paraphrase_bias
        # Fractions map to query indices clamped into the stream, so a
        # boundary of 1.0 still applies (from the final query) instead of
        # silently falling past the loop.  Phases that land on the same
        # index are all applied, in order — each one's unset fields keep the
        # previous phase's value, exactly as for distinct indices.
        last_index = cfg.queries_per_user - 1
        phase_starts: Dict[int, List[DriftPhase]] = {}
        for p in cfg.drift_phases:
            index = min(int(round(p.start_fraction * cfg.queries_per_user)), last_index)
            phase_starts.setdefault(index, []).append(p)
        churn_index = None
        if cfg.churn_fraction > 0 and rng.random() < cfg.churn_fraction:
            churn_index = min(
                int(round(cfg.churn_point * cfg.queries_per_user)), last_index
            )

        events: List[WorkloadEvent] = []
        history: List = []  # intents the user has asked before
        conversation: List[str] = []  # current conversation's turns
        t = 0.0
        for q_index in range(cfg.queries_per_user):
            for phase in phase_starts.get(q_index, ()):
                if phase.duplicate_rate is not None:
                    duplicate_rate = phase.duplicate_rate
                if phase.domain_concentration is not None:
                    concentration = phase.domain_concentration
                if phase.paraphrase_bias is not None:
                    paraphrase_bias = phase.paraphrase_bias
                if phase.redraw_domain_mix:
                    mix = rng.dirichlet(np.full(len(self._domains), concentration))
            if churn_index is not None and q_index == churn_index:
                # The device churns out; its arrival slots continue under a
                # cold-start successor with no history and fresh habits.
                uid = f"{uid}-r"
                history = []
                conversation = []
                mix = rng.dirichlet(np.full(len(self._domains), concentration))
            t += float(rng.exponential(1.0 / cfg.arrival_rate_qps))
            is_followup = bool(conversation) and bool(rng.random() < cfg.followup_rate)
            if not is_followup:
                conversation = []
            if history and rng.random() < duplicate_rate:
                intent = history[int(rng.integers(len(history)))]
                kind = "duplicate"
            else:
                domain = self._domains[int(rng.choice(len(self._domains), p=mix))]
                pool = self._domain_intents[domain]
                intent = pool[int(rng.integers(len(pool)))]
                kind = "unique"
            text = self.corpus.realize(intent, rng=rng, object_bias=paraphrase_bias)
            context = (
                tuple(conversation[-cfg.max_context_depth :]) if is_followup else ()
            )
            events.append(
                WorkloadEvent(
                    time_s=t,
                    user_id=uid,
                    query=text,
                    context=context,
                    is_followup=is_followup,
                    kind=kind,
                    intent_key=intent.key,
                )
            )
            history.append(intent)
            conversation.append(text)
        return events

    def generate(self) -> Trace:
        """Generate the whole fleet's trace, merged into one time-ordered stream."""
        cfg = self.config
        all_events: List[WorkloadEvent] = []
        for user_index in range(cfg.n_users):
            all_events.extend(self._user_events(user_index))
        # Stable, fully deterministic global order: by arrival time, then by
        # user id (two users never share an id, and one user's events already
        # arrive in increasing time).
        all_events.sort(key=lambda e: (e.time_s, e.user_id))
        trace = Trace(
            events=all_events,
            n_users=cfg.n_users,
            seed=self.seed,
            metadata={
                "queries_per_user": cfg.queries_per_user,
                "arrival_rate_qps": cfg.arrival_rate_qps,
                "duplicate_rate": cfg.duplicate_rate,
                "followup_rate": cfg.followup_rate,
                "max_context_depth": cfg.max_context_depth,
                "domain_concentration": cfg.domain_concentration,
                "paraphrase_bias": cfg.paraphrase_bias,
                "drift_phases": [p.to_dict() for p in cfg.drift_phases],
                "churn_fraction": cfg.churn_fraction,
                "churn_point": cfg.churn_point,
            },
        )
        # The schedule is layered on as a pure time-warp of the finished
        # stream (and recorded in metadata only when set, so stationary
        # traces stay byte-identical to pre-schedule generators).
        if cfg.arrival_schedule is not None:
            trace = apply_arrival_schedule(trace, cfg.arrival_schedule)
        return trace
