"""Multi-client serving: fleet workload generation, simulation and replay.

The paper evaluates one client at a time; this package scales the setting to
the fleet the paper actually describes — many user devices, each with a local
cache, sharing one LLM web service:

* :mod:`repro.serving.workload` — :class:`WorkloadGenerator` produces
  deterministic, seeded multi-user traffic traces (Poisson arrivals,
  per-user domain mixes, conversations/follow-ups, paraphrase duplicates);
  :class:`Trace` serializes to JSON for traffic replay.
* :mod:`repro.serving.fleet` — :class:`FleetSimulator` replays a trace over
  N per-user caches (any variant on the shared lookup pipeline) against one
  shared :class:`~repro.llm.service.SimulatedLLMService` on a virtual event
  clock, with batched lookup scheduling and per-fleet/per-user hit-rate,
  latency and cost aggregation.
"""

from repro.serving.fleet import (
    FleetConfig,
    FleetResult,
    FleetSimulator,
    LookupOutcome,
    UserStats,
)
from repro.serving.workload import (
    DriftPhase,
    Trace,
    WorkloadConfig,
    WorkloadEvent,
    WorkloadGenerator,
)

__all__ = [
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "LookupOutcome",
    "UserStats",
    "DriftPhase",
    "Trace",
    "WorkloadConfig",
    "WorkloadEvent",
    "WorkloadGenerator",
]
