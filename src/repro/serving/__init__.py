"""Multi-client serving: fleet workload generation, simulation and replay.

The paper evaluates one client at a time; this package scales the setting to
the fleet the paper actually describes — many user devices, each with a local
cache, sharing one LLM web service:

* :mod:`repro.serving.workload` — :class:`WorkloadGenerator` produces
  deterministic, seeded multi-user traffic traces (Poisson arrivals,
  per-user domain mixes, conversations/follow-ups, paraphrase duplicates,
  drift phases, :class:`ArrivalSchedule` diurnal/flash-crowd re-timing);
  :class:`Trace` serializes to JSON for traffic replay.
* :mod:`repro.serving.fleet` — :class:`FleetSimulator` replays a trace over
  N per-user caches (any variant on the shared lookup pipeline) against one
  shared :class:`~repro.llm.service.SimulatedLLMService` on a virtual event
  clock, with batched lookup scheduling and per-fleet/per-user hit-rate,
  latency and cost aggregation.
* :mod:`repro.serving.scenarios` — the scenario zoo: adversarial
  cache-poisoning and near-miss-flooding streams, mixed-domain cohorts,
  multi-tenant mixes, external log import, plus the declarative
  :class:`ScenarioSpec` registry the evaluation matrix
  (:mod:`repro.experiments.scenario_bench`) drives.
* :mod:`repro.serving.scheduling` — the shared scheduler abstraction:
  :class:`BatchExecutor` (the two-phase batch execution core both frontends
  drive), :class:`CacheAdapter`, and :class:`Scheduler` policies.
* :mod:`repro.serving.server` — :class:`CacheServer`, the live asyncio
  serving tier: hash-sharded per-user caches behind per-shard locks, a
  bounded admission queue with :class:`BackpressureError` shedding, and an
  adaptive cross-user micro-batcher (:class:`MicroBatcher`).
"""

from repro.serving.fleet import (
    FleetConfig,
    FleetResult,
    FleetSimulator,
    LookupOutcome,
    UserStats,
)
from repro.serving.scenarios import (
    CohortSpec,
    FloodingConfig,
    MultiTenantConfig,
    PoisoningConfig,
    ScenarioSpec,
    available_scenarios,
    build_cohort_trace,
    build_flooding_trace,
    build_multi_tenant_trace,
    get_scenario,
    inject_poisoning,
    merge_traces,
    register_scenario,
    relabel_users,
    trace_from_logs,
    trace_to_logs,
)
from repro.serving.scheduling import (
    BatchExecutor,
    CacheAdapter,
    Scheduler,
    VirtualClockScheduler,
    iter_windows,
)
from repro.serving.server import (
    BackpressureError,
    CacheServer,
    MicroBatcher,
    ServerConfig,
    ServerMetrics,
    ServerResponse,
)
from repro.serving.workload import (
    ArrivalSchedule,
    DriftPhase,
    Trace,
    WorkloadConfig,
    WorkloadEvent,
    WorkloadGenerator,
    apply_arrival_schedule,
)

__all__ = [
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "LookupOutcome",
    "UserStats",
    "BatchExecutor",
    "CacheAdapter",
    "Scheduler",
    "VirtualClockScheduler",
    "iter_windows",
    "BackpressureError",
    "CacheServer",
    "MicroBatcher",
    "ServerConfig",
    "ServerMetrics",
    "ServerResponse",
    "ArrivalSchedule",
    "DriftPhase",
    "Trace",
    "WorkloadConfig",
    "WorkloadEvent",
    "WorkloadGenerator",
    "apply_arrival_schedule",
    "CohortSpec",
    "FloodingConfig",
    "MultiTenantConfig",
    "PoisoningConfig",
    "ScenarioSpec",
    "available_scenarios",
    "build_cohort_trace",
    "build_flooding_trace",
    "build_multi_tenant_trace",
    "get_scenario",
    "inject_poisoning",
    "merge_traces",
    "register_scenario",
    "relabel_users",
    "trace_from_logs",
    "trace_to_logs",
]
