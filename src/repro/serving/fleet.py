"""Fleet simulation: N per-user caches against one shared LLM service.

:class:`FleetSimulator` replays a :class:`~repro.serving.workload.Trace`
on a virtual event clock: every arrival is looked up in its user's *local*
cache; misses are forwarded to the shared :class:`SimulatedLLMService` and
(optionally) enrolled.  Events that arrive within one ``batch_window_s`` are
scheduled together — each cache's queries in the window go through a single
``lookup_batch`` call, so the per-query embed/search overhead amortizes the
way a deployed batching frontend would.

Since PR 8 the simulator is one *scheduler* over the shared serving core
(:mod:`repro.serving.scheduling`): a
:class:`~repro.serving.scheduling.VirtualClockScheduler` turns the trace
into deterministic virtual-time windows and a
:class:`~repro.serving.scheduling.BatchExecutor` runs each window through
the same two-phase lookup/enroll semantics the live asyncio server
(:class:`~repro.serving.server.CacheServer`) uses under wall-clock load —
``tests/test_serving_parity.py`` pins the two frontends byte-identical on a
shared trace.

Any cache variant rides along: the executor adapts MeanCache-style decision
objects, GPTCache-style decisions and KeywordCache's plain ``Optional[str]``
responses to one outcome shape (see :class:`LookupOutcome`), and enrolment
goes through the variant's pipeline Enroll/Evict stage.  A ``cache_factory``
returning the *same* object for every user models a central shared cache
(the GPTCache deployment); returning fresh instances models the paper's
per-device fleet.

With the service's default hashed latency jitter, a replayed trace produces
identical per-user results regardless of how fleet traffic interleaves.

The simulator also closes the paper's federated loop online: pass an
:class:`~repro.federated.online.OnlineThresholdAdapter` as ``adaptation`` and
every lookup outcome is mined for labelled pairs, adaptation rounds fire on
the trace's virtual clock between batching windows, and freshly aggregated
per-user thresholds land in each cache's live ``set_threshold`` hook.  Hits
are verified against the workload's intent oracle (the stand-in for the
user-feedback channel), which also powers the fleet-wide ``false_hit_rate``
aggregate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.index.snapshot import (
    SnapshotError,
    atomic_snapshot_dir,
    read_manifest,
    write_manifest,
)
from repro.llm.service import SimulatedLLMService
from repro.serving.scheduling import (
    BatchExecutor,
    CacheAdapter,
    LookupOutcome,
    VirtualClockScheduler,
    storage_report,
)
from repro.serving.workload import Trace

#: Snapshot format tag / version of ``FleetSimulator.checkpoint`` directories.
FLEET_FORMAT = "repro-fleet"
FLEET_VERSION = 1

# Backwards-compatible aliases: these classes lived here before the shared
# scheduling layer factored them out for the live server to reuse.
_CacheAdapter = CacheAdapter


@dataclass(frozen=True)
class FleetConfig:
    """Fleet scheduling and enrolment knobs.

    Attributes
    ----------
    batch_window_s:
        Width of the virtual batching window: arrivals within one window are
        grouped per cache and classified with one ``lookup_batch`` call
        before any of the window's misses enrol.  Wider windows amortize
        more but defer enrolment visibility to the next window (intra-window
        duplicate misses each pay the LLM); ``0`` batches only simultaneous
        arrivals, approaching sequential semantics.
    enroll_on_miss:
        Whether misses enrol the LLM's response in the user's cache.
    index_maintenance:
        Run each touched cache's ``index.maintenance()`` between batching
        windows, so deferred index reorganization (IVF repartitioning with
        ``auto_repartition=False``, cell-stat refreshes) happens off the
        lookup path rather than inside a query.
    """

    batch_window_s: float = 0.25
    enroll_on_miss: bool = True
    index_maintenance: bool = True

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")


@dataclass
class UserStats:
    """Per-user aggregation over one simulation run."""

    lookups: int = 0
    hits: int = 0
    llm_requests: int = 0
    cache_overhead_s: float = 0.0
    llm_latency_s: float = 0.0
    cost_usd: float = 0.0
    #: hits verified correct / incorrect against the intent oracle (hits
    #: without a verification signal count in neither)
    true_hits: int = 0
    false_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of this user's lookups served locally."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def false_hit_rate(self) -> float:
        """Fraction of lookups served a verified-wrong cached answer."""
        return self.false_hits / self.lookups if self.lookups else 0.0

    @property
    def total_latency_s(self) -> float:
        """Cache overhead plus simulated LLM latency, summed."""
        return self.cache_overhead_s + self.llm_latency_s

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency per query."""
        return self.total_latency_s / self.lookups if self.lookups else 0.0

    @property
    def true_hit_rate(self) -> float:
        """Fraction of lookups served a verified-correct cached answer."""
        return self.true_hits / self.lookups if self.lookups else 0.0

    def record(self, outcome: LookupOutcome) -> None:
        """Fold one lookup outcome into the totals."""
        self.lookups += 1
        self.hits += int(outcome.hit)
        self.llm_requests += int(not outcome.hit)
        self.cache_overhead_s += outcome.cache_overhead_s
        self.llm_latency_s += outcome.llm_latency_s
        self.cost_usd += outcome.cost_usd
        if outcome.hit and outcome.verified is not None:
            if outcome.verified:
                self.true_hits += 1
            else:
                self.false_hits += 1

    def add(self, other: "UserStats") -> None:
        """Fold another user's totals into this one (cohort aggregation)."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.llm_requests += other.llm_requests
        self.cache_overhead_s += other.cache_overhead_s
        self.llm_latency_s += other.llm_latency_s
        self.cost_usd += other.cost_usd
        self.true_hits += other.true_hits
        self.false_hits += other.false_hits


@dataclass
class FleetResult:
    """Fleet-wide and per-user aggregation of one simulation run."""

    n_users: int
    n_events: int
    virtual_duration_s: float
    wall_clock_s: float
    per_user: Dict[str, UserStats] = field(default_factory=dict)
    outcomes: List[LookupOutcome] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        """Total lookups across the fleet."""
        return sum(u.lookups for u in self.per_user.values())

    @property
    def hits(self) -> int:
        """Total cache hits across the fleet."""
        return sum(u.hits for u in self.per_user.values())

    @property
    def hit_rate(self) -> float:
        """Fleet-wide hit rate."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @property
    def true_hits(self) -> int:
        """Hits verified correct against the intent oracle, fleet-wide."""
        return sum(u.true_hits for u in self.per_user.values())

    @property
    def false_hits(self) -> int:
        """Hits verified as false hits (wrong cached answer), fleet-wide."""
        return sum(u.false_hits for u in self.per_user.values())

    @property
    def false_hit_rate(self) -> float:
        """Fraction of fleet lookups served a verified-wrong cached answer."""
        lookups = self.lookups
        return self.false_hits / lookups if lookups else 0.0

    @property
    def true_hit_rate(self) -> float:
        """Fraction of fleet lookups served a verified-correct cached answer."""
        lookups = self.lookups
        return self.true_hits / lookups if lookups else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency per query across the fleet."""
        lookups = self.lookups
        if not lookups:
            return 0.0
        return sum(u.total_latency_s for u in self.per_user.values()) / lookups

    @property
    def total_cost_usd(self) -> float:
        """Total simulated LLM spend across the fleet."""
        return float(sum(u.cost_usd for u in self.per_user.values()))

    @property
    def throughput_lookups_per_s(self) -> float:
        """Fleet lookup throughput against measured wall-clock time."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.lookups / self.wall_clock_s

    def stats_for(self, user_ids: Sequence[str]) -> UserStats:
        """Aggregate stats over a user subset (a tenant, a cohort).

        Users absent from the run contribute nothing — scenario drivers
        pass the cohort's full id list even when some users never got a
        single arrival.
        """
        merged = UserStats()
        for user_id in user_ids:
            stats = self.per_user.get(user_id)
            if stats is not None:
                merged.add(stats)
        return merged

    def format(self) -> str:
        """One-paragraph text summary of the run."""
        return (
            f"fleet of {self.n_users} users — {self.n_events} lookups in "
            f"{self.wall_clock_s:.2f}s wall-clock "
            f"({self.throughput_lookups_per_s:,.0f} lookups/s); "
            f"hit rate {self.hit_rate:.3f} "
            f"(false-hit rate {self.false_hit_rate:.3f}), "
            f"mean latency {self.mean_latency_s * 1000:.1f} ms, "
            f"LLM spend ${self.total_cost_usd:.4f}, "
            f"virtual duration {self.virtual_duration_s:.1f}s"
        )


class FleetSimulator:
    """Runs a traffic trace over N per-user caches and one shared service."""

    def __init__(
        self,
        cache_factory: Callable[[str], object],
        service: Optional[SimulatedLLMService] = None,
        config: Optional[FleetConfig] = None,
        adaptation: Optional[object] = None,
    ) -> None:
        """``cache_factory(user_id)`` supplies each user's cache instance.

        Return fresh instances for the paper's per-device fleet, or one
        shared object to model a central cache.  The cache's index backend
        is the factory's choice — e.g.
        ``MeanCacheConfig(index_backend="ivf")`` puts every device on
        sublinear approximate search.

        ``adaptation``, when given, closes the federated loop over live
        traffic: an :class:`~repro.federated.online.OnlineThresholdAdapter`
        (or anything with its ``register_user``/``observe``/``advance``
        surface).  The simulator registers each user's cache on first use,
        reports every lookup outcome, and advances the adapter on the
        virtual clock after each batching window so adaptation rounds fire
        deterministically between windows.
        """
        self.cache_factory = cache_factory
        self.service = service or SimulatedLLMService()
        self.config = config or FleetConfig()
        self.adaptation = adaptation
        self.executor = BatchExecutor(
            cache_factory=cache_factory,
            service=self.service,
            enroll_on_miss=self.config.enroll_on_miss,
            adaptation=adaptation,
        )
        self.scheduler = VirtualClockScheduler(self.config.batch_window_s)

    @property
    def caches(self) -> Dict[str, CacheAdapter]:
        """Live user-id → cache-adapter map (owned by the executor)."""
        return self.executor.adapters

    # ------------------------------------------------------------------ #
    # Checkpoint / warm-start
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: "str | Path") -> Path:
        """Snapshot every live cache so a later fleet can warm-start from it.

        Each distinct cache *object* is saved once (a shared central cache
        produces one snapshot no matter how many users route to it) via its
        ``save(path)`` method, and the manifest maps user ids to snapshot
        subdirectories.  Caches without a ``save`` method (e.g. the keyword
        baseline) raise :class:`~repro.index.SnapshotError`.

        The whole checkpoint directory is staged and published atomically
        (one ``os.replace``): a crash mid-checkpoint over a previous
        checkpoint leaves the old generation intact, and snapshots for
        users the new fleet no longer serves cannot leak into the new one.
        """
        path = Path(path)
        with atomic_snapshot_dir(path) as stage:
            key_of_cache: Dict[int, str] = {}
            users: Dict[str, str] = {}
            for user_id, adapter in self.caches.items():
                key = key_of_cache.get(id(adapter.cache))
                if key is None:
                    key = f"cache_{len(key_of_cache)}"
                    saver = getattr(adapter.cache, "save", None)
                    if saver is None:
                        raise SnapshotError(
                            f"cache for user {user_id!r} "
                            f"({type(adapter.cache).__name__}) has no save() method"
                        )
                    saver(stage / key)
                    key_of_cache[id(adapter.cache)] = key
                users[user_id] = key
            write_manifest(
                stage,
                {"format": FLEET_FORMAT, "version": FLEET_VERSION, "users": users},
            )
        return path

    def restore(self, path: "str | Path", loader: Callable[[Path], object]) -> None:
        """Warm-start the fleet from a :meth:`checkpoint` directory.

        ``loader(snapshot_dir)`` rebuilds one cache instance — e.g.
        ``lambda p: MeanCache.load(p, encoder)``.  Each snapshot is loaded
        once and shared by every user the manifest maps to it, so a
        checkpointed central cache stays central.  Users not present in the
        checkpoint keep going through ``cache_factory`` on first use.
        """
        path = Path(path)
        manifest = read_manifest(path, FLEET_FORMAT, FLEET_VERSION)
        users = manifest.get("users")
        if not isinstance(users, dict):
            raise SnapshotError(f"fleet checkpoint at {path} has a corrupted user map")
        cache_of_key = {key: loader(path / key) for key in sorted(set(users.values()))}
        for user_id, key in users.items():
            self.executor.register(user_id, cache_of_key[key])

    def storage_report(self) -> Dict[str, object]:
        """Fleet-level bytes-vs-hit-rate accounting across every live cache.

        Each distinct cache object is counted once (a shared central cache
        or shared quantized tier does not multiply by its user count), and
        tiered caches contribute a per-tier breakdown — see
        :func:`repro.serving.scheduling.storage_report`.
        """
        return storage_report(adapter.cache for adapter in self.caches.values())

    def run(self, trace: Trace, collect_outcomes: bool = False) -> FleetResult:
        """Replay ``trace`` through the fleet and aggregate the results.

        Parameters
        ----------
        trace:
            The time-ordered traffic trace (generated or loaded for replay).
        collect_outcomes:
            Also retain every per-event :class:`LookupOutcome` on the result
            (off by default: at fleet scale the aggregate is the product).
        """
        per_user: Dict[str, UserStats] = {}
        outcomes: List[LookupOutcome] = []
        virtual_end = 0.0
        start = time.perf_counter()
        for window in self.scheduler.batches(trace):
            for outcome in self.executor.execute(window):
                stats = per_user.setdefault(outcome.event.user_id, UserStats())
                stats.record(outcome)
                virtual_end = max(
                    virtual_end, outcome.event.time_s + outcome.total_latency_s
                )
                if collect_outcomes:
                    outcomes.append(outcome)
            # Windows arrive in time order; adaptation rounds due inside
            # this window fire before the next window's lookups, on the
            # trace's virtual clock.
            self.executor.advance_adaptation(window[-1].time_s)
            if self.config.index_maintenance:
                self.executor.maintenance()
        wall_clock = time.perf_counter() - start
        # Count the users actually served rather than echoing the trace's
        # configured fleet size: with churn, cold-start successors appear
        # under fresh ids, so the two can legitimately differ.
        return FleetResult(
            n_users=len(per_user),
            n_events=len(trace),
            virtual_duration_s=virtual_end,
            wall_clock_s=wall_clock,
            per_user=per_user,
            outcomes=outcomes,
        )
