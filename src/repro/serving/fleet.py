"""Fleet simulation: N per-user caches against one shared LLM service.

:class:`FleetSimulator` replays a :class:`~repro.serving.workload.Trace`
on a virtual event clock: every arrival is looked up in its user's *local*
cache; misses are forwarded to the shared :class:`SimulatedLLMService` and
(optionally) enrolled.  Events that arrive within one ``batch_window_s`` are
scheduled together — each cache's queries in the window go through a single
``lookup_batch`` call, so the per-query embed/search overhead amortizes the
way a deployed batching frontend would.

Windowed batching has the standard batched-lookup semantics: all of a
window's lookups complete before any of its misses enrol, so an entry
enrolled in window *k* is visible from window *k+1* on.  Duplicate queries
that miss inside the *same* window therefore each pay the LLM and each
enrol (where a fully sequential replay would serve the second as a hit);
narrow the window — ``batch_window_s=0`` batches only simultaneous
arrivals — to approach sequential semantics, or widen it to favour
amortization.

Any cache variant rides along: the simulator adapts MeanCache-style decision
objects, GPTCache-style decisions and KeywordCache's plain ``Optional[str]``
responses to one outcome shape (see :class:`LookupOutcome`), and enrolment
goes through the variant's pipeline Enroll/Evict stage.  A ``cache_factory``
returning the *same* object for every user models a central shared cache
(the GPTCache deployment); returning fresh instances models the paper's
per-device fleet.

With the service's default hashed latency jitter, a replayed trace produces
identical per-user results regardless of how fleet traffic interleaves.

The simulator also closes the paper's federated loop online: pass an
:class:`~repro.federated.online.OnlineThresholdAdapter` as ``adaptation`` and
every lookup outcome is mined for labelled pairs, adaptation rounds fire on
the trace's virtual clock between batching windows, and freshly aggregated
per-user thresholds land in each cache's live ``set_threshold`` hook.  Hits
are verified against the workload's intent oracle (the stand-in for the
user-feedback channel), which also powers the fleet-wide ``false_hit_rate``
aggregate.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.index.snapshot import SnapshotError, read_manifest, write_manifest
from repro.llm.service import SimulatedLLMService
from repro.serving.workload import Trace, WorkloadEvent

#: Snapshot format tag / version of ``FleetSimulator.checkpoint`` directories.
FLEET_FORMAT = "repro-fleet"
FLEET_VERSION = 1


@dataclass(frozen=True)
class FleetConfig:
    """Fleet scheduling and enrolment knobs.

    Attributes
    ----------
    batch_window_s:
        Width of the virtual batching window: arrivals within one window are
        grouped per cache and classified with one ``lookup_batch`` call
        before any of the window's misses enrol.  Wider windows amortize
        more but defer enrolment visibility to the next window (intra-window
        duplicate misses each pay the LLM); ``0`` batches only simultaneous
        arrivals, approaching sequential semantics.
    enroll_on_miss:
        Whether misses enrol the LLM's response in the user's cache.
    index_maintenance:
        Run each touched cache's ``index.maintenance()`` between batching
        windows, so deferred index reorganization (IVF repartitioning with
        ``auto_repartition=False``, cell-stat refreshes) happens off the
        lookup path rather than inside a query.
    """

    batch_window_s: float = 0.25
    enroll_on_miss: bool = True
    index_maintenance: bool = True

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")


@dataclass
class LookupOutcome:
    """Variant-agnostic result of one fleet lookup."""

    event: WorkloadEvent
    hit: bool
    response: Optional[str]
    cache_overhead_s: float = 0.0
    llm_latency_s: float = 0.0
    cost_usd: float = 0.0
    #: probe embedding from the lookup (reused by enrolment; None for
    #: non-vector variants)
    embedding: Optional[object] = None
    #: best retrieved similarity (1.0/0.0 for exact-match variants); feeds
    #: the online adaptation loop's near-threshold miss mining
    similarity: float = 0.0
    #: the matched entry's query text on a hit (None when the variant does
    #: not report one)
    matched_query: Optional[str] = None
    #: hit verification against the workload's intent oracle: True = the hit
    #: answered the probe's intent, False = a false hit, None = unverifiable
    #: (miss, no intent metadata, or an entry the fleet never saw enrol)
    verified: Optional[bool] = None

    @property
    def total_latency_s(self) -> float:
        """Latency the user experienced for this query."""
        return self.cache_overhead_s + self.llm_latency_s


@dataclass
class UserStats:
    """Per-user aggregation over one simulation run."""

    lookups: int = 0
    hits: int = 0
    llm_requests: int = 0
    cache_overhead_s: float = 0.0
    llm_latency_s: float = 0.0
    cost_usd: float = 0.0
    #: hits verified correct / incorrect against the intent oracle (hits
    #: without a verification signal count in neither)
    true_hits: int = 0
    false_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of this user's lookups served locally."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def false_hit_rate(self) -> float:
        """Fraction of lookups served a verified-wrong cached answer."""
        return self.false_hits / self.lookups if self.lookups else 0.0

    @property
    def total_latency_s(self) -> float:
        """Cache overhead plus simulated LLM latency, summed."""
        return self.cache_overhead_s + self.llm_latency_s

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency per query."""
        return self.total_latency_s / self.lookups if self.lookups else 0.0

    @property
    def true_hit_rate(self) -> float:
        """Fraction of lookups served a verified-correct cached answer."""
        return self.true_hits / self.lookups if self.lookups else 0.0

    def record(self, outcome: LookupOutcome) -> None:
        """Fold one lookup outcome into the totals."""
        self.lookups += 1
        self.hits += int(outcome.hit)
        self.llm_requests += int(not outcome.hit)
        self.cache_overhead_s += outcome.cache_overhead_s
        self.llm_latency_s += outcome.llm_latency_s
        self.cost_usd += outcome.cost_usd
        if outcome.hit and outcome.verified is not None:
            if outcome.verified:
                self.true_hits += 1
            else:
                self.false_hits += 1

    def add(self, other: "UserStats") -> None:
        """Fold another user's totals into this one (cohort aggregation)."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.llm_requests += other.llm_requests
        self.cache_overhead_s += other.cache_overhead_s
        self.llm_latency_s += other.llm_latency_s
        self.cost_usd += other.cost_usd
        self.true_hits += other.true_hits
        self.false_hits += other.false_hits


@dataclass
class FleetResult:
    """Fleet-wide and per-user aggregation of one simulation run."""

    n_users: int
    n_events: int
    virtual_duration_s: float
    wall_clock_s: float
    per_user: Dict[str, UserStats] = field(default_factory=dict)
    outcomes: List[LookupOutcome] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        """Total lookups across the fleet."""
        return sum(u.lookups for u in self.per_user.values())

    @property
    def hits(self) -> int:
        """Total cache hits across the fleet."""
        return sum(u.hits for u in self.per_user.values())

    @property
    def hit_rate(self) -> float:
        """Fleet-wide hit rate."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @property
    def true_hits(self) -> int:
        """Hits verified correct against the intent oracle, fleet-wide."""
        return sum(u.true_hits for u in self.per_user.values())

    @property
    def false_hits(self) -> int:
        """Hits verified as false hits (wrong cached answer), fleet-wide."""
        return sum(u.false_hits for u in self.per_user.values())

    @property
    def false_hit_rate(self) -> float:
        """Fraction of fleet lookups served a verified-wrong cached answer."""
        lookups = self.lookups
        return self.false_hits / lookups if lookups else 0.0

    @property
    def true_hit_rate(self) -> float:
        """Fraction of fleet lookups served a verified-correct cached answer."""
        lookups = self.lookups
        return self.true_hits / lookups if lookups else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency per query across the fleet."""
        lookups = self.lookups
        if not lookups:
            return 0.0
        return sum(u.total_latency_s for u in self.per_user.values()) / lookups

    @property
    def total_cost_usd(self) -> float:
        """Total simulated LLM spend across the fleet."""
        return float(sum(u.cost_usd for u in self.per_user.values()))

    @property
    def throughput_lookups_per_s(self) -> float:
        """Fleet lookup throughput against measured wall-clock time."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.lookups / self.wall_clock_s

    def stats_for(self, user_ids: Sequence[str]) -> UserStats:
        """Aggregate stats over a user subset (a tenant, a cohort).

        Users absent from the run contribute nothing — scenario drivers
        pass the cohort's full id list even when some users never got a
        single arrival.
        """
        merged = UserStats()
        for user_id in user_ids:
            stats = self.per_user.get(user_id)
            if stats is not None:
                merged.add(stats)
        return merged

    def format(self) -> str:
        """One-paragraph text summary of the run."""
        return (
            f"fleet of {self.n_users} users — {self.n_events} lookups in "
            f"{self.wall_clock_s:.2f}s wall-clock "
            f"({self.throughput_lookups_per_s:,.0f} lookups/s); "
            f"hit rate {self.hit_rate:.3f} "
            f"(false-hit rate {self.false_hit_rate:.3f}), "
            f"mean latency {self.mean_latency_s * 1000:.1f} ms, "
            f"LLM spend ${self.total_cost_usd:.4f}, "
            f"virtual duration {self.virtual_duration_s:.1f}s"
        )


@dataclass
class _BatchLookup:
    """One normalised per-query result out of :meth:`_CacheAdapter.lookup_batch`."""

    hit: bool
    response: Optional[str]
    overhead_s: float
    embedding: Optional[object]
    similarity: float
    matched_query: Optional[str]
    top_query: Optional[str]


class _CacheAdapter:
    """Normalises any cache variant to one batched lookup/enroll surface."""

    def __init__(self, cache) -> None:
        """Wrap ``cache`` and sniff whether its lookups accept contexts."""
        self.cache = cache
        params = inspect.signature(cache.lookup_batch).parameters
        self._accepts_contexts = "contexts" in params

    def lookup_batch(
        self,
        queries: Sequence[str],
        contexts: Sequence[Sequence[str]],
    ) -> List[_BatchLookup]:
        """Batched lookup normalised to one :class:`_BatchLookup` per query.

        Decision objects must expose ``hit``/``response``/``total_overhead_s``
        (attribute errors surface loudly rather than skewing aggregates with
        silent defaults); ``similarity``/``matched_query`` are optional (the
        adaptation loop degrades gracefully without them).  A bare
        ``str | None`` is the exact-match shape: similarity 1.0 on a hit.
        """
        if self._accepts_contexts:
            raw = self.cache.lookup_batch(list(queries), contexts=[list(c) for c in contexts])
        else:
            raw = self.cache.lookup_batch(list(queries))
        outcomes: List[_BatchLookup] = []
        for item in raw:
            if item is None or isinstance(item, str):
                # KeywordCache-style: the response itself (or None on miss).
                outcomes.append(
                    _BatchLookup(
                        hit=item is not None,
                        response=item,
                        overhead_s=0.0,
                        embedding=None,
                        similarity=1.0 if item is not None else 0.0,
                        matched_query=None,
                        top_query=None,
                    )
                )
            else:
                outcomes.append(
                    _BatchLookup(
                        hit=bool(item.hit),
                        response=item.response,
                        overhead_s=float(item.total_overhead_s),
                        embedding=getattr(item, "embedding", None),
                        similarity=float(getattr(item, "similarity", 0.0)),
                        matched_query=getattr(item, "matched_query", None),
                        top_query=getattr(item, "top_candidate_query", None),
                    )
                )
        return outcomes

    def enroll(
        self,
        query: str,
        response: str,
        context: Sequence[str],
        user_id: str,
        embedding: Optional[object] = None,
    ) -> None:
        """Enrol through the variant's pipeline Enroll/Evict stage.

        ``user_id`` keeps per-user attribution in central shared caches
        (per-device caches ignore it); ``embedding`` reuses the lookup's
        Embed-stage output so enrolment skips a second encoder forward.
        """
        pipeline = getattr(self.cache, "pipeline", None)
        if pipeline is not None and pipeline.enroll is not None:
            pipeline.enroll.enroll(
                query, response, context=context, user_id=user_id, embedding=embedding
            )
        else:  # pragma: no cover - every repo variant has a pipeline
            self.cache.insert(query, response)


class FleetSimulator:
    """Runs a traffic trace over N per-user caches and one shared service."""

    def __init__(
        self,
        cache_factory: Callable[[str], object],
        service: Optional[SimulatedLLMService] = None,
        config: Optional[FleetConfig] = None,
        adaptation: Optional[object] = None,
    ) -> None:
        """``cache_factory(user_id)`` supplies each user's cache instance.

        Return fresh instances for the paper's per-device fleet, or one
        shared object to model a central cache.  The cache's index backend
        is the factory's choice — e.g.
        ``MeanCacheConfig(index_backend="ivf")`` puts every device on
        sublinear approximate search.

        ``adaptation``, when given, closes the federated loop over live
        traffic: an :class:`~repro.federated.online.OnlineThresholdAdapter`
        (or anything with its ``register_user``/``observe``/``advance``
        surface).  The simulator registers each user's cache on first use,
        reports every lookup outcome, and advances the adapter on the
        virtual clock after each batching window so adaptation rounds fire
        deterministically between windows.
        """
        self.cache_factory = cache_factory
        self.service = service or SimulatedLLMService()
        self.config = config or FleetConfig()
        self.adaptation = adaptation
        self.caches: Dict[str, _CacheAdapter] = {}
        #: per underlying cache object: enrolled query text -> intent key,
        #: the oracle used to verify hits (user feedback stand-in)
        self._intent_maps: Dict[int, Dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    def _register(self, user_id: str, adapter: _CacheAdapter) -> None:
        """Track a new user's cache (intent oracle + adaptation loop)."""
        self.caches[user_id] = adapter
        self._intent_maps.setdefault(id(adapter.cache), {})
        if self.adaptation is not None:
            self.adaptation.register_user(user_id, adapter.cache)

    def _adapter(self, user_id: str) -> _CacheAdapter:
        """The user's cache adapter, creating it via the factory on first use."""
        adapter = self.caches.get(user_id)
        if adapter is None:
            adapter = _CacheAdapter(self.cache_factory(user_id))
            self._register(user_id, adapter)
        return adapter

    # ------------------------------------------------------------------ #
    # Checkpoint / warm-start
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: "str | Path") -> Path:
        """Snapshot every live cache so a later fleet can warm-start from it.

        Each distinct cache *object* is saved once (a shared central cache
        produces one snapshot no matter how many users route to it) via its
        ``save(path)`` method, and the manifest maps user ids to snapshot
        subdirectories.  Caches without a ``save`` method (e.g. the keyword
        baseline) raise :class:`~repro.index.SnapshotError`.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        key_of_cache: Dict[int, str] = {}
        users: Dict[str, str] = {}
        for user_id, adapter in self.caches.items():
            key = key_of_cache.get(id(adapter.cache))
            if key is None:
                key = f"cache_{len(key_of_cache)}"
                saver = getattr(adapter.cache, "save", None)
                if saver is None:
                    raise SnapshotError(
                        f"cache for user {user_id!r} "
                        f"({type(adapter.cache).__name__}) has no save() method"
                    )
                saver(path / key)
                key_of_cache[id(adapter.cache)] = key
            users[user_id] = key
        write_manifest(
            path, {"format": FLEET_FORMAT, "version": FLEET_VERSION, "users": users}
        )
        return path

    def restore(self, path: "str | Path", loader: Callable[[Path], object]) -> None:
        """Warm-start the fleet from a :meth:`checkpoint` directory.

        ``loader(snapshot_dir)`` rebuilds one cache instance — e.g.
        ``lambda p: MeanCache.load(p, encoder)``.  Each snapshot is loaded
        once and shared by every user the manifest maps to it, so a
        checkpointed central cache stays central.  Users not present in the
        checkpoint keep going through ``cache_factory`` on first use.
        """
        path = Path(path)
        manifest = read_manifest(path, FLEET_FORMAT, FLEET_VERSION)
        users = manifest.get("users")
        if not isinstance(users, dict):
            raise SnapshotError(f"fleet checkpoint at {path} has a corrupted user map")
        adapter_of_key = {
            key: _CacheAdapter(loader(path / key)) for key in sorted(set(users.values()))
        }
        for user_id, key in users.items():
            self._register(user_id, adapter_of_key[key])

    @staticmethod
    def _windows(trace: Trace, width: float):
        """Split the event stream into batching windows.

        The stream is re-sorted by arrival time first: the windowing and the
        "enrolments become visible next window" invariant both assume time
        order, and a hand-merged replay file may not provide it.
        """
        events = sorted(trace.events, key=lambda e: (e.time_s, e.user_id))
        window: List[WorkloadEvent] = []
        window_end = None
        for event in events:
            if window_end is None:
                window_end = event.time_s + width
            if event.time_s <= window_end:
                window.append(event)
            else:
                yield window
                window = [event]
                window_end = event.time_s + width
        if window:
            yield window

    def run(self, trace: Trace, collect_outcomes: bool = False) -> FleetResult:
        """Replay ``trace`` through the fleet and aggregate the results.

        Parameters
        ----------
        trace:
            The time-ordered traffic trace (generated or loaded for replay).
        collect_outcomes:
            Also retain every per-event :class:`LookupOutcome` on the result
            (off by default: at fleet scale the aggregate is the product).
        """
        per_user: Dict[str, UserStats] = {}
        outcomes: List[LookupOutcome] = []
        virtual_end = 0.0
        start = time.perf_counter()
        for window in self._windows(trace, self.config.batch_window_s):
            # Phase 1 — lookups.  Group the window's arrivals by *underlying
            # cache object* (per-user fleets: one group per user; a shared
            # central cache: one group for the whole window), preserving
            # arrival order within each group, and classify each group with
            # one lookup_batch call.
            by_cache: Dict[int, Tuple[_CacheAdapter, List[WorkloadEvent]]] = {}
            for event in window:
                adapter = self._adapter(event.user_id)
                by_cache.setdefault(id(adapter.cache), (adapter, []))[1].append(event)
            looked_up: Dict[int, _BatchLookup] = {}
            for adapter, events in by_cache.values():
                results = adapter.lookup_batch(
                    [e.query for e in events], [e.context for e in events]
                )
                for event, result in zip(events, results):
                    looked_up[id(event)] = result
            # Phase 2 — misses and enrolment, in arrival order.  All window
            # lookups complete before any enrolment, so a decision can only
            # depend on entries enrolled in *previous* windows — no event can
            # hit an entry enrolled by a later-arriving event, even on a
            # shared cache, and results are independent of grouping order.
            for event in window:
                result = looked_up[id(event)]
                adapter = self._adapter(event.user_id)
                intent_map = self._intent_maps[id(adapter.cache)]
                # Verification against the intent oracle (the user-feedback
                # stand-in): on a hit, whether the served entry answers the
                # probe's intent; on a miss, whether the *top retrieved
                # candidate* would have (feeding near-miss pair mining).
                verified: Optional[bool] = None
                reference = result.matched_query if result.hit else result.top_query
                if reference is not None and event.intent_key:
                    reference_intent = intent_map.get(reference)
                    if reference_intent is not None:
                        verified = reference_intent == event.intent_key
                outcome = LookupOutcome(
                    event=event,
                    hit=result.hit,
                    response=result.response,
                    cache_overhead_s=result.overhead_s,
                    embedding=result.embedding,
                    similarity=result.similarity,
                    matched_query=result.matched_query,
                    verified=verified,
                )
                if not result.hit:
                    llm = self.service.query(
                        event.query, client_id=event.user_id, context=list(event.context)
                    )
                    outcome.response = llm.text
                    outcome.llm_latency_s = llm.latency_s
                    outcome.cost_usd = llm.cost_usd
                    if self.config.enroll_on_miss:
                        adapter.enroll(
                            event.query,
                            llm.text,
                            event.context,
                            event.user_id,
                            embedding=result.embedding,
                        )
                        if event.intent_key:
                            intent_map[event.query] = event.intent_key
                stats = per_user.setdefault(event.user_id, UserStats())
                stats.record(outcome)
                virtual_end = max(virtual_end, event.time_s + outcome.total_latency_s)
                if self.adaptation is not None:
                    self.adaptation.observe(
                        event.user_id,
                        similarity=outcome.similarity,
                        hit=outcome.hit,
                        verified=outcome.verified,
                        followup=event.is_followup,
                        query=event.query,
                        matched_query=outcome.matched_query or result.top_query,
                        time_s=event.time_s,
                    )
                if collect_outcomes:
                    outcomes.append(outcome)
            if self.adaptation is not None:
                # Windows arrive in time order; rounds due inside this
                # window fire before the next window's lookups, on the
                # trace's virtual clock.
                self.adaptation.advance(window[-1].time_s)
            if self.config.index_maintenance:
                # Deferred index work (repartitioning, stat refreshes) runs
                # here, between windows, for every cache this window touched
                # — the query path itself never pays for reorganization.
                for adapter, _ in by_cache.values():
                    index = getattr(adapter.cache, "index", None)
                    if index is not None and hasattr(index, "maintenance"):
                        index.maintenance()
        wall_clock = time.perf_counter() - start
        # Count the users actually served rather than echoing the trace's
        # configured fleet size: with churn, cold-start successors appear
        # under fresh ids, so the two can legitimately differ.
        return FleetResult(
            n_users=len(per_user),
            n_events=len(trace),
            virtual_duration_s=virtual_end,
            wall_clock_s=wall_clock,
            per_user=per_user,
            outcomes=outcomes,
        )
