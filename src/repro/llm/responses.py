"""Deterministic synthetic response generation.

MeanCache's behaviour never depends on response *content* (the paper notes
"MeanCache's performance is not dependent on the response as it only matches
the queries"), but the cache stores responses and the storage experiments
account for their size, so the simulator produces plausible, deterministic
responses of a configurable token length.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

_OPENERS = [
    "Sure, here is a concise answer.",
    "Here is what you need to know.",
    "Certainly — the short version follows.",
    "Good question; the key points are below.",
    "Here is a step-by-step explanation.",
]

_BODY_WORDS = [
    "first", "ensure", "that", "the", "required", "dependencies", "are",
    "installed", "then", "follow", "the", "steps", "outlined", "below",
    "carefully", "checking", "each", "result", "before", "continuing",
    "next", "configure", "the", "relevant", "settings", "and", "verify",
    "the", "expected", "behaviour", "finally", "review", "the", "output",
    "and", "adjust", "parameters", "if", "anything", "looks", "incorrect",
    "this", "approach", "is", "robust", "widely", "used", "and", "easy",
    "to", "maintain", "over", "time", "in", "practice",
]


def _stable_seed(text: str) -> int:
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class ResponseGenerator:
    """Generates a deterministic pseudo-response for a query."""

    def __init__(self, response_tokens: int = 50) -> None:
        if response_tokens < 1:
            raise ValueError("response_tokens must be >= 1")
        self.response_tokens = response_tokens

    def generate(self, query: str, response_tokens: Optional[int] = None) -> str:
        """Return a deterministic response of roughly ``response_tokens`` words."""
        n_tokens = response_tokens if response_tokens is not None else self.response_tokens
        if n_tokens < 1:
            raise ValueError("response_tokens must be >= 1")
        rng = np.random.default_rng(_stable_seed(query))
        opener = _OPENERS[int(rng.integers(len(_OPENERS)))]
        words: List[str] = opener.split()
        while len(words) < n_tokens:
            words.append(_BODY_WORDS[int(rng.integers(len(_BODY_WORDS)))])
        return " ".join(words[:n_tokens])


def count_tokens(text: str) -> int:
    """Whitespace token count (the simulator's notion of a token)."""
    return len(text.split())
