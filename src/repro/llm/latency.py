"""LLM inference latency model.

The Figure 5 experiment compares per-query response times for a Llama-2 7B
service with no cache, with GPTCache and with MeanCache.  We cannot run
Llama-2 here, so latencies are *simulated* from a standard decomposition of
autoregressive inference cost:

    latency = network_rtt + prefill(prompt_tokens) + decode(response_tokens) + jitter

with defaults calibrated to the magnitudes visible in the paper's Figure 5
(~0.5–1.0 s for 50-token responses on an A100).  The model is deterministic
given its seed, so experiments are reproducible, and latencies are *modelled*
quantities — they are reported as such, never measured wall-clock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LatencyModelConfig:
    """Parameters of the latency decomposition (all times in seconds).

    Defaults approximate a Llama-2 7B deployment on a single A100 responding
    with ~50 tokens, which the paper reports at roughly 0.5–1.0 s per query.
    """

    network_rtt: float = 0.03
    prefill_per_token: float = 0.0006
    decode_per_token: float = 0.012
    jitter_std: float = 0.05
    min_latency: float = 0.02

    def __post_init__(self) -> None:
        if self.min_latency < 0 or self.network_rtt < 0:
            raise ValueError("latencies must be non-negative")
        if self.prefill_per_token < 0 or self.decode_per_token < 0:
            raise ValueError("per-token latencies must be non-negative")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")


class LatencyModel:
    """Samples simulated per-request latencies."""

    def __init__(self, config: Optional[LatencyModelConfig] = None, seed: int = 0) -> None:
        self.config = config or LatencyModelConfig()
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def sample(
        self, prompt_tokens: int, response_tokens: int, key: Optional[str] = None
    ) -> float:
        """Return one simulated end-to-end latency (seconds).

        With ``key=None`` (the historical behaviour) jitter is drawn from the
        model's shared sequential RNG, so the latency of request *i* depends
        on how many requests preceded it.  Passing a ``key`` derives the
        jitter from a hash of (seed, key) instead: the same request always
        gets the same latency, regardless of arrival order or interleaving —
        which is what makes fleet simulations replayable under reordering.
        """
        if prompt_tokens < 0 or response_tokens < 0:
            raise ValueError("token counts must be non-negative")
        cfg = self.config
        base = (
            cfg.network_rtt
            + cfg.prefill_per_token * prompt_tokens
            + cfg.decode_per_token * response_tokens
        )
        if not cfg.jitter_std:
            jitter = 0.0
        elif key is None:
            jitter = float(self._rng.normal(0.0, cfg.jitter_std))
        else:
            jitter = float(self._keyed_rng(key).normal(0.0, cfg.jitter_std))
        return max(cfg.min_latency, base + jitter)

    def _keyed_rng(self, key: str) -> np.random.Generator:
        """An RNG seeded from a stable hash of (model seed, request key)."""
        digest = hashlib.sha256(f"{self._seed}\x1f{key}".encode("utf-8")).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def expected(self, prompt_tokens: int, response_tokens: int) -> float:
        """The deterministic (jitter-free) latency for given token counts."""
        cfg = self.config
        return max(
            cfg.min_latency,
            cfg.network_rtt
            + cfg.prefill_per_token * prompt_tokens
            + cfg.decode_per_token * response_tokens,
        )

    def reseed(self, seed: int) -> None:
        """Reset the jitter RNG (used to replay identical traces)."""
        self._seed = seed
        self._rng = np.random.default_rng(seed)
