"""The simulated LLM web service facade.

Plays the role of the remote "LLM-based web service (e.g., ChatGPT, Bing
Copilot)" in Figure 1 and of the local Llama-2 service in the Figure 5 timing
experiment.  The service:

* generates a deterministic response per query (:class:`ResponseGenerator`),
* attributes a *simulated* latency to each request (:class:`LatencyModel`),
* keeps per-client accounting (request counts, token counts, simulated cost),
  which the cost-saving analyses use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.llm.latency import LatencyModel, LatencyModelConfig
from repro.llm.responses import ResponseGenerator, count_tokens


@dataclass(frozen=True)
class LLMServiceConfig:
    """Configuration of the simulated service.

    Attributes
    ----------
    response_tokens:
        Nominal response length (the paper limits responses to 50 tokens).
    latency:
        Latency model configuration.
    price_per_1k_prompt_tokens, price_per_1k_response_tokens:
        Simulated pricing (USD) used by the cost-saving accounting; defaults
        approximate public per-token API pricing.
    seed:
        Seed for latency jitter.
    jitter_mode:
        ``"hashed"`` (default) derives each request's latency jitter from a
        hash of ``(client_id, prompt)``, so a given request costs the same
        simulated latency no matter how fleet traffic interleaves —
        simulation results become independent of arrival order.
        ``"sequential"`` restores the historical behaviour: jitter drawn
        from one shared RNG in request order.
    """

    response_tokens: int = 50
    latency: LatencyModelConfig = field(default_factory=LatencyModelConfig)
    price_per_1k_prompt_tokens: float = 0.0005
    price_per_1k_response_tokens: float = 0.0015
    seed: int = 0
    jitter_mode: str = "hashed"

    def __post_init__(self) -> None:
        if self.jitter_mode not in ("hashed", "sequential"):
            raise ValueError("jitter_mode must be 'hashed' or 'sequential'")


@dataclass(frozen=True)
class LLMResponse:
    """The result of one service request.

    ``issued_at_s``/``completed_at_s`` are stamps on the *caller's* clock —
    the simulator's virtual event clock or the live server's monotonic wall
    clock (see :class:`SimulatedLLMService`'s ``clock`` parameter).  They
    stay ``None`` when neither a ``now`` argument nor a service clock is
    available, which is the historical behaviour.
    """

    query: str
    text: str
    prompt_tokens: int
    response_tokens: int
    latency_s: float
    cost_usd: float
    issued_at_s: Optional[float] = None
    completed_at_s: Optional[float] = None


@dataclass
class ServiceStats:
    """Cumulative accounting for the service (or one client of it)."""

    n_requests: int = 0
    prompt_tokens: int = 0
    response_tokens: int = 0
    total_latency_s: float = 0.0
    total_cost_usd: float = 0.0

    def record(self, response: LLMResponse) -> None:
        """Fold one response into the running totals."""
        self.n_requests += 1
        self.prompt_tokens += response.prompt_tokens
        self.response_tokens += response.response_tokens
        self.total_latency_s += response.latency_s
        self.total_cost_usd += response.cost_usd


class SimulatedLLMService:
    """Deterministic, offline substitute for an LLM web service.

    Two clocks can drive a deployment of this service, and the historical
    implementation silently assumed the first:

    * the **virtual event clock** — the fleet simulator replays a trace at
      virtual arrival times and passes each request's ``now`` explicitly;
    * the **wall clock** — the live asyncio server issues requests in real
      time, so request stamps must come from ``time.monotonic``.

    ``clock`` makes the choice injectable: a zero-argument callable the
    service reads whenever a request arrives without an explicit ``now``.
    Responses then carry ``issued_at_s``/``completed_at_s`` on whichever
    clock applied, so callers never mix modelled virtual latencies into
    measured wall-clock sums (the latent bug the live server surfaced).
    With neither ``clock`` nor ``now`` the stamps stay ``None`` and
    behaviour is byte-identical to the historical service.

    ``thread_safe=True`` guards the accounting (`stats`, per-client totals)
    with a lock; the historical unsynchronized ``+=`` updates lose requests
    under the server's multi-threaded miss path.
    """

    def __init__(
        self,
        config: Optional[LLMServiceConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        thread_safe: bool = False,
    ) -> None:
        self.config = config or LLMServiceConfig()
        self.clock = clock
        self._latency = LatencyModel(self.config.latency, seed=self.config.seed)
        self._responses = ResponseGenerator(self.config.response_tokens)
        self.stats = ServiceStats()
        self._per_client: Dict[str, ServiceStats] = {}
        self._lock = threading.Lock() if thread_safe else None

    def query(
        self,
        prompt: str,
        client_id: str = "default",
        context: Optional[List[str]] = None,
        response_tokens: Optional[int] = None,
        now: Optional[float] = None,
    ) -> LLMResponse:
        """Answer ``prompt`` (optionally with conversational ``context``).

        The context contributes to prompt-token accounting and latency (longer
        prefill) but not to the response content, matching how the evaluation
        treats the service as a black box.  ``now`` stamps the request on the
        caller's clock (the simulator passes virtual arrival times); when it
        is omitted the service falls back to its injected ``clock``.
        """
        if not isinstance(prompt, str) or not prompt.strip():
            raise ValueError("prompt must be a non-empty string")
        full_prompt = "\n".join([*(context or []), prompt])
        prompt_tokens = count_tokens(full_prompt)
        text = self._responses.generate(prompt, response_tokens)
        resp_tokens = count_tokens(text)
        jitter_key = (
            f"{client_id}\x1f{prompt}" if self.config.jitter_mode == "hashed" else None
        )
        latency = self._latency.sample(prompt_tokens, resp_tokens, key=jitter_key)
        cost = (
            prompt_tokens / 1000.0 * self.config.price_per_1k_prompt_tokens
            + resp_tokens / 1000.0 * self.config.price_per_1k_response_tokens
        )
        issued_at = now
        if issued_at is None and self.clock is not None:
            issued_at = float(self.clock())
        response = LLMResponse(
            query=prompt,
            text=text,
            prompt_tokens=prompt_tokens,
            response_tokens=resp_tokens,
            latency_s=latency,
            cost_usd=cost,
            issued_at_s=issued_at,
            completed_at_s=None if issued_at is None else issued_at + latency,
        )
        if self._lock is not None:
            with self._lock:
                self.stats.record(response)
                self._per_client.setdefault(client_id, ServiceStats()).record(response)
        else:
            self.stats.record(response)
            self._per_client.setdefault(client_id, ServiceStats()).record(response)
        return response

    def client_stats(self, client_id: str) -> ServiceStats:
        """Accounting for a single client (zeros if the client never called)."""
        return self._per_client.get(client_id, ServiceStats())

    def reset_stats(self) -> None:
        """Clear all accounting."""
        self.stats = ServiceStats()
        self._per_client.clear()
