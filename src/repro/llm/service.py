"""The simulated LLM web service facade.

Plays the role of the remote "LLM-based web service (e.g., ChatGPT, Bing
Copilot)" in Figure 1 and of the local Llama-2 service in the Figure 5 timing
experiment.  The service:

* generates a deterministic response per query (:class:`ResponseGenerator`),
* attributes a *simulated* latency to each request (:class:`LatencyModel`),
* keeps per-client accounting (request counts, token counts, simulated cost),
  which the cost-saving analyses use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.llm.latency import LatencyModel, LatencyModelConfig
from repro.llm.responses import ResponseGenerator, count_tokens


@dataclass(frozen=True)
class LLMServiceConfig:
    """Configuration of the simulated service.

    Attributes
    ----------
    response_tokens:
        Nominal response length (the paper limits responses to 50 tokens).
    latency:
        Latency model configuration.
    price_per_1k_prompt_tokens, price_per_1k_response_tokens:
        Simulated pricing (USD) used by the cost-saving accounting; defaults
        approximate public per-token API pricing.
    seed:
        Seed for latency jitter.
    jitter_mode:
        ``"hashed"`` (default) derives each request's latency jitter from a
        hash of ``(client_id, prompt)``, so a given request costs the same
        simulated latency no matter how fleet traffic interleaves —
        simulation results become independent of arrival order.
        ``"sequential"`` restores the historical behaviour: jitter drawn
        from one shared RNG in request order.
    """

    response_tokens: int = 50
    latency: LatencyModelConfig = field(default_factory=LatencyModelConfig)
    price_per_1k_prompt_tokens: float = 0.0005
    price_per_1k_response_tokens: float = 0.0015
    seed: int = 0
    jitter_mode: str = "hashed"

    def __post_init__(self) -> None:
        if self.jitter_mode not in ("hashed", "sequential"):
            raise ValueError("jitter_mode must be 'hashed' or 'sequential'")


@dataclass(frozen=True)
class LLMResponse:
    """The result of one service request."""

    query: str
    text: str
    prompt_tokens: int
    response_tokens: int
    latency_s: float
    cost_usd: float


@dataclass
class ServiceStats:
    """Cumulative accounting for the service (or one client of it)."""

    n_requests: int = 0
    prompt_tokens: int = 0
    response_tokens: int = 0
    total_latency_s: float = 0.0
    total_cost_usd: float = 0.0

    def record(self, response: LLMResponse) -> None:
        """Fold one response into the running totals."""
        self.n_requests += 1
        self.prompt_tokens += response.prompt_tokens
        self.response_tokens += response.response_tokens
        self.total_latency_s += response.latency_s
        self.total_cost_usd += response.cost_usd


class SimulatedLLMService:
    """Deterministic, offline substitute for an LLM web service."""

    def __init__(self, config: Optional[LLMServiceConfig] = None) -> None:
        self.config = config or LLMServiceConfig()
        self._latency = LatencyModel(self.config.latency, seed=self.config.seed)
        self._responses = ResponseGenerator(self.config.response_tokens)
        self.stats = ServiceStats()
        self._per_client: Dict[str, ServiceStats] = {}

    def query(
        self,
        prompt: str,
        client_id: str = "default",
        context: Optional[List[str]] = None,
        response_tokens: Optional[int] = None,
    ) -> LLMResponse:
        """Answer ``prompt`` (optionally with conversational ``context``).

        The context contributes to prompt-token accounting and latency (longer
        prefill) but not to the response content, matching how the evaluation
        treats the service as a black box.
        """
        if not isinstance(prompt, str) or not prompt.strip():
            raise ValueError("prompt must be a non-empty string")
        full_prompt = "\n".join([*(context or []), prompt])
        prompt_tokens = count_tokens(full_prompt)
        text = self._responses.generate(prompt, response_tokens)
        resp_tokens = count_tokens(text)
        jitter_key = (
            f"{client_id}\x1f{prompt}" if self.config.jitter_mode == "hashed" else None
        )
        latency = self._latency.sample(prompt_tokens, resp_tokens, key=jitter_key)
        cost = (
            prompt_tokens / 1000.0 * self.config.price_per_1k_prompt_tokens
            + resp_tokens / 1000.0 * self.config.price_per_1k_response_tokens
        )
        response = LLMResponse(
            query=prompt,
            text=text,
            prompt_tokens=prompt_tokens,
            response_tokens=resp_tokens,
            latency_s=latency,
            cost_usd=cost,
        )
        self.stats.record(response)
        self._per_client.setdefault(client_id, ServiceStats()).record(response)
        return response

    def client_stats(self, client_id: str) -> ServiceStats:
        """Accounting for a single client (zeros if the client never called)."""
        return self._per_client.get(client_id, ServiceStats())

    def reset_stats(self) -> None:
        """Clear all accounting."""
        self.stats = ServiceStats()
        self._per_client.clear()
