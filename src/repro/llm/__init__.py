"""Simulated LLM web service.

Stands in for the Llama-2-based local LLM service used in the paper's
Figure 5 response-time experiment and for the remote LLM-based web service
(ChatGPT-style) that MeanCache forwards cache misses to.

* :mod:`repro.llm.latency` — a calibrated latency model (prefill + per-token
  decode + network round trip + jitter).
* :mod:`repro.llm.responses` — deterministic synthetic response generation.
* :mod:`repro.llm.service` — the service facade with request accounting.
"""

from repro.llm.latency import LatencyModel, LatencyModelConfig
from repro.llm.responses import ResponseGenerator
from repro.llm.service import SimulatedLLMService, LLMServiceConfig, LLMResponse

__all__ = [
    "LatencyModel",
    "LatencyModelConfig",
    "ResponseGenerator",
    "SimulatedLLMService",
    "LLMServiceConfig",
    "LLMResponse",
]
