"""Declarative scenario-matrix evaluation harness (``BENCH_scenarios.json``).

One driver, one matrix, one comparable table per scenario: every
:class:`~repro.serving.scenarios.ScenarioSpec` in the matrix runs through
the same :class:`~repro.serving.fleet.FleetSimulator` machinery and reports
the same metric set — events, hit rate, verified true-hit rate, false-hit
rate, mean latency, LLM cost, throughput — plus family-specific ``extras``
(attack accounting, τ trajectories, per-tenant isolation gaps).  Scenarios
with a natural counterfactual (the unpoisoned stream, the quiet tenant
alone, the unwarped arrivals) also report that baseline's metrics, so
per-family CI floors in ``benchmarks/test_bench_scenarios.py`` can gate
*degradation*, not absolutes.

The harness mirrors the declarative-evaluation idiom of retrieval stacks
(one evaluation object per (system, measure) pair, fanned out over a
matrix): specs are data, the driver is generic, and the emitted
``BENCH_scenarios.json`` payload carries each spec verbatim so any row is
reproducible from the JSON alone.

Default matrix (registered into the scenario registry on import):

========================  ============  =====================================
scenario                  family        what it stresses
========================  ============  =====================================
``cache_poisoning``       poisoning     misleading near-duplicate enrolment
``near_miss_flooding``    flooding      τ-adapter gaming via mined positives
``diurnal_cycle``         arrival       load-cycle batching behaviour
``flash_crowd``           arrival       burst arrivals / window pile-up
``mixed_domain_cohorts``  mixed_domain  disjoint-vocabulary cohorts
``multi_tenant_isolation``multi_tenant  noisy neighbour at provisioned size
``multi_tenant_stressed`` multi_tenant  noisy neighbour under eviction
``external_trace_replay`` replay        foreign log import determinism
========================  ============  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.datasets.corpus import Corpus
from repro.embeddings.model import SiameseEncoder
from repro.federated.online import OnlineAdaptationConfig, OnlineThresholdAdapter
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.metrics.reporting import format_table
from repro.serving.fleet import FleetConfig, FleetResult, FleetSimulator, UserStats
from repro.serving.scenarios import (
    CohortSpec,
    FloodingConfig,
    MultiTenantConfig,
    PoisoningConfig,
    ScenarioSpec,
    available_scenarios,
    build_cohort_trace,
    build_flooding_trace,
    build_multi_tenant_trace,
    get_scenario,
    inject_poisoning,
    register_scenario,
    trace_from_logs,
    trace_to_logs,
)
from repro.serving.workload import (
    ArrivalSchedule,
    Trace,
    WorkloadConfig,
    WorkloadGenerator,
    apply_arrival_schedule,
)


# --------------------------------------------------------------------------- #
# Result shapes
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioMetrics:
    """The per-scenario metric table every family reports identically."""

    n_events: int
    hit_rate: float
    true_hit_rate: float
    false_hit_rate: float
    mean_latency_s: float
    total_cost_usd: float
    throughput_lookups_per_s: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "n_events": self.n_events,
            "hit_rate": self.hit_rate,
            "true_hit_rate": self.true_hit_rate,
            "false_hit_rate": self.false_hit_rate,
            "mean_latency_s": self.mean_latency_s,
            "total_cost_usd": self.total_cost_usd,
            "throughput_lookups_per_s": self.throughput_lookups_per_s,
        }

    @classmethod
    def from_result(cls, result: FleetResult) -> "ScenarioMetrics":
        """Metrics of a whole fleet run."""
        return cls(
            n_events=result.lookups,
            hit_rate=result.hit_rate,
            true_hit_rate=result.true_hit_rate,
            false_hit_rate=result.false_hit_rate,
            mean_latency_s=result.mean_latency_s,
            total_cost_usd=result.total_cost_usd,
            throughput_lookups_per_s=result.throughput_lookups_per_s,
        )

    @classmethod
    def from_stats(cls, stats: UserStats) -> "ScenarioMetrics":
        """Metrics of a user subset (throughput is a fleet-level quantity)."""
        return cls(
            n_events=stats.lookups,
            hit_rate=stats.hit_rate,
            true_hit_rate=stats.true_hit_rate,
            false_hit_rate=stats.false_hit_rate,
            mean_latency_s=stats.mean_latency_s,
            total_cost_usd=stats.cost_usd,
        )


@dataclass
class ScenarioResult:
    """One scenario's outcome: metrics, optional counterfactual, extras."""

    spec: ScenarioSpec
    metrics: ScenarioMetrics
    baseline: Optional[ScenarioMetrics] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The spec's registered name."""
        return self.spec.name

    @property
    def family(self) -> str:
        """The spec's scenario family."""
        return self.spec.family

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (one ``BENCH_scenarios.json`` row)."""
        return {
            "spec": self.spec.to_dict(),
            "metrics": self.metrics.to_dict(),
            "baseline": None if self.baseline is None else self.baseline.to_dict(),
            "extras": dict(self.extras),
        }


@dataclass
class ScenarioMatrixResult:
    """All scenarios' outcomes plus run configuration."""

    results: List[ScenarioResult] = field(default_factory=list)
    encoder_name: str = "albert-sim"

    def __len__(self) -> int:
        return len(self.results)

    def get(self, name: str) -> ScenarioResult:
        """One scenario's result by name."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no scenario result named {name!r}")

    @property
    def families(self) -> List[str]:
        """Distinct scenario families present, sorted."""
        return sorted({r.family for r in self.results})

    def to_dict(self) -> Dict[str, object]:
        """The ``BENCH_scenarios.json`` payload."""
        return {
            "encoder_name": self.encoder_name,
            "families": self.families,
            "scenarios": {r.name: r.to_dict() for r in self.results},
        }

    def format(self) -> str:
        """Render the cross-scenario comparison table."""
        rows = []
        for r in self.results:
            m = r.metrics
            rows.append(
                [
                    r.name,
                    r.family,
                    m.n_events,
                    m.hit_rate,
                    m.true_hit_rate,
                    m.false_hit_rate,
                    m.mean_latency_s * 1000.0,
                    m.total_cost_usd,
                ]
            )
        return format_table(
            [
                "Scenario",
                "Family",
                "Events",
                "Hit rate",
                "True-hit",
                "False-hit",
                "Latency (ms)",
                "Cost ($)",
            ],
            rows,
            title=(
                "Scenario-matrix evaluation "
                f"({len(self.results)} scenarios, {self.encoder_name} encoder)"
            ),
        )


# --------------------------------------------------------------------------- #
# Fleet construction shared by every family
# --------------------------------------------------------------------------- #
def _workload_config(spec: ScenarioSpec, **extra: object) -> WorkloadConfig:
    """The spec's honest-traffic workload (overrides win over spec sizes)."""
    kwargs: Dict[str, object] = {
        "n_users": spec.n_users,
        "queries_per_user": spec.queries_per_user,
    }
    kwargs.update(spec.workload)
    kwargs.update(extra)
    return WorkloadConfig(**kwargs)


def _make_adapter(spec: ScenarioSpec) -> Optional[OnlineThresholdAdapter]:
    """Fresh online-adaptation loop per run (adapters hold per-run state)."""
    if spec.adaptation is None:
        return None
    kwargs: Dict[str, object] = {
        "initial_threshold": spec.similarity_threshold,
        "seed": spec.seed,
    }
    kwargs.update(spec.adaptation)
    return OnlineThresholdAdapter(OnlineAdaptationConfig(**kwargs))


def _make_fleet(
    spec: ScenarioSpec,
    encoder: SiameseEncoder,
    adaptation: Optional[OnlineThresholdAdapter] = None,
) -> FleetSimulator:
    """A fleet per the spec: per-device caches, or one shared central cache."""
    cache_config = MeanCacheConfig(
        similarity_threshold=spec.similarity_threshold,
        max_entries=spec.max_entries,
    )
    if spec.shared_cache:
        shared = MeanCache(encoder, cache_config)
        factory: Callable[[str], object] = lambda user_id: shared
    else:
        factory = lambda user_id: MeanCache(encoder, cache_config)
    return FleetSimulator(
        cache_factory=factory,
        service=SimulatedLLMService(LLMServiceConfig(seed=spec.seed)),
        config=FleetConfig(),
        adaptation=adaptation,
    )


def _run(
    spec: ScenarioSpec,
    encoder: SiameseEncoder,
    trace: Trace,
    adaptation: Optional[OnlineThresholdAdapter] = None,
    collect_outcomes: bool = False,
) -> FleetResult:
    return _make_fleet(spec, encoder, adaptation).run(
        trace, collect_outcomes=collect_outcomes
    )


# --------------------------------------------------------------------------- #
# Family runners
# --------------------------------------------------------------------------- #
def _run_poisoning(spec: ScenarioSpec, encoder: SiameseEncoder) -> ScenarioResult:
    corpus = Corpus(seed=spec.seed)
    base = WorkloadGenerator(
        _workload_config(spec), corpus=corpus, seed=spec.seed
    ).generate()
    poisoned, info = inject_poisoning(
        base, corpus, PoisoningConfig(**spec.params), seed=spec.seed
    )
    attacked = _run(spec, encoder, poisoned, collect_outcomes=True)
    clean = _run(spec, encoder, base)
    victims = base.user_ids
    victim_set = set(victims)
    metrics = ScenarioMetrics.from_stats(attacked.stats_for(victims))
    baseline = ScenarioMetrics.from_stats(clean.stats_for(victims))
    poison_served = sum(
        1
        for o in attacked.outcomes
        if o.hit
        and o.event.user_id in victim_set
        and o.matched_query in info.poison_queries
    )
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        baseline=baseline,
        extras={
            "n_poison_events": info.n_targets,
            "n_attackers": len(info.attacker_ids),
            "poison_served": poison_served,
            "false_hit_delta": metrics.false_hit_rate - baseline.false_hit_rate,
        },
    )


def _run_flooding(spec: ScenarioSpec, encoder: SiameseEncoder) -> ScenarioResult:
    honest_config = _workload_config(spec)
    flooding = FloodingConfig(**spec.params)
    trace, honest_ids, flooder_ids = build_flooding_trace(
        honest_config, flooding, seed=spec.seed
    )
    if spec.adaptation is None:
        raise ValueError(
            "flooding scenarios need adaptation= on the spec: the attack "
            "targets the online τ adapter"
        )
    adapter = _make_adapter(spec)
    attacked = _run(spec, encoder, trace, adaptation=adapter)
    baseline_adapter = _make_adapter(spec)
    honest_alone = WorkloadGenerator(honest_config, seed=spec.seed).generate()
    clean = _run(spec, encoder, honest_alone, adaptation=baseline_adapter)
    metrics = ScenarioMetrics.from_stats(attacked.stats_for(honest_ids))
    baseline = ScenarioMetrics.from_stats(clean.stats_for(honest_ids))
    trajectory = [
        float(t) for t in adapter.threshold_trajectory().get("threshold", [])
    ]
    served_taus = [adapter.threshold_for(uid) for uid in adapter.user_ids]
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        baseline=baseline,
        extras={
            "n_flood_events": sum(
                1 for e in trace.events if e.user_id in set(flooder_ids)
            ),
            "tau_floor": adapter.config.min_threshold,
            "min_global_tau": min(trajectory) if trajectory else adapter.global_threshold,
            "final_global_tau": adapter.global_threshold,
            "min_served_tau": min(served_taus) if served_taus else adapter.global_threshold,
            "n_rounds": len(adapter.history),
            "baseline_final_tau": baseline_adapter.global_threshold,
            "false_hit_delta": metrics.false_hit_rate - baseline.false_hit_rate,
        },
    )


def _run_arrival(spec: ScenarioSpec, encoder: SiameseEncoder) -> ScenarioResult:
    schedule = ArrivalSchedule(**spec.params)
    base = WorkloadGenerator(_workload_config(spec), seed=spec.seed).generate()
    warped = apply_arrival_schedule(base, schedule)
    scenario_run = _run(spec, encoder, warped)
    baseline_run = _run(spec, encoder, base)

    def peak_arrivals_per_s(trace: Trace) -> int:
        if not trace.events:
            return 0
        buckets = np.bincount(
            np.floor([e.time_s for e in trace.events]).astype(int)
        )
        return int(buckets.max())

    return ScenarioResult(
        spec=spec,
        metrics=ScenarioMetrics.from_result(scenario_run),
        baseline=ScenarioMetrics.from_result(baseline_run),
        extras={
            "schedule": schedule.to_dict(),
            "peak_arrivals_per_s": peak_arrivals_per_s(warped),
            "baseline_peak_arrivals_per_s": peak_arrivals_per_s(base),
            "duration_s": warped.duration_s,
            "baseline_duration_s": base.duration_s,
            "hit_rate_delta": scenario_run.hit_rate - baseline_run.hit_rate,
        },
    )


def _run_mixed_domain(spec: ScenarioSpec, encoder: SiameseEncoder) -> ScenarioResult:
    cohort_dicts = spec.params.get("cohorts")
    if not cohort_dicts:
        # Default: split the corpus into two disjoint-vocabulary cohorts.
        domains = Corpus.all_domains()
        half = len(domains) // 2
        cohort_dicts = [
            {"name": "west", "domains": domains[:half]},
            {"name": "east", "domains": domains[half:]},
        ]
    cohorts = [
        CohortSpec(
            **{
                "n_users": spec.n_users,
                "queries_per_user": spec.queries_per_user,
                **dict(d),
            }
        )
        for d in cohort_dicts
    ]
    trace, members = build_cohort_trace(cohorts, seed=spec.seed)
    result = _run(spec, encoder, trace)
    per_cohort = {
        name: ScenarioMetrics.from_stats(result.stats_for(ids)).to_dict()
        for name, ids in members.items()
    }
    return ScenarioResult(
        spec=spec,
        metrics=ScenarioMetrics.from_result(result),
        extras={
            "cohorts": [c.name for c in cohorts],
            "per_cohort": per_cohort,
            "min_cohort_hit_rate": min(
                (m["hit_rate"] for m in per_cohort.values()), default=0.0
            ),
            "max_cohort_false_hit_rate": max(
                (m["false_hit_rate"] for m in per_cohort.values()), default=0.0
            ),
        },
    )


def _run_multi_tenant(spec: ScenarioSpec, encoder: SiameseEncoder) -> ScenarioResult:
    config = MultiTenantConfig(**spec.params)
    mixed, quiet_alone, quiet_ids, noisy_ids = build_multi_tenant_trace(
        config, seed=spec.seed
    )
    mixed_run = _run(spec, encoder, mixed)
    solo_run = _run(spec, encoder, quiet_alone)
    metrics = ScenarioMetrics.from_stats(mixed_run.stats_for(quiet_ids))
    baseline = ScenarioMetrics.from_stats(solo_run.stats_for(quiet_ids))
    noisy_stats = mixed_run.stats_for(noisy_ids)
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        baseline=baseline,
        extras={
            "quiet_hit_rate_mixed": metrics.hit_rate,
            "quiet_hit_rate_alone": baseline.hit_rate,
            "isolation_gap": baseline.hit_rate - metrics.hit_rate,
            "noisy_hit_rate": noisy_stats.hit_rate,
            "noisy_traffic_share": (
                noisy_stats.lookups / mixed_run.lookups if mixed_run.lookups else 0.0
            ),
            "cache_capacity": spec.max_entries,
        },
    )


def _run_replay(spec: ScenarioSpec, encoder: SiameseEncoder) -> ScenarioResult:
    base = WorkloadGenerator(_workload_config(spec), seed=spec.seed).generate()
    # Round-trip through the foreign log schema (field names remapped).
    logs = trace_to_logs(base)
    imported = trace_from_logs(logs)
    replayed = _run(spec, encoder, imported)
    replayed_again = _run(spec, encoder, imported)
    direct = _run(spec, encoder, base)
    metrics = ScenarioMetrics.from_result(replayed)
    baseline = ScenarioMetrics.from_result(direct)
    deterministic = (
        replayed.hit_rate == replayed_again.hit_rate
        and replayed.total_cost_usd == replayed_again.total_cost_usd
        and replayed.false_hit_rate == replayed_again.false_hit_rate
    )
    return ScenarioResult(
        spec=spec,
        metrics=metrics,
        baseline=baseline,
        extras={
            "n_records": len(logs),
            "replay_deterministic": deterministic,
            "hit_rate_matches_direct": metrics.hit_rate == baseline.hit_rate,
            "cost_matches_direct": metrics.total_cost_usd == baseline.total_cost_usd,
        },
    )


FAMILY_RUNNERS: Dict[str, Callable[[ScenarioSpec, SiameseEncoder], ScenarioResult]] = {
    "poisoning": _run_poisoning,
    "flooding": _run_flooding,
    "arrival": _run_arrival,
    "mixed_domain": _run_mixed_domain,
    "multi_tenant": _run_multi_tenant,
    "replay": _run_replay,
}


# --------------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------------- #
def run_scenario(
    spec: ScenarioSpec,
    encoder: Optional[SiameseEncoder] = None,
    encoder_name: str = "albert-sim",
) -> ScenarioResult:
    """Run one scenario spec through its family runner."""
    if encoder is None:
        from repro.embeddings.zoo import load_encoder

        encoder = load_encoder(encoder_name)
    runner = FAMILY_RUNNERS.get(spec.family)
    if runner is None:  # pragma: no cover - ScenarioSpec already validates
        raise ValueError(f"no runner for scenario family {spec.family!r}")
    return runner(spec, encoder)


def run_scenario_matrix(
    specs: Optional[Sequence[ScenarioSpec]] = None,
    encoder: Optional[SiameseEncoder] = None,
    encoder_name: str = "albert-sim",
) -> ScenarioMatrixResult:
    """Run a whole scenario matrix and collect one comparable table.

    ``specs=None`` runs every registered scenario (the default zoo).  An
    explicitly empty list is legal and returns an empty matrix — the
    driver itself has no minimum-size assumption.
    """
    if specs is None:
        specs = [get_scenario(name) for name in available_scenarios()]
    matrix = ScenarioMatrixResult(encoder_name=encoder_name)
    if not specs:
        return matrix
    if encoder is None:
        from repro.embeddings.zoo import load_encoder

        encoder = load_encoder(encoder_name)
    for spec in specs:
        matrix.results.append(run_scenario(spec, encoder=encoder))
    return matrix


# --------------------------------------------------------------------------- #
# The default zoo (registered on import)
# --------------------------------------------------------------------------- #
def default_scenario_specs() -> List[ScenarioSpec]:
    """The stock scenario matrix (sizes tuned for a ~1-minute bench run)."""
    return [
        ScenarioSpec(
            name="cache_poisoning",
            family="poisoning",
            description=(
                "Attacker front-runs victims' first asks with misleading "
                "hard-negative near-duplicates on a shared cache"
            ),
            n_users=10,
            queries_per_user=30,
            shared_cache=True,
            workload={"duplicate_rate": 0.35, "followup_rate": 0.1},
            params={"target_fraction": 0.5, "lead_s": 5.0, "object_bias": 0.95},
        ),
        ScenarioSpec(
            name="near_miss_flooding",
            family="flooding",
            description=(
                "Adversarial devices flood weak-paraphrase near-misses to "
                "drag the federated τ down for honest users"
            ),
            n_users=10,
            queries_per_user=40,
            workload={"duplicate_rate": 0.35, "paraphrase_bias": 0.7},
            params={
                "n_flooders": 4,
                "queries_per_flooder": 150,
                "duplicate_rate": 0.95,
                "paraphrase_bias": 0.0,
            },
            adaptation={
                "round_interval_s": 15.0,
                "clients_per_round": 14,
                "min_observations": 12,
                "min_threshold": 0.55,
                "weighted": True,
            },
        ),
        ScenarioSpec(
            name="diurnal_cycle",
            family="arrival",
            description="Sinusoidal load cycle layered on Poisson arrivals",
            n_users=10,
            queries_per_user=30,
            params={"kind": "diurnal", "period_s": 120.0, "amplitude": 0.8},
        ),
        ScenarioSpec(
            name="flash_crowd",
            family="arrival",
            description="10x arrival-rate spike compressing a burst window",
            n_users=10,
            queries_per_user=30,
            params={
                "kind": "flash_crowd",
                "flash_at_s": 30.0,
                "flash_duration_s": 30.0,
                "flash_multiplier": 10.0,
            },
        ),
        ScenarioSpec(
            name="mixed_domain_cohorts",
            family="mixed_domain",
            description=(
                "Disjoint-vocabulary cohorts (multilingual stand-in) served "
                "by one fleet simultaneously"
            ),
            n_users=6,
            queries_per_user=30,
            params={
                "cohorts": [
                    {"name": "west", "domains": ["programming", "science", "devices", "finance"]},
                    {"name": "east", "domains": ["cooking", "travel", "gardening", "fitness"]},
                ]
            },
        ),
        ScenarioSpec(
            name="multi_tenant_isolation",
            family="multi_tenant",
            description=(
                "One noisy tenant floods unique traffic through a shared "
                "cache provisioned for the working set"
            ),
            shared_cache=True,
            params={
                "n_quiet_users": 8,
                "queries_per_quiet_user": 30,
                "n_noisy_users": 2,
                "queries_per_noisy_user": 120,
                "noisy_rate_multiplier": 5.0,
            },
        ),
        ScenarioSpec(
            name="multi_tenant_stressed",
            family="multi_tenant",
            description=(
                "Same noisy neighbour, but the shared cache is capacity-"
                "starved so eviction pressure is real"
            ),
            shared_cache=True,
            max_entries=64,
            params={
                "n_quiet_users": 8,
                "queries_per_quiet_user": 30,
                "n_noisy_users": 2,
                "queries_per_noisy_user": 120,
                "noisy_rate_multiplier": 5.0,
            },
        ),
        ScenarioSpec(
            name="external_trace_replay",
            family="replay",
            description=(
                "Foreign request logs imported via trace_from_logs replay "
                "deterministically and match the direct run"
            ),
            n_users=8,
            queries_per_user=25,
            workload={"duplicate_rate": 0.4},
        ),
    ]


for _spec in default_scenario_specs():
    register_scenario(_spec, replace=True)
