"""Persistence benchmarks: zero-copy warm starts, delta appends, tiered bytes.

Three measurements back the ``persistence`` section of ``BENCH_index.json``
(recorded by ``benchmarks/test_bench_index.py::test_persistence_gates``):

* :func:`run_restore_bench` — snapshot save / full-copy load / mmap load
  wall-time at production entry counts (10^6 by default), plus snapshot
  bytes-per-entry.  The gated floor: ``load_index(path, mmap=True)`` must
  restore ≥20× faster than the full-copy load at 10^6 entries — the mmap
  path adopts the storage matrix without copying and defers the id→row map,
  so restore cost is O(1) in the entry count.
* :func:`run_delta_bench` — appending a 1k-entry delta to a small and to a
  large snapshot.  The gated floor: append cost is proportional to the
  delta, not the snapshot (the large-snapshot append must not approach the
  large full-save cost, and must stay within a small factor of the
  small-snapshot append).
* :func:`run_tiered_fleet_bench` — the same fleet workload replayed through
  an all-exact fleet (one unbounded MeanCache per user) and a tiered fleet
  (small exact L1 per user over a quantized L2).  The gated floor: the
  tiered fleet's bytes-per-entry is ≤0.5× the exact fleet's at an equal
  (±2pp) hit rate — the memory-hierarchy trade the paper's fleet needs to
  reach 10^6–10^7 total entries.

Everything here is pure measurement; the floors live in the benchmark test
so CI publishes the JSON either way.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.core.tiered import TieredCache
from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer
from repro.embeddings.model import EncoderConfig, SiameseEncoder
from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig
from repro.index import make_index
from repro.index.snapshot import append_delta, load_index, save_index
from repro.metrics.reporting import format_table
from repro.serving.fleet import FleetConfig, FleetSimulator
from repro.serving.workload import WorkloadConfig, WorkloadGenerator


def _bench_encoder(seed: int = 5) -> SiameseEncoder:
    """The suite's small deterministic encoder (64-d, hashed features)."""
    config = EncoderConfig(
        n_features=256, hidden_dim=32, output_dim=64, seed=seed, anisotropy=0.3
    )
    featurizer = HashedFeaturizer(
        FeaturizerConfig(n_features=256, seed=seed), Tokenizer(TokenizerConfig())
    )
    return SiameseEncoder(config, featurizer)


def _build_flat_snapshot(path: Path, n_entries: int, dim: int, seed: int) -> float:
    """Populate a flat index with ``n_entries`` random rows and save it.

    Rows are generated and added in chunks so peak transient memory stays
    bounded at production sizes.  Returns the save wall-time in seconds.
    """
    rng = np.random.default_rng(seed)
    index = make_index("flat", dim=dim)
    chunk = 100_000
    for start in range(0, n_entries, chunk):
        rows = min(chunk, n_entries - start)
        index.add_batch(rng.standard_normal((rows, dim), dtype=np.float32))
    start_s = time.perf_counter()
    save_index(index, path)
    return time.perf_counter() - start_s


def _dir_nbytes(path: Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


@dataclass
class RestoreBenchResult:
    """Warm-start cost of one snapshot size."""

    n_entries: int
    dim: int
    save_s: float
    full_load_s: float
    mmap_load_s: float
    mmap_speedup: float
    snapshot_bytes: int
    bytes_per_entry: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "n_entries": self.n_entries,
            "dim": self.dim,
            "save_s": self.save_s,
            "full_load_s": self.full_load_s,
            "mmap_load_s": self.mmap_load_s,
            "mmap_speedup": self.mmap_speedup,
            "snapshot_bytes": self.snapshot_bytes,
            "bytes_per_entry": self.bytes_per_entry,
        }


def run_restore_bench(
    n_entries: int = 1_000_000,
    dim: int = 64,
    seed: int = 7,
    workdir: "str | Path | None" = None,
) -> RestoreBenchResult:
    """Measure save / full-copy load / mmap load at ``n_entries`` rows.

    The mmap load is validated to actually be lazy: it must produce a
    memmap-backed index (adoption, not a silent copy).
    """
    owns_dir = workdir is None
    root = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp())
    try:
        path = root / f"restore-{n_entries}"
        save_s = _build_flat_snapshot(path, n_entries, dim, seed)

        start = time.perf_counter()
        full = load_index(path)
        full_load_s = time.perf_counter() - start
        assert len(full.ids) == n_entries
        del full

        start = time.perf_counter()
        mapped = load_index(path, mmap=True)
        mmap_load_s = time.perf_counter() - start
        if not getattr(mapped, "mmap_backed", False):
            raise RuntimeError("mmap load did not adopt the storage matrix")
        del mapped

        snapshot_bytes = _dir_nbytes(path)
        return RestoreBenchResult(
            n_entries=n_entries,
            dim=dim,
            save_s=save_s,
            full_load_s=full_load_s,
            mmap_load_s=mmap_load_s,
            mmap_speedup=full_load_s / mmap_load_s if mmap_load_s > 0 else float("inf"),
            snapshot_bytes=snapshot_bytes,
            bytes_per_entry=snapshot_bytes / n_entries if n_entries else 0.0,
        )
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


@dataclass
class DeltaBenchResult:
    """Delta-append cost vs snapshot size."""

    small_entries: int
    large_entries: int
    delta_rows: int
    append_small_s: float
    append_large_s: float
    full_save_large_s: float
    #: append-to-large vs append-to-small — ~1.0 when cost is O(delta)
    size_sensitivity: float
    #: full rewrite cost vs the delta append it replaces
    append_speedup_vs_full_save: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "small_entries": self.small_entries,
            "large_entries": self.large_entries,
            "delta_rows": self.delta_rows,
            "append_small_s": self.append_small_s,
            "append_large_s": self.append_large_s,
            "full_save_large_s": self.full_save_large_s,
            "size_sensitivity": self.size_sensitivity,
            "append_speedup_vs_full_save": self.append_speedup_vs_full_save,
        }


def run_delta_bench(
    small_entries: int = 10_000,
    large_entries: int = 1_000_000,
    delta_rows: int = 1_000,
    dim: int = 64,
    seed: int = 11,
    repeats: int = 5,
    workdir: "str | Path | None" = None,
) -> DeltaBenchResult:
    """Append a ``delta_rows`` delta to a small and to a large snapshot.

    Each append is repeated ``repeats`` times and the *minimum* wall-time
    kept (the usual microbenchmark noise floor).  The large snapshot's full
    save time is measured once for the rewrite-cost comparison.
    """
    owns_dir = workdir is None
    root = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp())
    rng = np.random.default_rng(seed)
    delta = rng.standard_normal((delta_rows, dim), dtype=np.float32)
    try:
        small = root / "delta-small"
        large = root / "delta-large"
        _build_flat_snapshot(small, small_entries, dim, seed)
        full_save_large_s = _build_flat_snapshot(large, large_entries, dim, seed + 1)

        def timed_append(path: Path, base: int) -> float:
            best = float("inf")
            for r in range(repeats):
                ids = list(range(base + r * delta_rows, base + (r + 1) * delta_rows))
                start = time.perf_counter()
                append_delta(path, vectors=delta, ids=ids)
                best = min(best, time.perf_counter() - start)
            return best

        append_small_s = timed_append(small, base=10_000_000)
        append_large_s = timed_append(large, base=10_000_000)
        return DeltaBenchResult(
            small_entries=small_entries,
            large_entries=large_entries,
            delta_rows=delta_rows,
            append_small_s=append_small_s,
            append_large_s=append_large_s,
            full_save_large_s=full_save_large_s,
            size_sensitivity=(
                append_large_s / append_small_s if append_small_s > 0 else float("inf")
            ),
            append_speedup_vs_full_save=(
                full_save_large_s / append_large_s if append_large_s > 0 else float("inf")
            ),
        )
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


@dataclass
class TieredFleetBenchResult:
    """Bytes-vs-hit-rate of a tiered fleet against the all-exact fleet."""

    n_users: int
    n_events: int
    exact_hit_rate: float
    tiered_hit_rate: float
    exact_bytes_per_entry: float
    tiered_bytes_per_entry: float
    #: tiered / exact bytes-per-entry — the ≤0.5 floor quantity
    bytes_ratio: float
    hit_rate_gap: float
    tiered_l1_entries: int
    tiered_l2_entries: int

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "n_users": self.n_users,
            "n_events": self.n_events,
            "exact_hit_rate": self.exact_hit_rate,
            "tiered_hit_rate": self.tiered_hit_rate,
            "exact_bytes_per_entry": self.exact_bytes_per_entry,
            "tiered_bytes_per_entry": self.tiered_bytes_per_entry,
            "bytes_ratio": self.bytes_ratio,
            "hit_rate_gap": self.hit_rate_gap,
            "tiered_l1_entries": self.tiered_l1_entries,
            "tiered_l2_entries": self.tiered_l2_entries,
        }


def run_tiered_fleet_bench(
    n_users: int = 40,
    queries_per_user: int = 60,
    l1_entries: int = 4,
    seed: int = 13,
) -> TieredFleetBenchResult:
    """Replay one fleet workload through exact and tiered fleets.

    Both fleets share the encoder and the trace; the tiered fleet gives
    each user a small exact L1 over a per-user sq8 L2 (``min_train_size``
    low enough that codes train during the run, so the measured bytes are
    the quantized steady state, not the float staging phase).
    """
    encoder = _bench_encoder(seed)
    trace = WorkloadGenerator(
        WorkloadConfig(
            n_users=n_users,
            queries_per_user=queries_per_user,
            duplicate_rate=0.6,
        ),
        seed=seed,
    ).generate()
    fleet_config = FleetConfig(batch_window_s=0.25)

    exact_fleet = FleetSimulator(
        cache_factory=lambda user_id: MeanCache(
            encoder, MeanCacheConfig(max_entries=100_000)
        ),
        config=fleet_config,
    )
    exact_result = exact_fleet.run(trace)
    exact_report = exact_fleet.storage_report()

    tiered_fleet = FleetSimulator(
        cache_factory=lambda user_id: TieredCache(
            encoder,
            MeanCacheConfig(max_entries=l1_entries),
            l2_params={"min_train_size": 16},
        ),
        config=fleet_config,
    )
    tiered_result = tiered_fleet.run(trace)
    tiered_report = tiered_fleet.storage_report()

    exact_bpe = float(exact_report["bytes_per_entry"])
    tiered_bpe = float(tiered_report["bytes_per_entry"])
    return TieredFleetBenchResult(
        n_users=n_users,
        n_events=len(trace),
        exact_hit_rate=exact_result.hit_rate,
        tiered_hit_rate=tiered_result.hit_rate,
        exact_bytes_per_entry=exact_bpe,
        tiered_bytes_per_entry=tiered_bpe,
        bytes_ratio=tiered_bpe / exact_bpe if exact_bpe else float("inf"),
        hit_rate_gap=abs(exact_result.hit_rate - tiered_result.hit_rate),
        tiered_l1_entries=int(tiered_report["l1_entries"]),
        tiered_l2_entries=int(tiered_report["l2_entries"]),
    )


def format_persistence_report(
    restore: RestoreBenchResult,
    delta: DeltaBenchResult,
    tiered: TieredFleetBenchResult,
) -> str:
    """Human-readable summary of the three persistence measurements."""
    rows = [
        (
            "restore",
            f"{restore.n_entries:,} entries",
            f"full {restore.full_load_s * 1e3:.1f} ms",
            f"mmap {restore.mmap_load_s * 1e3:.2f} ms",
            f"{restore.mmap_speedup:.1f}x",
        ),
        (
            "delta append",
            f"{delta.delta_rows:,} rows",
            f"small {delta.append_small_s * 1e3:.2f} ms",
            f"large {delta.append_large_s * 1e3:.2f} ms",
            f"{delta.append_speedup_vs_full_save:.1f}x vs full save",
        ),
        (
            "tiered fleet",
            f"{tiered.n_events:,} events",
            f"exact {tiered.exact_bytes_per_entry:.0f} B/entry",
            f"tiered {tiered.tiered_bytes_per_entry:.0f} B/entry",
            f"ratio {tiered.bytes_ratio:.2f}",
        ),
    ]
    return format_table(
        ["benchmark", "scale", "a", "b", "headline"],
        rows,
        title="Persistence / memory hierarchy",
    )


def main() -> None:
    """Small-scale run for eyeballing (full scale runs in the bench suite)."""
    restore = run_restore_bench(n_entries=100_000)
    delta = run_delta_bench(small_entries=5_000, large_entries=100_000)
    tiered = run_tiered_fleet_bench(n_users=20, queries_per_user=25)
    print(format_persistence_report(restore, delta, tiered))


if __name__ == "__main__":
    main()
