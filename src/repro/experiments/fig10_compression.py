"""Figure 10: embedding compression — storage, search time and F-score.

For cache populations of 1000 / 2000 / 3000 queries, the paper compares
GPTCache, MeanCache (MPNet), MeanCache (Albert) and the PCA-compressed
MeanCache variants on (a) embedding storage, (b) mean semantic-search time per
probe and (c) F-score.  Compression reduces 768-d embeddings to 64 dimensions,
cutting storage by ~83% and speeding up the search, at a small F-score cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.core.compression import compress_cache
from repro.datasets.semantic_pairs import generate_cache_workload
from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.federated.threshold import find_optimal_threshold
from repro.metrics.classification import confusion_matrix
from repro.metrics.reporting import format_table


@dataclass
class CompressionPoint:
    """One (system, cache size) measurement."""

    system: str
    n_cached: int
    storage_kb: float
    mean_search_time_s: float
    f_score: float
    precision: float
    recall: float
    embedding_dim: int


@dataclass
class Fig10Result:
    """All measured points of Figure 10's three panels."""

    cache_sizes: Sequence[int]
    points: List[CompressionPoint] = field(default_factory=list)

    def series(self, system: str) -> Dict[str, np.ndarray]:
        """Per-panel series for one system, ordered by cache size."""
        pts = sorted((p for p in self.points if p.system == system), key=lambda p: p.n_cached)
        return {
            "n_cached": np.array([p.n_cached for p in pts]),
            "storage_kb": np.array([p.storage_kb for p in pts]),
            "search_time_s": np.array([p.mean_search_time_s for p in pts]),
            "f_score": np.array([p.f_score for p in pts]),
        }

    def systems(self) -> List[str]:
        """All system labels present."""
        return sorted({p.system for p in self.points})

    def storage_saving(self, base: str = "MeanCache (MPNet)", compressed: str = "MeanCache-Compressed (MPNet)") -> float:
        """Fractional embedding-storage saving of the compressed variant."""
        base_series = self.series(base)["storage_kb"]
        comp_series = self.series(compressed)["storage_kb"]
        if base_series.size == 0 or base_series.sum() == 0:
            return 0.0
        return float(1.0 - comp_series.sum() / base_series.sum())

    def search_speedup(self, base: str = "MeanCache (MPNet)", compressed: str = "MeanCache-Compressed (MPNet)") -> float:
        """Relative search-time reduction of the compressed variant."""
        base_series = self.series(base)["search_time_s"]
        comp_series = self.series(compressed)["search_time_s"]
        if base_series.size == 0 or base_series.sum() == 0:
            return 0.0
        return float(1.0 - comp_series.sum() / base_series.sum())

    def format(self) -> str:
        """Render all points as a table."""
        rows = [
            [p.system, p.n_cached, p.embedding_dim, p.storage_kb, p.mean_search_time_s * 1000.0, p.f_score]
            for p in sorted(self.points, key=lambda p: (p.system, p.n_cached))
        ]
        table = format_table(
            ["System", "Cached", "Dim", "Storage (KB)", "Search (ms)", "F score"],
            rows,
            float_fmt="{:.3f}",
            title="Figure 10: storage / search time / F-score vs number of cached queries",
        )
        summary = (
            f"\nEmbedding storage saving (MPNet, compressed): {self.storage_saving():.1%}"
            f"\nSearch-time reduction  (MPNet, compressed): {self.search_speedup():.1%}"
        )
        return table + summary


def _evaluate_cache_point(
    cache: MeanCache,
    system: str,
    workload,
    threshold_pairs,
    beta: float = 0.5,
) -> CompressionPoint:
    """Measure storage, search time and decision quality for one cache."""
    predictions = np.zeros(workload.n_probes, dtype=bool)
    search_times: List[float] = []
    for i, probe in enumerate(workload.probes):
        decision = cache.lookup(probe.text)
        predictions[i] = decision.hit
        search_times.append(decision.search_time_s)
    cm = confusion_matrix(workload.true_labels, predictions)
    metrics = cm.metrics(beta)
    return CompressionPoint(
        system=system,
        n_cached=len(cache),
        storage_kb=cache.embedding_storage_bytes() / 1024.0,
        mean_search_time_s=float(np.mean(search_times)) if search_times else 0.0,
        f_score=metrics["f_score"],
        precision=metrics["precision"],
        recall=metrics["recall"],
        embedding_dim=cache.embedding_dim,
    )


def run_fig10(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    n_components: int = 64,
    include_albert: bool = True,
    beta: float = 0.5,
) -> Fig10Result:
    """Reproduce Figure 10 (three panels)."""
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed, train_albert=include_albert)
    cache_sizes = list(resolved.compression_cache_sizes)
    result = Fig10Result(cache_sizes=cache_sizes)

    trained = [("MPNet", bundle.meancache_mpnet)]
    if include_albert and bundle.meancache_albert is not None:
        trained.append(("Albert", bundle.meancache_albert))

    for n_cached in cache_sizes:
        workload = generate_cache_workload(
            n_cached=n_cached,
            n_probes=min(resolved.n_probes, max(2 * n_cached, 50)),
            duplicate_fraction=0.3,
            corpus=bundle.corpus,
            seed=seed + 400 + n_cached,
        )

        # --- GPTCache baseline (uncompressed ALBERT, fixed threshold) ---- #
        gpt_encoder = bundle.gptcache_encoder()
        gpt = GPTCache(gpt_encoder, GPTCacheConfig(similarity_threshold=0.7))
        gpt.populate(workload.cached_queries)
        predictions = np.zeros(workload.n_probes, dtype=bool)
        search_times: List[float] = []
        for i, probe in enumerate(workload.probes):
            decision = gpt.lookup(probe.text)
            predictions[i] = decision.hit
            search_times.append(decision.search_time_s)
        cm = confusion_matrix(workload.true_labels, predictions)
        metrics = cm.metrics(beta)
        result.points.append(
            CompressionPoint(
                system="GPTCache",
                n_cached=len(gpt),
                storage_kb=gpt.embedding_storage_bytes() / 1024.0,
                mean_search_time_s=float(np.mean(search_times)),
                f_score=metrics["f_score"],
                precision=metrics["precision"],
                recall=metrics["recall"],
                embedding_dim=gpt_encoder.embedding_dim,
            )
        )

        # --- MeanCache variants ------------------------------------------ #
        for label, trained_encoder in trained:
            # Uncompressed.
            mc = MeanCache(
                trained_encoder.encoder.clone(),
                MeanCacheConfig(similarity_threshold=trained_encoder.threshold),
            )
            mc.populate(workload.cached_queries)
            result.points.append(
                _evaluate_cache_point(
                    mc, f"MeanCache ({label})", workload, bundle.val_pairs, beta
                )
            )

            # Compressed: fit PCA on the cached queries, re-learn the
            # threshold on compressed embeddings (the adaptive-threshold
            # mechanism operates on whatever embedding space is deployed).
            mc_comp = MeanCache(
                trained_encoder.encoder.clone(),
                MeanCacheConfig(similarity_threshold=trained_encoder.threshold),
            )
            mc_comp.populate(workload.cached_queries)
            k = min(n_components, max(2, len(mc_comp) - 1))
            compress_cache(mc_comp, n_components=k)
            compressed_threshold = find_optimal_threshold(
                mc_comp.encoder,
                bundle.val_pairs.as_tuples(),
                beta=beta,
                default=trained_encoder.threshold,
            )
            mc_comp.set_threshold(compressed_threshold)
            result.points.append(
                _evaluate_cache_point(
                    mc_comp, f"MeanCache-Compressed ({label})", workload, bundle.val_pairs, beta
                )
            )
    return result
