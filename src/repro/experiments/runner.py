"""Run every experiment and emit a combined report.

``python -m repro.experiments.runner [--scale quick|paper] [--output FILE]``
regenerates every table and figure of the paper and writes a plain-text
report (the content backing ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.experiments.common import cached_system_bundle, resolve_scale
from repro.experiments.contextual import run_contextual
from repro.experiments.fig04_userstudy import run_fig04
from repro.experiments.fig05_latency import run_fig05
from repro.experiments.fig10_compression import run_fig10
from repro.experiments.fig11_12_fl_training import run_fig11_12
from repro.experiments.fig13_14_threshold import run_fig13_14
from repro.experiments.fig15_model_cost import run_fig15
from repro.experiments.fig16_llama_threshold import run_fig16
from repro.experiments.fleet_bench import run_drift_adaptation_bench, run_fleet_bench
from repro.experiments.index_bench import (
    run_backend_sweep,
    run_index_bench,
    run_latency_bench,
)
from repro.experiments.table1 import run_table1


@dataclass
class FullReport:
    """Formatted text of every experiment, keyed by artefact name."""

    scale_name: str
    sections: Dict[str, str] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def format(self) -> str:
        """Concatenate all sections."""
        header = (
            f"MeanCache reproduction — full experiment report (scale={self.scale_name}, "
            f"elapsed {self.elapsed_s:.1f}s)\n" + "=" * 78
        )
        parts = [header]
        for name, text in self.sections.items():
            parts.append("")
            parts.append(f"## {name}")
            parts.append(text)
        return "\n".join(parts)


def run_all(scale: "str | None" = None, seed: int = 0) -> FullReport:
    """Run every experiment at the given scale and collect formatted output."""
    resolved = resolve_scale(scale)
    start = time.perf_counter()
    bundle = cached_system_bundle(resolved, seed=seed, train_albert=True)
    report = FullReport(scale_name=resolved.name)

    report.sections["Table I (standalone) + Figure 7"] = run_table1(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Table I (contextual) + Figures 8-9"] = run_contextual(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Figure 4 (user study)"] = run_fig04().format()
    report.sections["Figures 5-6 (response times & decisions)"] = run_fig05(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Figure 10 (compression)"] = run_fig10(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Figures 11-12 (FL training curves)"] = run_fig11_12(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Figures 13-14 (threshold sweeps)"] = run_fig13_14(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Figure 15 (embedding cost)"] = run_fig15(
        n_queries=50 if resolved.name == "quick" else 200
    ).format()
    report.sections["Figure 16 (Llama-2 threshold sweep)"] = run_fig16(
        resolved.name, seed=seed, bundle=bundle
    ).format()
    report.sections["Index microbenchmark (insert/lookup throughput)"] = run_index_bench(
        n_entries=2_000 if resolved.name == "quick" else 10_000, seed=seed
    ).format()
    report.sections["ANN backend sweep (recall vs throughput vs memory)"] = run_backend_sweep(
        sizes=(2_000, 10_000) if resolved.name == "quick" else (10_000, 100_000),
        seed=seed,
    ).format()
    report.sections["Single-query latency (fused vs reference scans)"] = run_latency_bench(
        sizes=(10_000,) if resolved.name == "quick" else (100_000, 1_000_000),
        n_queries=30 if resolved.name == "quick" else 100,
        seed=seed,
    ).format()
    report.sections["Fleet serving benchmark (multi-user throughput)"] = run_fleet_bench(
        user_counts=(20, 100) if resolved.name == "quick" else (100, 1000),
        queries_per_user=5 if resolved.name == "quick" else 10,
        seed=seed,
    ).format()
    report.sections["Online federated τ adaptation (drifting fleet)"] = (
        run_drift_adaptation_bench(
            n_users=10 if resolved.name == "quick" else 30,
            queries_per_user=60 if resolved.name == "quick" else 150,
            seed=seed,
        ).format()
    )
    report.elapsed_s = time.perf_counter() - start
    return report


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Regenerate every MeanCache paper artefact.")
    parser.add_argument("--scale", choices=["quick", "paper"], default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None, help="write the report to a file")
    args = parser.parse_args(argv)
    report = run_all(scale=args.scale, seed=args.seed)
    text = report.format()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
