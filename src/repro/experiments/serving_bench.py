"""Wall-clock serving benchmark: a threaded load generator over CacheServer.

Everything else in the repo measures the serving stack on the simulator's
virtual clock; this experiment measures the *live* tier.  A deterministic
multi-user trace (:class:`~repro.serving.workload.WorkloadGenerator`, fleet
sizes of 10^4–10^5 users) is driven through a started
:class:`~repro.serving.server.CacheServer` by real client threads — each
thread owns a slice of the fleet and replays its users' events in order,
closed-loop — and the server's own metrics supply the headline numbers:

* sustained throughput (requests/s against measured wall clock),
* end-to-end p50/p95/p99 latency (submit → response, including queue wait),
* queue-depth samples, flush-size histogram and shed rate.

The run is repeated with micro-batching disabled (``max_batch_size=1``) on
an identical fresh fleet, so ``BENCH_serving.json`` carries the
amortization headline directly: cross-user batching must beat batch-size-1
throughput on the same traffic (a CI floor in
``benchmarks/test_bench_serving.py``).  On a single-core host the win is
pure amortization — one encoder GEMM and one event-loop round per flush
instead of per request — not thread parallelism.

Methodology notes: latencies are *measured* wall-clock times, so absolute
numbers vary with host load; the CI floors therefore only compare the two
modes measured seconds apart on the same host (relative floors), never
absolute milliseconds.  The simulated LLM service models miss latency but
never sleeps — throughput here is cache-tier throughput, the quantity the
serving layer actually controls.

Run directly (REPRO_SMOKE=1 shrinks the fleet for a CI smoke pass)::

    PYTHONPATH=src python -m repro.experiments.serving_bench
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.embeddings.model import SiameseEncoder
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.metrics.reporting import format_table
from repro.serving.server import CacheServer, ServerConfig
from repro.serving.workload import Trace, WorkloadConfig, WorkloadGenerator


@dataclass
class ServingBenchPoint:
    """One serving mode's measurements (batched or batch-size-1)."""

    label: str
    n_users: int
    n_requests: int
    n_client_threads: int
    max_batch_size: int
    max_batch_wait_s: float
    n_shards: int
    wall_clock_s: float
    throughput_rps: float
    hit_rate: float
    shed: int
    shed_rate: float
    e2e_p50_ms: float
    e2e_p95_ms: float
    e2e_p99_ms: float
    queue_wait_p99_ms: float
    mean_batch_size: float
    batch_size_histogram: Dict[str, int] = field(default_factory=dict)
    max_queue_depth_seen: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "label": self.label,
            "n_users": self.n_users,
            "n_requests": self.n_requests,
            "n_client_threads": self.n_client_threads,
            "max_batch_size": self.max_batch_size,
            "max_batch_wait_s": self.max_batch_wait_s,
            "n_shards": self.n_shards,
            "wall_clock_s": self.wall_clock_s,
            "throughput_rps": self.throughput_rps,
            "hit_rate": self.hit_rate,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "e2e_p50_ms": self.e2e_p50_ms,
            "e2e_p95_ms": self.e2e_p95_ms,
            "e2e_p99_ms": self.e2e_p99_ms,
            "queue_wait_p99_ms": self.queue_wait_p99_ms,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": dict(self.batch_size_histogram),
            "max_queue_depth_seen": self.max_queue_depth_seen,
        }


@dataclass
class ServingBenchResult:
    """Batched vs batch-size-1 comparison plus the run configuration."""

    batched: ServingBenchPoint
    unbatched: ServingBenchPoint
    queries_per_user: int
    duplicate_rate: float
    similarity_threshold: float
    seed: int

    @property
    def batching_speedup(self) -> float:
        """Batched throughput over batch-size-1 throughput (same traffic)."""
        if self.unbatched.throughput_rps <= 0:
            return 0.0
        return self.batched.throughput_rps / self.unbatched.throughput_rps

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``BENCH_serving.json`` payload)."""
        return {
            "queries_per_user": self.queries_per_user,
            "duplicate_rate": self.duplicate_rate,
            "similarity_threshold": self.similarity_threshold,
            "seed": self.seed,
            "batching_speedup": self.batching_speedup,
            "batched": self.batched.to_dict(),
            "unbatched": self.unbatched.to_dict(),
        }

    def format(self) -> str:
        """Render the comparison table."""
        rows = [
            [
                p.label,
                p.n_users,
                p.n_requests,
                f"{p.wall_clock_s:.2f}",
                f"{p.throughput_rps:,.0f}",
                f"{p.hit_rate:.3f}",
                f"{p.e2e_p50_ms:.2f}",
                f"{p.e2e_p99_ms:.2f}",
                f"{p.mean_batch_size:.1f}",
                f"{p.shed_rate:.3f}",
            ]
            for p in (self.batched, self.unbatched)
        ]
        return format_table(
            [
                "Mode",
                "Users",
                "Requests",
                "Wall clock (s)",
                "Req/s",
                "Hit rate",
                "p50 (ms)",
                "p99 (ms)",
                "Mean batch",
                "Shed rate",
            ],
            rows,
            title=(
                "Wall-clock serving benchmark: cross-user micro-batching vs "
                f"batch-size-1 (speedup {self.batching_speedup:.2f}x)"
            ),
        )


def drive_load(
    server: CacheServer,
    trace: Trace,
    n_client_threads: int,
) -> List[object]:
    """Replay a trace's events through a started server from client threads.

    Users are partitioned across threads by stable order of first
    appearance; each thread submits its users' events in trace order,
    closed-loop (one outstanding request per thread), which preserves
    per-user FIFO by construction.  Returns every
    :class:`~repro.serving.server.ServerResponse`; a client thread's
    failure (e.g. an unexpected :class:`BackpressureError`) is re-raised.
    """
    events_of_thread: Dict[int, List] = {t: [] for t in range(n_client_threads)}
    thread_of_user: Dict[str, int] = {}
    for event in trace.events:
        tid = thread_of_user.setdefault(
            event.user_id, len(thread_of_user) % n_client_threads
        )
        events_of_thread[tid].append(event)

    responses: List[object] = []
    responses_lock = threading.Lock()
    errors: List[BaseException] = []

    def client(tid: int) -> None:
        mine = []
        try:
            for event in events_of_thread[tid]:
                future = server.submit_threadsafe(
                    event.user_id, event.query, context=event.context
                )
                mine.append(future.result(timeout=300))
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            errors.append(exc)
        with responses_lock:
            responses.extend(mine)

    threads = [
        threading.Thread(target=client, args=(tid,), name=f"load-gen-{tid}")
        for tid in range(n_client_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return responses


def _measure_mode(
    label: str,
    trace: Trace,
    cache_factory: Callable[[str], object],
    encoder: Optional[SiameseEncoder],
    config: ServerConfig,
    n_client_threads: int,
    seed: int,
) -> ServingBenchPoint:
    """One load-generation run against a fresh server; returns its point."""
    import time

    server = CacheServer(
        cache_factory,
        service=SimulatedLLMService(LLMServiceConfig(seed=seed), thread_safe=True),
        config=config,
        encoder=encoder,
    )
    server.start()
    try:
        start = time.perf_counter()
        responses = drive_load(server, trace, n_client_threads)
        wall_clock = time.perf_counter() - start
    finally:
        server.stop()
    metrics = server.metrics
    assert metrics.completed == len(responses) == len(trace)
    return ServingBenchPoint(
        label=label,
        n_users=trace.n_users,
        n_requests=len(responses),
        n_client_threads=n_client_threads,
        max_batch_size=config.max_batch_size,
        max_batch_wait_s=config.max_batch_wait_s,
        n_shards=config.n_shards,
        wall_clock_s=wall_clock,
        throughput_rps=len(responses) / wall_clock if wall_clock > 0 else 0.0,
        hit_rate=metrics.hit_rate,
        shed=metrics.shed,
        shed_rate=metrics.shed_rate,
        e2e_p50_ms=metrics.e2e_latency.p50 / 1e6,
        e2e_p95_ms=metrics.e2e_latency.p95 / 1e6,
        e2e_p99_ms=metrics.e2e_latency.p99 / 1e6,
        queue_wait_p99_ms=metrics.queue_wait.p99 / 1e6,
        mean_batch_size=metrics.mean_batch_size,
        batch_size_histogram={
            str(k): v for k, v in metrics.batch_size_histogram().items()
        },
        max_queue_depth_seen=metrics.max_depth_seen,
    )


def run_serving_bench(
    n_users: int = 10_000,
    queries_per_user: int = 2,
    n_client_threads: int = 16,
    max_batch_size: int = 64,
    max_batch_wait_s: float = 0.0005,
    n_shards: int = 8,
    duplicate_rate: float = 0.3,
    similarity_threshold: float = 0.8,
    encoder: Optional[SiameseEncoder] = None,
    seed: int = 0,
) -> ServingBenchResult:
    """Measure live serving throughput, batched vs batch-size-1.

    One trace is generated once and replayed twice against *fresh* fleets:
    once with the adaptive micro-batcher (``max_batch_size``, cross-user
    batched embedding) and once with batching disabled (``max_batch_size=1``,
    ``max_batch_wait_s=0`` — every request is its own flush).  Identical
    traffic, identical caches, identical service seed: the only variable is
    the batching policy.
    """
    if encoder is None:
        from repro.embeddings.zoo import load_encoder

        encoder = load_encoder("albert-sim")
    trace = WorkloadGenerator(
        WorkloadConfig(
            n_users=n_users,
            queries_per_user=queries_per_user,
            duplicate_rate=duplicate_rate,
        ),
        seed=seed,
    ).generate()
    cache_config = MeanCacheConfig(similarity_threshold=similarity_threshold)

    def factory(user_id: str) -> MeanCache:
        return MeanCache(encoder, cache_config)

    batched = _measure_mode(
        "batched",
        trace,
        factory,
        encoder,
        ServerConfig(
            n_shards=n_shards,
            max_batch_size=max_batch_size,
            max_batch_wait_s=max_batch_wait_s,
            max_queue_depth=max(4096, 4 * n_client_threads),
        ),
        n_client_threads,
        seed,
    )
    unbatched = _measure_mode(
        "unbatched",
        trace,
        factory,
        encoder,
        ServerConfig(
            n_shards=n_shards,
            max_batch_size=1,
            max_batch_wait_s=0.0,
            max_queue_depth=max(4096, 4 * n_client_threads),
        ),
        n_client_threads,
        seed,
    )
    return ServingBenchResult(
        batched=batched,
        unbatched=unbatched,
        queries_per_user=queries_per_user,
        duplicate_rate=duplicate_rate,
        similarity_threshold=similarity_threshold,
        seed=seed,
    )


def main() -> None:
    """Self-contained smoke/demo entry (REPRO_SMOKE=1 shrinks the fleet)."""
    smoke = os.environ.get("REPRO_SMOKE") == "1"
    from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer
    from repro.embeddings.model import EncoderConfig
    from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig

    # The smoke/demo entry uses a small untrained encoder so it runs in
    # seconds without the zoo's pretraining pass; the benchmark harness
    # (benchmarks/test_bench_serving.py) uses the trained zoo encoder.
    encoder = SiameseEncoder(
        EncoderConfig(n_features=256, hidden_dim=32, output_dim=64, seed=5),
        HashedFeaturizer(FeaturizerConfig(n_features=256, seed=5), Tokenizer(TokenizerConfig())),
    )
    result = run_serving_bench(
        n_users=200 if smoke else 10_000,
        queries_per_user=2,
        n_client_threads=8 if smoke else 16,
        encoder=encoder,
        seed=0,
    )
    print(result.format())


if __name__ == "__main__":
    main()
