"""Figures 13 and 14: cosine-threshold sweeps for the trained encoders.

MeanCache sweeps the cosine threshold τ from 0 to 1 on a *balanced* validation
set (equal duplicate / non-duplicate pairs) and selects the τ maximising the
F-score.  The paper reports an optimum of ~0.83 for MPNet (F1 0.89, precision
0.92) and ~0.78 for ALBERT (F1 0.88), and notes that GPTCache's fixed 0.7
is suboptimal for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.federated.threshold import ThresholdSweepResult, cache_mode_threshold_sweep
from repro.metrics.reporting import format_table


@dataclass
class ThresholdFigure:
    """One threshold-sweep figure."""

    encoder_name: str
    sweep: ThresholdSweepResult
    fixed_threshold_metrics: Dict[str, float]
    optimal_metrics: Dict[str, float]

    def format(self, title: str) -> str:
        """Render a down-sampled sweep table plus the fixed-vs-optimal summary."""
        taus = self.sweep.thresholds
        step = max(1, len(taus) // 21)
        rows = []
        for i in range(0, len(taus), step):
            rows.append(
                [
                    float(taus[i]),
                    float(self.sweep.f1_scores[i]),
                    float(self.sweep.precisions[i]),
                    float(self.sweep.recalls[i]),
                    float(self.sweep.accuracies[i]),
                ]
            )
        table = format_table(
            ["Threshold", "F1", "Precision", "Recall", "Accuracy"], rows, title=title
        )
        summary = (
            f"\nOptimal threshold: {self.optimal_metrics['threshold']:.2f} "
            f"(F1 {self.optimal_metrics['f1']:.3f}, precision {self.optimal_metrics['precision']:.3f})"
            f"\nAt fixed 0.7:      F1 {self.fixed_threshold_metrics['f1']:.3f}, "
            f"precision {self.fixed_threshold_metrics['precision']:.3f}"
        )
        return table + summary


@dataclass
class Fig13_14Result:
    """Sweeps for both trained encoders."""

    mpnet: ThresholdFigure
    albert: Optional[ThresholdFigure] = None

    def format(self) -> str:
        """Render both figures."""
        parts = [self.mpnet.format("Figure 13: threshold sweep (MPNet-class encoder)")]
        if self.albert is not None:
            parts.append("")
            parts.append(self.albert.format("Figure 14: threshold sweep (ALBERT-class encoder)"))
        return "\n".join(parts)


def _sweep_for(encoder, pairs, grid: int, beta: float) -> ThresholdFigure:
    thresholds = np.linspace(0.0, 1.0, grid)
    sweep = cache_mode_threshold_sweep(encoder.encoder, pairs, thresholds=thresholds, beta=beta)
    return ThresholdFigure(
        encoder_name=encoder.name,
        sweep=sweep,
        fixed_threshold_metrics=sweep.metrics_at(0.7),
        optimal_metrics=sweep.metrics_at_optimum(),
    )


def run_fig13_14(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    include_albert: bool = True,
    beta: float = 0.5,
) -> Fig13_14Result:
    """Reproduce the threshold sweeps on balanced validation pairs."""
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed, train_albert=include_albert)
    balanced = bundle.val_pairs.balanced(seed=seed + 500).as_tuples()
    mpnet_fig = _sweep_for(bundle.meancache_mpnet, balanced, resolved.threshold_grid, beta)
    albert_fig = None
    if include_albert and bundle.meancache_albert is not None:
        albert_fig = _sweep_for(bundle.meancache_albert, balanced, resolved.threshold_grid, beta)
    return Fig13_14Result(mpnet=mpnet_fig, albert=albert_fig)
