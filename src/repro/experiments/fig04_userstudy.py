"""Figure 4: prevalence of duplicate queries among ChatGPT users.

The paper's user study reports, per participant, the total number of queries
and how many of them repeated an earlier query; the average per-participant
duplicate rate is ~31%.  The reproduction regenerates the per-participant bar
series from the counts read off the figure and (optionally) synthesises query
logs consistent with those counts, then re-measures the duplicate rate from
the logs with an exact-duplicate-intent detector to confirm consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.userstudy import (
    UserStudyParticipant,
    figure4_counts,
    generate_user_study,
    mean_duplicate_rate,
    study_summary,
)
from repro.metrics.reporting import format_table


@dataclass
class Fig4Result:
    """Per-participant series plus aggregate statistics."""

    totals: np.ndarray
    duplicates: np.ndarray
    duplicate_rates: np.ndarray
    mean_rate: float
    summary: Dict[str, float]
    participants: Optional[List[UserStudyParticipant]] = None

    def format(self) -> str:
        """Render the per-participant table and the headline average."""
        rows = [
            [i + 1, int(t), int(d), float(d) / float(t) if t else 0.0]
            for i, (t, d) in enumerate(zip(self.totals, self.duplicates))
        ]
        table = format_table(
            ["Participant", "Total queries", "Duplicate queries", "Duplicate rate"],
            rows,
            title="Figure 4: duplicate-query prevalence per participant",
        )
        return (
            f"{table}\n\nMean per-participant duplicate rate: {self.mean_rate:.1%} "
            f"(paper reports ~31%)"
        )


def run_fig04(
    generate_logs: bool = False,
    max_log_length: Optional[int] = 500,
    seed: int = 0,
) -> Fig4Result:
    """Reproduce Figure 4.

    Parameters
    ----------
    generate_logs:
        Also synthesise the per-participant query logs (slower; used by the
        cost-saving example rather than the figure itself).
    max_log_length:
        Cap on synthetic log length per participant when generating logs.
    """
    counts = figure4_counts()
    totals = np.array([t for t, _ in counts], dtype=np.int64)
    dups = np.array([d for _, d in counts], dtype=np.int64)
    rates = dups / totals
    participants = None
    if generate_logs:
        participants = generate_user_study(
            counts, generate_texts=True, max_log_length=max_log_length, seed=seed
        )
        summary = study_summary(participants)
    else:
        participants_meta = generate_user_study(counts, generate_texts=False, seed=seed)
        summary = study_summary(participants_meta)
    return Fig4Result(
        totals=totals,
        duplicates=dups,
        duplicate_rates=rates,
        mean_rate=mean_duplicate_rate(counts),
        summary=summary,
        participants=participants,
    )
