"""Index benchmarks: seed-path comparison and the ANN backend sweep.

Two measurements live here, both backing ``benchmarks/test_bench_index.py``
(which records ``BENCH_index.json`` for cross-PR tracking; field reference
in ``docs/benchmarks.md``) and the "Index microbenchmark" section of the
full experiment runner:

1. :func:`run_index_bench` — the original microbenchmark of the incremental
   :class:`~repro.index.FlatIndex` against the seed cache's hot path (the
   per-insert ``np.vstack`` rebuild and per-lookup corpus re-normalization).
   Synthetic embeddings, no encoder in the loop, so the numbers isolate the
   index itself.

2. :func:`run_backend_sweep` — the recall/throughput/memory trade-off of
   the approximate and quantized backends (IVF, LSH, SQ8, PQ, IVF+SQ8)
   against exact flat search at several corpus sizes, on
   :func:`make_ann_workload`'s paraphrase-style clustered workload.  Exact
   search is O(n·d) per query and O(4d) bytes per entry, so it loses ground
   as the cache grows; the sweep pins how much lookup throughput and memory
   the sublinear/quantized backends buy back and how much recall they give
   up (bytes-per-entry lands in the ``backends`` section of
   BENCH_index.json).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.similarity import semantic_search
from repro.index import FlatIndex, make_index
from repro.index.registry import seeded_params
from repro.metrics.reporting import format_table


@dataclass(frozen=True)
class IndexBenchResult:
    """Wall-clock timings of the seed-style path vs the incremental index."""

    n_entries: int
    dim: int
    n_queries: int
    top_k: int
    seed_insert_s: float
    index_insert_s: float
    seed_lookup_s: float
    index_lookup_s: float
    index_lookup_batch_s: float

    # ------------------------------------------------------------------ #
    @property
    def seed_insert_throughput(self) -> float:
        """Seed-style inserts per second."""
        return self.n_entries / self.seed_insert_s if self.seed_insert_s > 0 else float("inf")

    @property
    def index_insert_throughput(self) -> float:
        """Index inserts per second."""
        return self.n_entries / self.index_insert_s if self.index_insert_s > 0 else float("inf")

    @property
    def insert_speedup(self) -> float:
        """Index insert throughput over seed-style insert throughput."""
        return self.seed_insert_s / self.index_insert_s if self.index_insert_s > 0 else float("inf")

    @property
    def lookup_speedup(self) -> float:
        """Per-query index search speedup over the seed-style search."""
        return self.seed_lookup_s / self.index_lookup_s if self.index_lookup_s > 0 else float("inf")

    @property
    def batch_speedup(self) -> float:
        """Batched index search speedup over the seed-style per-query loop."""
        if self.index_lookup_batch_s <= 0:
            return float("inf")
        return self.seed_lookup_s / self.index_lookup_batch_s

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable record (the ``BENCH_index.json`` payload)."""
        return {
            "n_entries": self.n_entries,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "top_k": self.top_k,
            "seed_insert_s": self.seed_insert_s,
            "index_insert_s": self.index_insert_s,
            "seed_insert_throughput_per_s": self.seed_insert_throughput,
            "index_insert_throughput_per_s": self.index_insert_throughput,
            "insert_speedup": self.insert_speedup,
            "seed_lookup_s": self.seed_lookup_s,
            "index_lookup_s": self.index_lookup_s,
            "index_lookup_batch_s": self.index_lookup_batch_s,
            "lookup_speedup": self.lookup_speedup,
            "batch_speedup": self.batch_speedup,
        }

    def format(self) -> str:
        """Render the comparison as a report table."""
        rows = [
            [
                "insert (one by one)",
                f"{self.seed_insert_s:.4f}",
                f"{self.index_insert_s:.4f}",
                f"{self.insert_speedup:.1f}x",
            ],
            [
                "lookup (per query)",
                f"{self.seed_lookup_s:.4f}",
                f"{self.index_lookup_s:.4f}",
                f"{self.lookup_speedup:.1f}x",
            ],
            [
                "lookup (batched)",
                f"{self.seed_lookup_s:.4f}",
                f"{self.index_lookup_batch_s:.4f}",
                f"{self.batch_speedup:.1f}x",
            ],
        ]
        return format_table(
            ["Operation", "Seed path (s)", "FlatIndex (s)", "Speedup"],
            rows,
            title=(
                f"Index microbenchmark: {self.n_entries} entries x {self.dim}d, "
                f"{self.n_queries} queries, top_k={self.top_k}"
            ),
        )


def _seed_style_insert(vectors: np.ndarray) -> np.ndarray:
    """The seed cache's append path: one np.vstack matrix rebuild per entry."""
    matrix = None
    for row in vectors:
        if matrix is None:
            matrix = row.reshape(1, -1).copy()
        else:
            matrix = np.vstack([matrix, row.reshape(1, -1)])
    return matrix


def run_index_bench(
    n_entries: int = 10_000,
    dim: int = 64,
    n_queries: int = 200,
    top_k: int = 5,
    seed: int = 0,
) -> IndexBenchResult:
    """Time seed-style vs index insert/lookup on random unit-ish embeddings."""
    if n_entries < 1 or n_queries < 1:
        raise ValueError("n_entries and n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n_entries, dim))
    queries = rng.normal(size=(n_queries, dim))

    start = time.perf_counter()
    matrix = _seed_style_insert(vectors)
    seed_insert_s = time.perf_counter() - start

    index = FlatIndex(dim=dim)
    start = time.perf_counter()
    for row in vectors:
        index.add(row)
    index_insert_s = time.perf_counter() - start

    start = time.perf_counter()
    for q in queries:
        semantic_search(q, matrix, top_k=top_k)
    seed_lookup_s = time.perf_counter() - start

    start = time.perf_counter()
    for q in queries:
        index.search(q, top_k=top_k)
    index_lookup_s = time.perf_counter() - start

    start = time.perf_counter()
    index.search(queries, top_k=top_k)
    index_lookup_batch_s = time.perf_counter() - start

    return IndexBenchResult(
        n_entries=n_entries,
        dim=dim,
        n_queries=n_queries,
        top_k=top_k,
        seed_insert_s=seed_insert_s,
        index_insert_s=index_insert_s,
        seed_lookup_s=seed_lookup_s,
        index_lookup_s=index_lookup_s,
        index_lookup_batch_s=index_lookup_batch_s,
    )


# --------------------------------------------------------------------------- #
# ANN backend sweep: recall vs lookup throughput per backend and corpus size
# --------------------------------------------------------------------------- #
def make_ann_workload(
    n_entries: int,
    dim: int = 64,
    n_queries: int = 200,
    paraphrases_per_intent: int = 8,
    intent_spread: float = 0.35,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """The standard clustered workload for index recall measurements.

    Models semantic-cache traffic rather than worst-case uniform noise:
    the corpus holds ``n_entries / paraphrases_per_intent`` *intents* (unit
    vectors) with ``paraphrases_per_intent`` noisy paraphrases each, and
    every query is a fresh paraphrase of a stored intent — the repeated
    traffic a cache exists to convert into hits.  ``intent_spread`` is the
    expected L2 norm of the paraphrase noise; 0.35 puts sibling cosine
    similarity around 0.89–0.94, matching the τ-band the caches operate in.

    Returns ``(vectors, queries)``; a vector's true nearest neighbours are
    dominated by its intent's other paraphrases, so ground-truth top-k from
    exact search measures exactly what an approximate cache backend must
    not lose.
    """
    if n_entries < 1 or n_queries < 1:
        raise ValueError("n_entries and n_queries must be >= 1")
    if paraphrases_per_intent < 1:
        raise ValueError("paraphrases_per_intent must be >= 1")
    rng = np.random.default_rng(seed)
    n_intents = max(1, n_entries // paraphrases_per_intent)
    intents = rng.normal(size=(n_intents, dim))
    intents /= np.linalg.norm(intents, axis=1, keepdims=True)
    sigma = intent_spread / np.sqrt(dim)
    vectors = intents[rng.integers(0, n_intents, n_entries)] + sigma * rng.normal(
        size=(n_entries, dim)
    )
    queries = intents[rng.integers(0, n_intents, n_queries)] + sigma * rng.normal(
        size=(n_queries, dim)
    )
    return vectors, queries


@dataclass(frozen=True)
class BackendBenchPoint:
    """One (backend, corpus size) cell of the sweep.

    ``nbytes`` is the backend's *total* footprint for the corpus: live row
    storage plus, where the backend has them, routing structures and codec
    tables (quantized backends) — the honest per-entry cost of choosing it.
    ``flat_nbytes`` is exact float32 storage for the same corpus.
    """

    backend: str
    n_entries: int
    dim: int
    n_queries: int
    top_k: int
    params: Mapping[str, object]
    build_s: float
    lookup_s: float
    lookup_batch_s: float
    flat_lookup_s: float
    flat_lookup_batch_s: float
    recall_at_k: float
    nbytes: int = 0
    flat_nbytes: int = 0

    @property
    def lookup_throughput(self) -> float:
        """Sequential (per-query) lookups per second."""
        return self.n_queries / self.lookup_s if self.lookup_s > 0 else float("inf")

    @property
    def lookup_batch_throughput(self) -> float:
        """Batched lookups per second (the fleet/serving hot path)."""
        if self.lookup_batch_s <= 0:
            return float("inf")
        return self.n_queries / self.lookup_batch_s

    @property
    def speedup_vs_flat(self) -> float:
        """Per-query lookup speedup over exact flat search."""
        return self.flat_lookup_s / self.lookup_s if self.lookup_s > 0 else float("inf")

    @property
    def batch_speedup_vs_flat(self) -> float:
        """Batched lookup speedup over exact flat search (one call each)."""
        if self.lookup_batch_s <= 0:
            return float("inf")
        return self.flat_lookup_batch_s / self.lookup_batch_s

    @property
    def bytes_per_entry(self) -> float:
        """Total index bytes (rows + routing + codec) per stored vector."""
        return self.nbytes / self.n_entries if self.n_entries else 0.0

    @property
    def bytes_per_entry_vs_flat(self) -> float:
        """Memory ratio against exact float32 storage (< 1 is a win)."""
        if self.flat_nbytes <= 0:
            return float("inf")
        return self.nbytes / self.flat_nbytes

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record (one ``backends`` row of BENCH_index.json)."""
        return {
            "backend": self.backend,
            "n_entries": self.n_entries,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "top_k": self.top_k,
            "params": dict(self.params),
            "build_s": self.build_s,
            "lookup_s": self.lookup_s,
            "lookup_batch_s": self.lookup_batch_s,
            "lookup_throughput_per_s": self.lookup_throughput,
            "lookup_batch_throughput_per_s": self.lookup_batch_throughput,
            "speedup_vs_flat": self.speedup_vs_flat,
            "batch_speedup_vs_flat": self.batch_speedup_vs_flat,
            "recall_at_k": self.recall_at_k,
            "nbytes": self.nbytes,
            "bytes_per_entry": self.bytes_per_entry,
            "bytes_per_entry_vs_flat": self.bytes_per_entry_vs_flat,
        }


@dataclass
class BackendSweepResult:
    """All (backend, size) measurements of one sweep run."""

    points: List[BackendBenchPoint] = field(default_factory=list)
    top_k: int = 5
    dim: int = 64
    n_queries: int = 200
    seed: int = 0

    def point(self, backend: str, n_entries: int) -> BackendBenchPoint:
        """The cell for one backend at one corpus size."""
        for p in self.points:
            if p.backend == backend and p.n_entries == n_entries:
                return p
        raise KeyError(f"no sweep point for backend {backend!r} at {n_entries} entries")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``backends`` block of BENCH_index.json)."""
        return {
            "top_k": self.top_k,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "seed": self.seed,
            "points": [p.to_dict() for p in self.points],
        }

    def format(self) -> str:
        """Render the recall/throughput/memory trade-off table."""
        rows = [
            [
                p.backend,
                p.n_entries,
                f"{p.recall_at_k:.3f}",
                f"{p.lookup_s * 1e6 / p.n_queries:.0f}",
                f"{p.speedup_vs_flat:.1f}x",
                f"{p.batch_speedup_vs_flat:.1f}x",
                f"{p.bytes_per_entry:.0f}",
                f"{p.bytes_per_entry_vs_flat:.2f}x",
                f"{p.build_s:.2f}",
            ]
            for p in self.points
        ]
        return format_table(
            [
                "Backend",
                "Entries",
                f"Recall@{self.top_k}",
                "Lookup (µs/query)",
                "Speedup",
                "Batch speedup",
                "B/entry",
                "Mem vs flat",
                "Build (s)",
            ],
            rows,
            title=(
                "ANN backend sweep: recall vs lookup throughput vs memory "
                f"(dim={self.dim}, {self.n_queries} queries, top_k={self.top_k})"
            ),
        )


def _recall_against(
    truth: Sequence[Sequence], got: Sequence[Sequence]
) -> float:
    """Mean fraction of the exact top-k ids each approximate result kept."""
    fractions = []
    for true_hits, got_hits in zip(truth, got):
        if not true_hits:
            continue
        true_ids = {h.id for h in true_hits}
        got_ids = {h.id for h in got_hits}
        fractions.append(len(true_ids & got_ids) / len(true_ids))
    return float(np.mean(fractions)) if fractions else 1.0


def _total_nbytes(index) -> int:
    """The backend's whole footprint: rows + routing + codec tables."""
    return (
        int(index.nbytes)
        + int(getattr(index, "routing_nbytes", 0))
        + int(getattr(index, "codec_nbytes", 0))
    )


def _build_backend(backend: str, dim: int, params: Mapping[str, object], seed: int):
    """Build a sweep backend, threading the sweep seed into its RNGs.

    Every randomized backend (IVF/LSH/SQ8/PQ and compositions) takes a
    ``seed`` kwarg; injecting the sweep's seed (via the registry's shared
    :func:`~repro.index.registry.seeded_params` rule) makes
    BENCH_index.json deltas attributable to code changes, not to run-to-run
    k-means/hyperplane noise.
    """
    return make_index(backend, dim=dim, **seeded_params(backend, params, seed))


def default_sweep_backends(dim: int) -> Mapping[str, Mapping[str, object]]:
    """The standard sweep configurations for a ``dim``-dimensional workload.

    Sublinear routing (ivf/lsh), quantized storage (sq8/pq) and the
    routed-quantized composition.  PQ runs at ``m = dim`` (scalar
    subspaces) — the configuration that keeps recall in the τ-band the
    caches need while still storing ~0.29x of flat; IVF+SQ8 probes 16 cells
    to hold recall with quantized scoring.
    """
    return {
        "ivf": {},
        "lsh": {},
        "sq8": {},
        "pq": {"m": dim},
        "ivf+sq8": {"nprobe": 16},
    }


def run_backend_sweep(
    sizes: Sequence[int] = (10_000, 100_000),
    dim: int = 64,
    n_queries: int = 200,
    top_k: int = 5,
    backends: Optional[Mapping[str, Mapping[str, object]]] = None,
    seed: int = 0,
) -> BackendSweepResult:
    """Measure every backend's recall, lookup throughput and memory per size.

    For each corpus size an exact :class:`FlatIndex` provides ground-truth
    top-k and the baseline timings; each approximate backend is then built
    on the same vectors (build time includes IVF's k-means training and the
    quantized backends' codec training + encoding) and timed on the same
    queries, sequentially (one ``search`` per query — the interactive-lookup
    path) and batched (one call for all queries — the fleet path).  Each
    point also records the backend's total bytes (rows + routing + codec)
    for the memory column.  ``backends`` maps backend name → constructor
    params and defaults to :func:`default_sweep_backends` for the sweep's
    ``dim``.  The ``seed`` kwarg drives the workload *and* every backend's
    internal RNG, so a sweep is deterministic end to end.
    """
    if backends is None:
        backends = default_sweep_backends(dim)
    result = BackendSweepResult(top_k=top_k, dim=dim, n_queries=n_queries, seed=seed)
    for n_entries in sizes:
        vectors, queries = make_ann_workload(
            n_entries, dim=dim, n_queries=n_queries, seed=seed
        )
        flat = FlatIndex(dim=dim)
        start = time.perf_counter()
        flat.add_batch(vectors)
        flat_build_s = time.perf_counter() - start
        truth = flat.search(queries, top_k=top_k)

        start = time.perf_counter()
        for q in queries:
            flat.search(q, top_k=top_k)
        flat_lookup_s = time.perf_counter() - start
        start = time.perf_counter()
        flat.search(queries, top_k=top_k)
        flat_lookup_batch_s = time.perf_counter() - start

        flat_nbytes = _total_nbytes(flat)
        result.points.append(
            BackendBenchPoint(
                backend="flat",
                n_entries=n_entries,
                dim=dim,
                n_queries=n_queries,
                top_k=top_k,
                params={},
                build_s=flat_build_s,
                lookup_s=flat_lookup_s,
                lookup_batch_s=flat_lookup_batch_s,
                flat_lookup_s=flat_lookup_s,
                flat_lookup_batch_s=flat_lookup_batch_s,
                recall_at_k=1.0,
                nbytes=flat_nbytes,
                flat_nbytes=flat_nbytes,
            )
        )
        for name, params in backends.items():
            index = _build_backend(name, dim, params, seed)
            start = time.perf_counter()
            index.add_batch(vectors)
            build_s = time.perf_counter() - start
            start = time.perf_counter()
            got = [index.search(q, top_k=top_k)[0] for q in queries]
            lookup_s = time.perf_counter() - start
            start = time.perf_counter()
            index.search(queries, top_k=top_k)
            lookup_batch_s = time.perf_counter() - start
            result.points.append(
                BackendBenchPoint(
                    backend=name,
                    n_entries=n_entries,
                    dim=dim,
                    n_queries=n_queries,
                    top_k=top_k,
                    params=dict(params),
                    build_s=build_s,
                    lookup_s=lookup_s,
                    lookup_batch_s=lookup_batch_s,
                    flat_lookup_s=flat_lookup_s,
                    flat_lookup_batch_s=flat_lookup_batch_s,
                    recall_at_k=_recall_against(truth, got),
                    nbytes=_total_nbytes(index),
                    flat_nbytes=flat_nbytes,
                )
            )
    return result
