"""Index benchmarks: seed-path comparison and the ANN backend sweep.

Two measurements live here, both backing ``benchmarks/test_bench_index.py``
(which records ``BENCH_index.json`` for cross-PR tracking; field reference
in ``docs/benchmarks.md``) and the "Index microbenchmark" section of the
full experiment runner:

1. :func:`run_index_bench` — the original microbenchmark of the incremental
   :class:`~repro.index.FlatIndex` against the seed cache's hot path (the
   per-insert ``np.vstack`` rebuild and per-lookup corpus re-normalization).
   Synthetic embeddings, no encoder in the loop, so the numbers isolate the
   index itself.

2. :func:`run_backend_sweep` — the recall/throughput/memory trade-off of
   the approximate and quantized backends (IVF, LSH, SQ8, PQ, IVF+SQ8)
   against exact flat search at several corpus sizes, on
   :func:`make_ann_workload`'s paraphrase-style clustered workload.  Exact
   search is O(n·d) per query and O(4d) bytes per entry, so it loses ground
   as the cache grows; the sweep pins how much lookup throughput and memory
   the sublinear/quantized backends buy back and how much recall they give
   up (bytes-per-entry lands in the ``backends`` section of
   BENCH_index.json).

3. :func:`run_latency_bench` — single-query latency histograms (p50/p95/p99
   over ``time.perf_counter_ns`` samples) for the quantized backends' fused
   scans against their decode-to-float reference path, on the same index
   state (the ``fused_scan`` flag is flipped in place between passes).
   Latency, unlike throughput, is dominated by per-call fixed costs —
   allocations, page faults on fresh large buffers, per-cell dispatch — so
   this is the measurement that validates the fused/scratch-buffer hot-path
   work; the methodology (warmup, per-query best-of-``repeats``, nearest-
   rank percentiles) is documented in ``docs/benchmarks.md``.  Lands in the
   ``latency`` section of BENCH_index.json.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.similarity import semantic_search
from repro.index import FlatIndex, make_index
from repro.index.quantized import QuantizedIndex
from repro.index.registry import seeded_params
from repro.metrics.reporting import format_table
from repro.metrics.timing import LatencyHistogram


@dataclass(frozen=True)
class IndexBenchResult:
    """Wall-clock timings of the seed-style path vs the incremental index."""

    n_entries: int
    dim: int
    n_queries: int
    top_k: int
    seed_insert_s: float
    index_insert_s: float
    seed_lookup_s: float
    index_lookup_s: float
    index_lookup_batch_s: float

    # ------------------------------------------------------------------ #
    @property
    def seed_insert_throughput(self) -> float:
        """Seed-style inserts per second."""
        return self.n_entries / self.seed_insert_s if self.seed_insert_s > 0 else float("inf")

    @property
    def index_insert_throughput(self) -> float:
        """Index inserts per second."""
        return self.n_entries / self.index_insert_s if self.index_insert_s > 0 else float("inf")

    @property
    def insert_speedup(self) -> float:
        """Index insert throughput over seed-style insert throughput."""
        return self.seed_insert_s / self.index_insert_s if self.index_insert_s > 0 else float("inf")

    @property
    def lookup_speedup(self) -> float:
        """Per-query index search speedup over the seed-style search."""
        return self.seed_lookup_s / self.index_lookup_s if self.index_lookup_s > 0 else float("inf")

    @property
    def batch_speedup(self) -> float:
        """Batched index search speedup over the seed-style per-query loop."""
        if self.index_lookup_batch_s <= 0:
            return float("inf")
        return self.seed_lookup_s / self.index_lookup_batch_s

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable record (the ``BENCH_index.json`` payload)."""
        return {
            "n_entries": self.n_entries,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "top_k": self.top_k,
            "seed_insert_s": self.seed_insert_s,
            "index_insert_s": self.index_insert_s,
            "seed_insert_throughput_per_s": self.seed_insert_throughput,
            "index_insert_throughput_per_s": self.index_insert_throughput,
            "insert_speedup": self.insert_speedup,
            "seed_lookup_s": self.seed_lookup_s,
            "index_lookup_s": self.index_lookup_s,
            "index_lookup_batch_s": self.index_lookup_batch_s,
            "lookup_speedup": self.lookup_speedup,
            "batch_speedup": self.batch_speedup,
        }

    def format(self) -> str:
        """Render the comparison as a report table."""
        rows = [
            [
                "insert (one by one)",
                f"{self.seed_insert_s:.4f}",
                f"{self.index_insert_s:.4f}",
                f"{self.insert_speedup:.1f}x",
            ],
            [
                "lookup (per query)",
                f"{self.seed_lookup_s:.4f}",
                f"{self.index_lookup_s:.4f}",
                f"{self.lookup_speedup:.1f}x",
            ],
            [
                "lookup (batched)",
                f"{self.seed_lookup_s:.4f}",
                f"{self.index_lookup_batch_s:.4f}",
                f"{self.batch_speedup:.1f}x",
            ],
        ]
        return format_table(
            ["Operation", "Seed path (s)", "FlatIndex (s)", "Speedup"],
            rows,
            title=(
                f"Index microbenchmark: {self.n_entries} entries x {self.dim}d, "
                f"{self.n_queries} queries, top_k={self.top_k}"
            ),
        )


def _seed_style_insert(vectors: np.ndarray) -> np.ndarray:
    """The seed cache's append path: one np.vstack matrix rebuild per entry."""
    matrix = None
    for row in vectors:
        if matrix is None:
            matrix = row.reshape(1, -1).copy()
        else:
            matrix = np.vstack([matrix, row.reshape(1, -1)])
    return matrix


def run_index_bench(
    n_entries: int = 10_000,
    dim: int = 64,
    n_queries: int = 200,
    top_k: int = 5,
    seed: int = 0,
) -> IndexBenchResult:
    """Time seed-style vs index insert/lookup on random unit-ish embeddings."""
    if n_entries < 1 or n_queries < 1:
        raise ValueError("n_entries and n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n_entries, dim))
    queries = rng.normal(size=(n_queries, dim))

    start = time.perf_counter()
    matrix = _seed_style_insert(vectors)
    seed_insert_s = time.perf_counter() - start

    index = FlatIndex(dim=dim)
    start = time.perf_counter()
    for row in vectors:
        index.add(row)
    index_insert_s = time.perf_counter() - start

    start = time.perf_counter()
    for q in queries:
        semantic_search(q, matrix, top_k=top_k)
    seed_lookup_s = time.perf_counter() - start

    start = time.perf_counter()
    for q in queries:
        index.search(q, top_k=top_k)
    index_lookup_s = time.perf_counter() - start

    start = time.perf_counter()
    index.search(queries, top_k=top_k)
    index_lookup_batch_s = time.perf_counter() - start

    return IndexBenchResult(
        n_entries=n_entries,
        dim=dim,
        n_queries=n_queries,
        top_k=top_k,
        seed_insert_s=seed_insert_s,
        index_insert_s=index_insert_s,
        seed_lookup_s=seed_lookup_s,
        index_lookup_s=index_lookup_s,
        index_lookup_batch_s=index_lookup_batch_s,
    )


# --------------------------------------------------------------------------- #
# ANN backend sweep: recall vs lookup throughput per backend and corpus size
# --------------------------------------------------------------------------- #
def make_ann_workload(
    n_entries: int,
    dim: int = 64,
    n_queries: int = 200,
    paraphrases_per_intent: int = 8,
    intent_spread: float = 0.35,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """The standard clustered workload for index recall measurements.

    Models semantic-cache traffic rather than worst-case uniform noise:
    the corpus holds ``n_entries / paraphrases_per_intent`` *intents* (unit
    vectors) with ``paraphrases_per_intent`` noisy paraphrases each, and
    every query is a fresh paraphrase of a stored intent — the repeated
    traffic a cache exists to convert into hits.  ``intent_spread`` is the
    expected L2 norm of the paraphrase noise; 0.35 puts sibling cosine
    similarity around 0.89–0.94, matching the τ-band the caches operate in.

    Returns ``(vectors, queries)``; a vector's true nearest neighbours are
    dominated by its intent's other paraphrases, so ground-truth top-k from
    exact search measures exactly what an approximate cache backend must
    not lose.
    """
    if n_entries < 1 or n_queries < 1:
        raise ValueError("n_entries and n_queries must be >= 1")
    if paraphrases_per_intent < 1:
        raise ValueError("paraphrases_per_intent must be >= 1")
    rng = np.random.default_rng(seed)
    n_intents = max(1, n_entries // paraphrases_per_intent)
    intents = rng.normal(size=(n_intents, dim))
    intents /= np.linalg.norm(intents, axis=1, keepdims=True)
    sigma = intent_spread / np.sqrt(dim)
    vectors = intents[rng.integers(0, n_intents, n_entries)] + sigma * rng.normal(
        size=(n_entries, dim)
    )
    queries = intents[rng.integers(0, n_intents, n_queries)] + sigma * rng.normal(
        size=(n_queries, dim)
    )
    return vectors, queries


@dataclass(frozen=True)
class BackendBenchPoint:
    """One (backend, corpus size) cell of the sweep.

    ``nbytes`` is the backend's *total* footprint for the corpus: live row
    storage plus, where the backend has them, routing structures and codec
    tables (quantized backends) — the honest per-entry cost of choosing it.
    ``flat_nbytes`` is exact float32 storage for the same corpus.
    """

    backend: str
    n_entries: int
    dim: int
    n_queries: int
    top_k: int
    params: Mapping[str, object]
    build_s: float
    lookup_s: float
    lookup_batch_s: float
    flat_lookup_s: float
    flat_lookup_batch_s: float
    recall_at_k: float
    nbytes: int = 0
    flat_nbytes: int = 0

    @property
    def lookup_throughput(self) -> float:
        """Sequential (per-query) lookups per second."""
        return self.n_queries / self.lookup_s if self.lookup_s > 0 else float("inf")

    @property
    def lookup_batch_throughput(self) -> float:
        """Batched lookups per second (the fleet/serving hot path)."""
        if self.lookup_batch_s <= 0:
            return float("inf")
        return self.n_queries / self.lookup_batch_s

    @property
    def speedup_vs_flat(self) -> float:
        """Per-query lookup speedup over exact flat search."""
        return self.flat_lookup_s / self.lookup_s if self.lookup_s > 0 else float("inf")

    @property
    def batch_speedup_vs_flat(self) -> float:
        """Batched lookup speedup over exact flat search (one call each)."""
        if self.lookup_batch_s <= 0:
            return float("inf")
        return self.flat_lookup_batch_s / self.lookup_batch_s

    @property
    def bytes_per_entry(self) -> float:
        """Total index bytes (rows + routing + codec) per stored vector."""
        return self.nbytes / self.n_entries if self.n_entries else 0.0

    @property
    def bytes_per_entry_vs_flat(self) -> float:
        """Memory ratio against exact float32 storage (< 1 is a win)."""
        if self.flat_nbytes <= 0:
            return float("inf")
        return self.nbytes / self.flat_nbytes

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record (one ``backends`` row of BENCH_index.json)."""
        return {
            "backend": self.backend,
            "n_entries": self.n_entries,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "top_k": self.top_k,
            "params": dict(self.params),
            "build_s": self.build_s,
            "lookup_s": self.lookup_s,
            "lookup_batch_s": self.lookup_batch_s,
            "lookup_throughput_per_s": self.lookup_throughput,
            "lookup_batch_throughput_per_s": self.lookup_batch_throughput,
            "speedup_vs_flat": self.speedup_vs_flat,
            "batch_speedup_vs_flat": self.batch_speedup_vs_flat,
            "recall_at_k": self.recall_at_k,
            "nbytes": self.nbytes,
            "bytes_per_entry": self.bytes_per_entry,
            "bytes_per_entry_vs_flat": self.bytes_per_entry_vs_flat,
        }


@dataclass
class BackendSweepResult:
    """All (backend, size) measurements of one sweep run."""

    points: List[BackendBenchPoint] = field(default_factory=list)
    top_k: int = 5
    dim: int = 64
    n_queries: int = 200
    seed: int = 0

    def point(self, backend: str, n_entries: int) -> BackendBenchPoint:
        """The cell for one backend at one corpus size."""
        for p in self.points:
            if p.backend == backend and p.n_entries == n_entries:
                return p
        raise KeyError(f"no sweep point for backend {backend!r} at {n_entries} entries")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``backends`` block of BENCH_index.json)."""
        return {
            "top_k": self.top_k,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "seed": self.seed,
            "points": [p.to_dict() for p in self.points],
        }

    def format(self) -> str:
        """Render the recall/throughput/memory trade-off table."""
        rows = [
            [
                p.backend,
                p.n_entries,
                f"{p.recall_at_k:.3f}",
                f"{p.lookup_s * 1e6 / p.n_queries:.0f}",
                f"{p.speedup_vs_flat:.1f}x",
                f"{p.batch_speedup_vs_flat:.1f}x",
                f"{p.bytes_per_entry:.0f}",
                f"{p.bytes_per_entry_vs_flat:.2f}x",
                f"{p.build_s:.2f}",
            ]
            for p in self.points
        ]
        return format_table(
            [
                "Backend",
                "Entries",
                f"Recall@{self.top_k}",
                "Lookup (µs/query)",
                "Speedup",
                "Batch speedup",
                "B/entry",
                "Mem vs flat",
                "Build (s)",
            ],
            rows,
            title=(
                "ANN backend sweep: recall vs lookup throughput vs memory "
                f"(dim={self.dim}, {self.n_queries} queries, top_k={self.top_k})"
            ),
        )


def _recall_against(
    truth: Sequence[Sequence], got: Sequence[Sequence]
) -> float:
    """Mean fraction of the exact top-k ids each approximate result kept."""
    fractions = []
    for true_hits, got_hits in zip(truth, got):
        if not true_hits:
            continue
        true_ids = {h.id for h in true_hits}
        got_ids = {h.id for h in got_hits}
        fractions.append(len(true_ids & got_ids) / len(true_ids))
    return float(np.mean(fractions)) if fractions else 1.0


def _total_nbytes(index) -> int:
    """The backend's whole footprint: rows + routing + codec tables."""
    return (
        int(index.nbytes)
        + int(getattr(index, "routing_nbytes", 0))
        + int(getattr(index, "codec_nbytes", 0))
    )


def _build_backend(backend: str, dim: int, params: Mapping[str, object], seed: int):
    """Build a sweep backend, threading the sweep seed into its RNGs.

    Every randomized backend (IVF/LSH/SQ8/PQ and compositions) takes a
    ``seed`` kwarg; injecting the sweep's seed (via the registry's shared
    :func:`~repro.index.registry.seeded_params` rule) makes
    BENCH_index.json deltas attributable to code changes, not to run-to-run
    k-means/hyperplane noise.
    """
    return make_index(backend, dim=dim, **seeded_params(backend, params, seed))


def default_sweep_backends(dim: int) -> Mapping[str, Mapping[str, object]]:
    """The standard sweep configurations for a ``dim``-dimensional workload.

    Sublinear routing (ivf/lsh), quantized storage (sq8/pq) and the
    routed-quantized composition.  PQ runs at ``m = dim`` (scalar
    subspaces) — the configuration that keeps recall in the τ-band the
    caches need while still storing ~0.29x of flat; IVF+SQ8 probes 16 cells
    to hold recall with quantized scoring.
    """
    return {
        "ivf": {},
        "lsh": {},
        "sq8": {},
        "pq": {"m": dim},
        "ivf+sq8": {"nprobe": 16},
    }


def run_backend_sweep(
    sizes: Sequence[int] = (10_000, 100_000),
    dim: int = 64,
    n_queries: int = 200,
    top_k: int = 5,
    backends: Optional[Mapping[str, Mapping[str, object]]] = None,
    seed: int = 0,
) -> BackendSweepResult:
    """Measure every backend's recall, lookup throughput and memory per size.

    For each corpus size an exact :class:`FlatIndex` provides ground-truth
    top-k and the baseline timings; each approximate backend is then built
    on the same vectors (build time includes IVF's k-means training and the
    quantized backends' codec training + encoding) and timed on the same
    queries, sequentially (one ``search`` per query — the interactive-lookup
    path) and batched (one call for all queries — the fleet path).  Each
    point also records the backend's total bytes (rows + routing + codec)
    for the memory column.  ``backends`` maps backend name → constructor
    params and defaults to :func:`default_sweep_backends` for the sweep's
    ``dim``.  The ``seed`` kwarg drives the workload *and* every backend's
    internal RNG, so a sweep is deterministic end to end.
    """
    if backends is None:
        backends = default_sweep_backends(dim)
    result = BackendSweepResult(top_k=top_k, dim=dim, n_queries=n_queries, seed=seed)
    for n_entries in sizes:
        vectors, queries = make_ann_workload(
            n_entries, dim=dim, n_queries=n_queries, seed=seed
        )
        flat = FlatIndex(dim=dim)
        start = time.perf_counter()
        flat.add_batch(vectors)
        flat_build_s = time.perf_counter() - start
        truth = flat.search(queries, top_k=top_k)

        start = time.perf_counter()
        for q in queries:
            flat.search(q, top_k=top_k)
        flat_lookup_s = time.perf_counter() - start
        start = time.perf_counter()
        flat.search(queries, top_k=top_k)
        flat_lookup_batch_s = time.perf_counter() - start

        flat_nbytes = _total_nbytes(flat)
        result.points.append(
            BackendBenchPoint(
                backend="flat",
                n_entries=n_entries,
                dim=dim,
                n_queries=n_queries,
                top_k=top_k,
                params={},
                build_s=flat_build_s,
                lookup_s=flat_lookup_s,
                lookup_batch_s=flat_lookup_batch_s,
                flat_lookup_s=flat_lookup_s,
                flat_lookup_batch_s=flat_lookup_batch_s,
                recall_at_k=1.0,
                nbytes=flat_nbytes,
                flat_nbytes=flat_nbytes,
            )
        )
        for name, params in backends.items():
            index = _build_backend(name, dim, params, seed)
            start = time.perf_counter()
            index.add_batch(vectors)
            build_s = time.perf_counter() - start
            start = time.perf_counter()
            got = [index.search(q, top_k=top_k)[0] for q in queries]
            lookup_s = time.perf_counter() - start
            start = time.perf_counter()
            index.search(queries, top_k=top_k)
            lookup_batch_s = time.perf_counter() - start
            result.points.append(
                BackendBenchPoint(
                    backend=name,
                    n_entries=n_entries,
                    dim=dim,
                    n_queries=n_queries,
                    top_k=top_k,
                    params=dict(params),
                    build_s=build_s,
                    lookup_s=lookup_s,
                    lookup_batch_s=lookup_batch_s,
                    flat_lookup_s=flat_lookup_s,
                    flat_lookup_batch_s=flat_lookup_batch_s,
                    recall_at_k=_recall_against(truth, got),
                    nbytes=_total_nbytes(index),
                    flat_nbytes=flat_nbytes,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Single-query latency: fused-scan vs reference-path histograms per backend
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LatencyBenchPoint:
    """One (backend, corpus size, scan mode) latency histogram.

    ``mode`` is ``"fused"`` or ``"reference"`` for the quantized backends
    (same index, ``fused_scan`` flipped in place between the passes) and
    ``"exact"`` for backends without a fused/reference split.  Percentiles
    are nearest-rank over per-query best-of-``repeats`` samples.
    """

    backend: str
    n_entries: int
    dim: int
    mode: str
    params: Mapping[str, object]
    count: int
    repeats: int
    warmup: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record (one ``latency`` row of BENCH_index.json)."""
        return {
            "backend": self.backend,
            "n_entries": self.n_entries,
            "dim": self.dim,
            "mode": self.mode,
            "params": dict(self.params),
            "count": self.count,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
        }


@dataclass
class LatencyBenchResult:
    """All (backend, size, mode) latency histograms of one run."""

    points: List[LatencyBenchPoint] = field(default_factory=list)
    top_k: int = 5
    dim: int = 64
    n_queries: int = 100
    repeats: int = 2
    warmup: int = 10
    seed: int = 0

    def point(self, backend: str, n_entries: int, mode: str) -> LatencyBenchPoint:
        """The histogram for one backend at one corpus size in one mode."""
        for p in self.points:
            if p.backend == backend and p.n_entries == n_entries and p.mode == mode:
                return p
        raise KeyError(
            f"no latency point for backend {backend!r} at {n_entries} entries "
            f"in mode {mode!r}"
        )

    def ratio(self, backend: str, n_entries: int, stat: str = "p99_ms") -> float:
        """Reference-over-fused ratio of ``stat`` (> 1 means fused is faster)."""
        fused = getattr(self.point(backend, n_entries, "fused"), stat)
        ref = getattr(self.point(backend, n_entries, "reference"), stat)
        return ref / fused if fused > 0 else float("inf")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``latency`` block of BENCH_index.json)."""
        ratios = []
        seen = set()
        for p in self.points:
            key = (p.backend, p.n_entries)
            if p.mode == "exact" or key in seen:
                continue
            seen.add(key)
            try:
                ratios.append(
                    {
                        "backend": p.backend,
                        "n_entries": p.n_entries,
                        "p50_ratio": self.ratio(*key, stat="p50_ms"),
                        "p99_ratio": self.ratio(*key, stat="p99_ms"),
                    }
                )
            except KeyError:
                continue
        return {
            "top_k": self.top_k,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "seed": self.seed,
            "points": [p.to_dict() for p in self.points],
            "ratios": ratios,
        }

    def format(self) -> str:
        """Render the per-backend latency table with fused/reference ratios."""
        rows = []
        for p in self.points:
            if p.mode == "fused":
                try:
                    ratio = f"{self.ratio(p.backend, p.n_entries):.1f}x"
                except KeyError:
                    ratio = "-"
            else:
                ratio = "-"
            rows.append(
                [
                    p.backend,
                    p.n_entries,
                    p.mode,
                    f"{p.p50_ms:.3f}",
                    f"{p.p95_ms:.3f}",
                    f"{p.p99_ms:.3f}",
                    ratio,
                ]
            )
        return format_table(
            ["Backend", "Entries", "Mode", "p50 (ms)", "p95 (ms)", "p99 (ms)", "p99 gain"],
            rows,
            title=(
                "Single-query latency: fused vs reference scans "
                f"(dim={self.dim}, {self.n_queries} queries x best-of-"
                f"{self.repeats}, top_k={self.top_k})"
            ),
        )


def default_latency_backends(dim: int) -> Mapping[str, Mapping[str, object]]:
    """The standard latency-bench configurations for ``dim`` dimensions.

    The quantized trio the fused-scan work targets, plus exact flat search
    as the context line.  ``ivf+sq8`` probes 64 cells — the high-recall
    serving configuration, where the scan (not the routing) dominates and
    the fused path has the most ground to win — with repartitioning
    deferred to :meth:`~repro.index.base.VectorIndex.maintenance` as the
    serving fleet runs it.
    """
    return {
        "flat": {},
        "sq8": {},
        "pq": {"m": dim},
        "ivf+sq8": {"nprobe": 64, "auto_repartition": False},
    }


def _measure_single_query(
    index, queries: np.ndarray, top_k: int, warmup: int, repeats: int
) -> LatencyHistogram:
    """Per-query best-of-``repeats`` latency histogram for one index.

    Each query runs ``repeats`` times and records its fastest sample: a
    single-core container steals multi-millisecond slices often enough to
    poison raw tail percentiles, and the minimum across back-to-back runs
    strips that scheduler noise while keeping the real per-query variation
    (probe counts, list sizes) that tail latency is about.
    """
    hist = LatencyHistogram()
    for q in queries[:warmup]:
        index.search(q[None, :], top_k=top_k)
    for q in queries:
        best: Optional[int] = None
        for _ in range(repeats):
            start = time.perf_counter_ns()
            index.search(q[None, :], top_k=top_k)
            elapsed = time.perf_counter_ns() - start
            best = elapsed if best is None else min(best, elapsed)
        hist.record(best)
    return hist


def run_latency_bench(
    sizes: Sequence[int] = (100_000, 1_000_000),
    dim: int = 64,
    n_queries: int = 100,
    top_k: int = 5,
    repeats: int = 2,
    warmup: int = 10,
    backends: Optional[Mapping[str, Mapping[str, object]]] = None,
    seed: int = 0,
) -> LatencyBenchResult:
    """Measure single-query p50/p95/p99 per backend, fused vs reference.

    For each corpus size and backend the index is built once on the
    :func:`make_ann_workload` vectors, :meth:`maintenance` runs (deferred
    repartitioning plus cell-major layout compaction — the steady state a
    served index reaches between batching windows), and the same queries
    are timed one at a time: first with the default fused scans, then —
    for the quantized backends — with ``fused_scan`` flipped off, so the
    reference pass scores the exact same index state.  Relative (same-run)
    fused/reference ratios are what ``benchmarks/test_bench_index.py``
    gates on; absolute numbers are machine-dependent context.
    """
    if n_queries < 1 or repeats < 1 or warmup < 0:
        raise ValueError("n_queries and repeats must be >= 1, warmup >= 0")
    if backends is None:
        backends = default_latency_backends(dim)
    result = LatencyBenchResult(
        top_k=top_k,
        dim=dim,
        n_queries=n_queries,
        repeats=repeats,
        warmup=warmup,
        seed=seed,
    )
    for n_entries in sizes:
        vectors, queries = make_ann_workload(
            n_entries, dim=dim, n_queries=n_queries + warmup, seed=seed
        )
        for name, params in backends.items():
            index = _build_backend(name, dim, params, seed)
            index.add_batch(vectors)
            index.maintenance()
            toggle = isinstance(index, QuantizedIndex)
            modes = (("fused", True), ("reference", False)) if toggle else (("exact", None),)
            for mode, fused in modes:
                if fused is not None:
                    index.fused_scan = fused
                hist = _measure_single_query(
                    index, queries[warmup:], top_k, warmup, repeats
                )
                stats = hist.to_dict()
                result.points.append(
                    LatencyBenchPoint(
                        backend=name,
                        n_entries=n_entries,
                        dim=dim,
                        mode=mode,
                        params=dict(params),
                        count=hist.count,
                        repeats=repeats,
                        warmup=warmup,
                        p50_ms=stats["p50_ns"] / 1e6,
                        p95_ms=stats["p95_ns"] / 1e6,
                        p99_ms=stats["p99_ns"] / 1e6,
                        mean_ms=stats["mean_ns"] / 1e6,
                    )
                )
            if toggle:
                index.fused_scan = True
    return result
