"""Insert/lookup throughput of the incremental index vs the seed hot path.

The seed cache appended embeddings with a per-insert ``np.vstack`` (O(n) copy
each, O(n²) enrolment) and re-normalized the whole corpus inside every
lookup.  This module measures both generations side by side on synthetic
embeddings — no encoder in the loop, so the numbers isolate the index itself:

* ``seed-style insert``: rebuild a ``(n, d)`` float64 matrix per append;
* ``index insert``: :meth:`repro.index.FlatIndex.add` per append;
* ``seed-style lookup``: per-query :func:`semantic_search` over the raw
  matrix (corpus re-normalized every call);
* ``index lookup``: per-query and batched :meth:`FlatIndex.search`.

:func:`run_index_bench` backs both the ``benchmarks/test_bench_index.py``
harness (which records ``BENCH_index.json`` for cross-PR tracking) and the
"Index microbenchmark" section of the full experiment runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.embeddings.similarity import semantic_search
from repro.index import FlatIndex
from repro.metrics.reporting import format_table


@dataclass(frozen=True)
class IndexBenchResult:
    """Wall-clock timings of the seed-style path vs the incremental index."""

    n_entries: int
    dim: int
    n_queries: int
    top_k: int
    seed_insert_s: float
    index_insert_s: float
    seed_lookup_s: float
    index_lookup_s: float
    index_lookup_batch_s: float

    # ------------------------------------------------------------------ #
    @property
    def seed_insert_throughput(self) -> float:
        """Seed-style inserts per second."""
        return self.n_entries / self.seed_insert_s if self.seed_insert_s > 0 else float("inf")

    @property
    def index_insert_throughput(self) -> float:
        """Index inserts per second."""
        return self.n_entries / self.index_insert_s if self.index_insert_s > 0 else float("inf")

    @property
    def insert_speedup(self) -> float:
        """Index insert throughput over seed-style insert throughput."""
        return self.seed_insert_s / self.index_insert_s if self.index_insert_s > 0 else float("inf")

    @property
    def lookup_speedup(self) -> float:
        """Per-query index search speedup over the seed-style search."""
        return self.seed_lookup_s / self.index_lookup_s if self.index_lookup_s > 0 else float("inf")

    @property
    def batch_speedup(self) -> float:
        """Batched index search speedup over the seed-style per-query loop."""
        if self.index_lookup_batch_s <= 0:
            return float("inf")
        return self.seed_lookup_s / self.index_lookup_batch_s

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable record (the ``BENCH_index.json`` payload)."""
        return {
            "n_entries": self.n_entries,
            "dim": self.dim,
            "n_queries": self.n_queries,
            "top_k": self.top_k,
            "seed_insert_s": self.seed_insert_s,
            "index_insert_s": self.index_insert_s,
            "seed_insert_throughput_per_s": self.seed_insert_throughput,
            "index_insert_throughput_per_s": self.index_insert_throughput,
            "insert_speedup": self.insert_speedup,
            "seed_lookup_s": self.seed_lookup_s,
            "index_lookup_s": self.index_lookup_s,
            "index_lookup_batch_s": self.index_lookup_batch_s,
            "lookup_speedup": self.lookup_speedup,
            "batch_speedup": self.batch_speedup,
        }

    def format(self) -> str:
        """Render the comparison as a report table."""
        rows = [
            [
                "insert (one by one)",
                f"{self.seed_insert_s:.4f}",
                f"{self.index_insert_s:.4f}",
                f"{self.insert_speedup:.1f}x",
            ],
            [
                "lookup (per query)",
                f"{self.seed_lookup_s:.4f}",
                f"{self.index_lookup_s:.4f}",
                f"{self.lookup_speedup:.1f}x",
            ],
            [
                "lookup (batched)",
                f"{self.seed_lookup_s:.4f}",
                f"{self.index_lookup_batch_s:.4f}",
                f"{self.batch_speedup:.1f}x",
            ],
        ]
        return format_table(
            ["Operation", "Seed path (s)", "FlatIndex (s)", "Speedup"],
            rows,
            title=(
                f"Index microbenchmark: {self.n_entries} entries x {self.dim}d, "
                f"{self.n_queries} queries, top_k={self.top_k}"
            ),
        )


def _seed_style_insert(vectors: np.ndarray) -> np.ndarray:
    """The seed cache's append path: one np.vstack matrix rebuild per entry."""
    matrix = None
    for row in vectors:
        if matrix is None:
            matrix = row.reshape(1, -1).copy()
        else:
            matrix = np.vstack([matrix, row.reshape(1, -1)])
    return matrix


def run_index_bench(
    n_entries: int = 10_000,
    dim: int = 64,
    n_queries: int = 200,
    top_k: int = 5,
    seed: int = 0,
) -> IndexBenchResult:
    """Time seed-style vs index insert/lookup on random unit-ish embeddings."""
    if n_entries < 1 or n_queries < 1:
        raise ValueError("n_entries and n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n_entries, dim))
    queries = rng.normal(size=(n_queries, dim))

    start = time.perf_counter()
    matrix = _seed_style_insert(vectors)
    seed_insert_s = time.perf_counter() - start

    index = FlatIndex(dim=dim)
    start = time.perf_counter()
    for row in vectors:
        index.add(row)
    index_insert_s = time.perf_counter() - start

    start = time.perf_counter()
    for q in queries:
        semantic_search(q, matrix, top_k=top_k)
    seed_lookup_s = time.perf_counter() - start

    start = time.perf_counter()
    for q in queries:
        index.search(q, top_k=top_k)
    index_lookup_s = time.perf_counter() - start

    start = time.perf_counter()
    index.search(queries, top_k=top_k)
    index_lookup_batch_s = time.perf_counter() - start

    return IndexBenchResult(
        n_entries=n_entries,
        dim=dim,
        n_queries=n_queries,
        top_k=top_k,
        seed_insert_s=seed_insert_s,
        index_insert_s=index_insert_s,
        seed_lookup_s=seed_lookup_s,
        index_lookup_s=index_lookup_s,
        index_lookup_batch_s=index_lookup_batch_s,
    )
