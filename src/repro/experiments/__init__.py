"""Experiment harness: one module per paper table / figure.

Every experiment exposes a ``run_*`` function returning a plain dataclass of
the series/rows the paper reports, plus a ``format_*`` helper rendering the
result as text.  Benchmarks under ``benchmarks/`` and the example scripts call
into these functions; ``repro.experiments.runner`` regenerates everything in
one go (used to produce ``EXPERIMENTS.md``).

Experiment index
----------------
==============================  ==========================================
Module                           Paper artefact
==============================  ==========================================
``table1``                       Table I (standalone) + Figure 7 matrices
``contextual``                   Table I (contextual) + Figures 8, 9
``fig04_userstudy``              Figure 4
``fig05_latency``                Figure 5 (+ Figure 6 decisions)
``fig10_compression``            Figure 10 (storage / search time / F-score)
``fig11_12_fl_training``         Figures 11 and 12
``fig13_14_threshold``           Figures 13 and 14
``fig15_model_cost``             Figure 15
``fig16_llama_threshold``        Figure 16
==============================  ==========================================
"""

from repro.experiments.common import ExperimentScale, SCALES, build_system_bundle, SystemBundle

__all__ = [
    "ExperimentScale",
    "SCALES",
    "build_system_bundle",
    "SystemBundle",
]
