"""Figures 11 and 12: FL training curves for the MPNet- and ALBERT-class encoders.

The paper distributes the training split across 20 clients, samples 4 clients
per round for 50 rounds with 6 local epochs each, and plots the global model's
F1, precision, recall and accuracy on the server-side test split after every
round.  Both encoders improve as training progresses; MPNet ends higher
(precision +11% for MPNet, +7% for ALBERT in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.metrics.reporting import format_table


@dataclass
class FLTrainingCurves:
    """Per-round metric curves for one encoder."""

    encoder_name: str
    curves: Dict[str, np.ndarray]
    final_threshold: float

    def improvement(self, metric: str = "precision") -> float:
        """Final minus initial value of one curve."""
        series = self.curves.get(metric, np.array([]))
        finite = series[np.isfinite(series)] if series.size else series
        if finite.size < 2:
            return 0.0
        return float(finite[-1] - finite[0])

    def format(self, title: str) -> str:
        """Render the per-round table."""
        rounds = self.curves.get("round", np.array([]))
        rows = []
        for i in range(len(rounds)):
            rows.append(
                [
                    int(rounds[i]),
                    float(self.curves["f1"][i]),
                    float(self.curves["precision"][i]),
                    float(self.curves["recall"][i]),
                    float(self.curves["accuracy"][i]),
                    float(self.curves["threshold"][i]),
                ]
            )
        return format_table(
            ["Round", "F1", "Precision", "Recall", "Accuracy", "Global tau"],
            rows,
            title=title,
        )


@dataclass
class Fig11_12Result:
    """Curves for both encoders."""

    mpnet: FLTrainingCurves
    albert: Optional[FLTrainingCurves] = None

    def format(self) -> str:
        """Render both tables plus the headline precision improvements."""
        parts = [self.mpnet.format("Figure 11: FL training of the MPNet-class encoder")]
        parts.append(
            f"MPNet precision improvement over FL training: "
            f"{self.mpnet.improvement('precision'):+.3f} (paper: +0.11)"
        )
        if self.albert is not None:
            parts.append("")
            parts.append(self.albert.format("Figure 12: FL training of the ALBERT-class encoder"))
            parts.append(
                f"ALBERT precision improvement over FL training: "
                f"{self.albert.improvement('precision'):+.3f} (paper: +0.07)"
            )
        return "\n".join(parts)


def run_fig11_12(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    include_albert: bool = True,
) -> Fig11_12Result:
    """Reproduce the FL training curves.

    The curves come from the same FL simulations used to build the system
    bundle, so this experiment reuses the bundle rather than re-training.
    """
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed, train_albert=include_albert)
    mpnet_sim = bundle.meancache_mpnet.simulation
    if mpnet_sim is None:
        raise RuntimeError("the system bundle holds no MPNet FL simulation result")
    mpnet_curves = FLTrainingCurves(
        encoder_name="mpnet-sim",
        curves=mpnet_sim.curves,
        final_threshold=mpnet_sim.final_threshold,
    )
    albert_curves = None
    if include_albert and bundle.meancache_albert is not None and bundle.meancache_albert.simulation:
        albert_sim = bundle.meancache_albert.simulation
        albert_curves = FLTrainingCurves(
            encoder_name="albert-sim",
            curves=albert_sim.curves,
            final_threshold=albert_sim.final_threshold,
        )
    return Fig11_12Result(mpnet=mpnet_curves, albert=albert_curves)
