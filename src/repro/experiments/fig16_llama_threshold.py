"""Figure 16: Llama-2 embeddings are a weak semantic-matching signal.

The paper sweeps the cosine threshold for Llama-2-generated embeddings and
finds that even at the optimal threshold the F1 score tops out around 0.75 —
well below the fine-tuned MPNet/ALBERT encoders — while costing far more to
compute (Figure 15).  The reproduction runs the same sweep with the
``llama2-sim`` encoder on the balanced validation pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.embeddings.zoo import load_encoder
from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.federated.threshold import ThresholdSweepResult, cache_mode_threshold_sweep
from repro.metrics.reporting import format_table


@dataclass
class Fig16Result:
    """The Llama-2 threshold sweep plus comparison hooks."""

    sweep: ThresholdSweepResult
    optimal_metrics: Dict[str, float]
    max_f1: float

    def format(self) -> str:
        """Render the sweep and the headline max F1."""
        taus = self.sweep.thresholds
        step = max(1, len(taus) // 21)
        rows = [
            [
                float(taus[i]),
                float(self.sweep.f1_scores[i]),
                float(self.sweep.precisions[i]),
                float(self.sweep.recalls[i]),
                float(self.sweep.accuracies[i]),
            ]
            for i in range(0, len(taus), step)
        ]
        table = format_table(
            ["Threshold", "F1", "Precision", "Recall", "Accuracy"],
            rows,
            title="Figure 16: threshold sweep with llama2-class embeddings",
        )
        return (
            f"{table}\nMax F1 with llama2-class embeddings: {self.max_f1:.3f} "
            f"(paper reports 0.75, well below the fine-tuned small encoders)"
        )


def run_fig16(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    beta: float = 0.5,
) -> Fig16Result:
    """Reproduce the Llama-2 threshold sweep."""
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed)
    encoder = load_encoder("llama2-sim")
    balanced = bundle.val_pairs.balanced(seed=seed + 600).as_tuples()
    thresholds = np.linspace(0.0, 1.0, resolved.threshold_grid)
    sweep = cache_mode_threshold_sweep(encoder, balanced, thresholds=thresholds, beta=beta)
    return Fig16Result(
        sweep=sweep,
        optimal_metrics=sweep.metrics_at_optimum(),
        max_f1=float(np.max(sweep.f1_scores)),
    )
