"""Table I (standalone queries) and Figure 7 confusion matrices.

Workload (paper §IV-B): 1000 queries are pre-loaded into each cache; a fresh
probe stream of 1000 queries follows, 30% of which are paraphrases of cached
queries (ground truth: hit) and 70% are new (ground truth: miss).  Systems
compared:

* **GPTCache** — pretrained ALBERT-class encoder, fixed τ = 0.7, no context.
* **MeanCache (MPNet)** — FL-fine-tuned MPNet-class encoder, learned τ.
* **MeanCache (Albert)** — FL-fine-tuned ALBERT-class encoder, learned τ.

Metrics use Fβ with β = 0.5 (precision weighted over recall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.datasets.semantic_pairs import CacheWorkload, generate_cache_workload
from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.metrics.classification import ConfusionMatrix, confusion_matrix
from repro.metrics.reporting import format_confusion_matrix, format_metric_comparison


@dataclass
class SystemEvaluation:
    """Decisions and metrics of one system on one workload.

    ``overhead_mode`` records how ``mean_overhead_s`` was measured:
    ``"amortized"`` (the default batched evaluation — batch cost split over
    the probes) or ``"per-request"`` (each probe timed as its own lookup,
    the seed's semantics; pass ``batched=False`` to the evaluators).
    """

    system: str
    predictions: np.ndarray
    metrics: Dict[str, float]
    matrix: ConfusionMatrix
    mean_overhead_s: float = 0.0
    overhead_mode: str = "amortized"


@dataclass
class Table1Result:
    """All rows of Table I (standalone half) plus the Figure 7 matrices."""

    workload: CacheWorkload
    systems: Dict[str, SystemEvaluation] = field(default_factory=dict)

    def paper_rows(self) -> Dict[str, Dict[str, float]]:
        """Metric dict per system, keyed like the paper's column headers."""
        return {name: ev.metrics for name, ev in self.systems.items()}

    def format(self) -> str:
        """Render the table and the confusion matrices as text."""
        parts = [
            format_metric_comparison(
                self.paper_rows(),
                metrics=("f_score", "precision", "recall", "accuracy"),
                title="Table I (standalone queries): MeanCache vs GPTCache",
            )
        ]
        for name, ev in self.systems.items():
            parts.append("")
            parts.append(format_confusion_matrix(ev.matrix, name))
        return "\n".join(parts)


def evaluate_meancache_on_workload(
    cache: MeanCache,
    workload: CacheWorkload,
    beta: float = 0.5,
    batched: bool = True,
) -> SystemEvaluation:
    """Populate ``cache`` with the workload and classify every probe.

    With ``batched=True`` (default) the whole probe set goes through
    :meth:`MeanCache.lookup_batch` — one query-encoding call plus one index
    matmul — so ``mean_overhead_s`` is the batch's amortized per-probe cost.
    Pass ``batched=False`` to time each probe as its own request (the seed's
    per-request overhead semantics); hit/miss decisions are identical either
    way.
    """
    cache.clear()
    cache.populate(workload.cached_queries)
    if batched:
        decisions = cache.lookup_batch([probe.text for probe in workload.probes])
    else:
        decisions = [cache.lookup(probe.text) for probe in workload.probes]
    predictions = np.array([d.hit for d in decisions], dtype=bool)
    overheads: List[float] = [d.total_overhead_s for d in decisions]
    cm = confusion_matrix(workload.true_labels, predictions)
    return SystemEvaluation(
        system="meancache",
        predictions=predictions,
        metrics=cm.metrics(beta),
        matrix=cm,
        mean_overhead_s=float(np.mean(overheads)) if overheads else 0.0,
        overhead_mode="amortized" if batched else "per-request",
    )


def evaluate_gptcache_on_workload(
    cache: GPTCache,
    workload: CacheWorkload,
    beta: float = 0.5,
    batched: bool = True,
) -> SystemEvaluation:
    """Populate the baseline cache with the workload and classify every probe.

    ``batched`` selects amortized (default) vs per-request overhead timing,
    as in :func:`evaluate_meancache_on_workload`; decisions are identical.
    """
    cache.populate(workload.cached_queries)
    if batched:
        decisions = cache.lookup_batch([probe.text for probe in workload.probes])
    else:
        decisions = [cache.lookup(probe.text) for probe in workload.probes]
    predictions = np.array([d.hit for d in decisions], dtype=bool)
    overheads: List[float] = [d.total_overhead_s for d in decisions]
    cm = confusion_matrix(workload.true_labels, predictions)
    return SystemEvaluation(
        system="gptcache",
        predictions=predictions,
        metrics=cm.metrics(beta),
        matrix=cm,
        mean_overhead_s=float(np.mean(overheads)) if overheads else 0.0,
        overhead_mode="amortized" if batched else "per-request",
    )


def run_table1(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    include_albert: bool = True,
    beta: float = 0.5,
) -> Table1Result:
    """Reproduce Table I (standalone) and Figure 7.

    Parameters
    ----------
    scale:
        Experiment scale (``paper`` / ``quick``); ignored when ``bundle`` is
        supplied.
    bundle:
        A prebuilt :class:`SystemBundle` (reuses its FL-trained encoders).
    include_albert:
        Also evaluate the MeanCache (Albert) column.
    """
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed, train_albert=include_albert)
    workload = generate_cache_workload(
        n_cached=resolved.n_cached,
        n_probes=resolved.n_probes,
        duplicate_fraction=0.3,
        corpus=bundle.corpus,
        seed=seed + 100,
    )
    result = Table1Result(workload=workload)

    # GPTCache baseline: frozen ALBERT-class encoder, fixed 0.7.
    gpt = GPTCache(bundle.gptcache_encoder(), GPTCacheConfig(similarity_threshold=0.7))
    result.systems["GPTCache"] = evaluate_gptcache_on_workload(gpt, workload, beta)

    # MeanCache (MPNet): FL-trained encoder + learned threshold.
    mpnet = bundle.meancache_mpnet
    mc_mpnet = MeanCache(
        mpnet.encoder.clone(),
        MeanCacheConfig(similarity_threshold=mpnet.threshold, verify_context=True),
    )
    result.systems["MeanCache (MPNet)"] = evaluate_meancache_on_workload(mc_mpnet, workload, beta)

    if include_albert and bundle.meancache_albert is not None:
        albert = bundle.meancache_albert
        mc_albert = MeanCache(
            albert.encoder.clone(),
            MeanCacheConfig(similarity_threshold=albert.threshold, verify_context=True),
        )
        result.systems["MeanCache (Albert)"] = evaluate_meancache_on_workload(
            mc_albert, workload, beta
        )
    return result
