"""Shared experiment plumbing.

The evaluation pipeline that most experiments share is:

1. generate the synthetic pair dataset and split it train/val/test,
2. federated-train the MeanCache encoder (MPNet-class and/or ALBERT-class)
   across 20 clients and learn the global cosine threshold,
3. keep a *frozen* pretrained ALBERT-class encoder with the fixed 0.7
   threshold as the GPTCache baseline,
4. evaluate both systems on an end-to-end cache workload.

:func:`build_system_bundle` performs steps 1–3 once and returns a
:class:`SystemBundle`; experiments then reuse it.  Two scales are provided:
``quick`` (seconds; used by the test suite) and ``paper`` (the paper's sizes:
1000-query workloads, 20 clients, 50 FL rounds; used by the benchmarks).
The scale can be overridden globally through the ``REPRO_SCALE`` environment
variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional


from repro.datasets.corpus import Corpus
from repro.datasets.semantic_pairs import QueryPairDataset, generate_pair_dataset
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.zoo import load_encoder
from repro.federated.simulation import FLSimulation, SimulationConfig, SimulationResult
from repro.federated.threshold import find_optimal_threshold


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes controlling experiment cost.

    ``paper`` mirrors the paper's evaluation sizes; ``quick`` shrinks
    everything so the full experiment suite runs in seconds (CI / unit tests).
    """

    name: str
    n_pairs: int
    n_cached: int
    n_probes: int
    fl_rounds: int
    fl_clients: int
    fl_clients_per_round: int
    fl_local_epochs: int
    contextual_cached_standalone: int
    contextual_cached_followups: int
    contextual_dup_standalone: int
    contextual_dup_contextual: int
    contextual_unique: int
    compression_cache_sizes: tuple
    latency_probe_count: int
    threshold_grid: int


SCALES: Dict[str, ExperimentScale] = {
    "paper": ExperimentScale(
        name="paper",
        n_pairs=3000,
        n_cached=1000,
        n_probes=1000,
        fl_rounds=50,
        fl_clients=20,
        fl_clients_per_round=4,
        fl_local_epochs=6,
        contextual_cached_standalone=100,
        contextual_cached_followups=100,
        contextual_dup_standalone=75,
        contextual_dup_contextual=75,
        contextual_unique=100,
        compression_cache_sizes=(1000, 2000, 3000),
        latency_probe_count=100,
        threshold_grid=101,
    ),
    "quick": ExperimentScale(
        name="quick",
        n_pairs=900,
        n_cached=250,
        n_probes=250,
        fl_rounds=6,
        fl_clients=8,
        fl_clients_per_round=4,
        fl_local_epochs=3,
        contextual_cached_standalone=40,
        contextual_cached_followups=40,
        contextual_dup_standalone=30,
        contextual_dup_contextual=30,
        contextual_unique=40,
        compression_cache_sizes=(100, 250),
        latency_probe_count=60,
        threshold_grid=51,
    ),
}


def resolve_scale(scale: "str | ExperimentScale | None" = None) -> ExperimentScale:
    """Resolve a scale argument, honouring the ``REPRO_SCALE`` env variable."""
    if isinstance(scale, ExperimentScale):
        return scale
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "paper")
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {scale!r}; known scales: {known}") from None


@dataclass
class TrainedEncoder:
    """An FL-trained encoder plus its learned global threshold."""

    name: str
    encoder: SiameseEncoder
    threshold: float
    simulation: Optional[SimulationResult] = None


@dataclass
class SystemBundle:
    """Everything the end-to-end experiments need, built once."""

    scale: ExperimentScale
    seed: int
    corpus: Corpus
    pairs: QueryPairDataset
    train_pairs: QueryPairDataset
    val_pairs: QueryPairDataset
    test_pairs: QueryPairDataset
    meancache_mpnet: TrainedEncoder
    meancache_albert: Optional[TrainedEncoder] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def gptcache_encoder(self) -> SiameseEncoder:
        """A fresh, frozen pretrained ALBERT-class encoder (baseline config)."""
        return load_encoder("albert-sim")


def _train_encoder_fl(
    encoder_name: str,
    train_pairs: QueryPairDataset,
    val_pairs: QueryPairDataset,
    test_pairs: QueryPairDataset,
    scale: ExperimentScale,
    seed: int,
) -> TrainedEncoder:
    """Federated-train a zoo encoder and learn the global threshold."""
    config = SimulationConfig(
        encoder_name=encoder_name,
        n_clients=scale.fl_clients,
        n_rounds=scale.fl_rounds,
        clients_per_round=scale.fl_clients_per_round,
        local_epochs=scale.fl_local_epochs,
        seed=seed,
    )
    simulation = FLSimulation(train_pairs, val_pairs, test_data=test_pairs, config=config)
    result = simulation.run()
    encoder = simulation.trained_encoder()
    # The deployed threshold is the FL-aggregated one; fall back to a local
    # search on the validation split if aggregation produced a degenerate
    # value (can only happen with pathological tiny shards).
    threshold = result.final_threshold
    if not 0.05 <= threshold <= 0.99:
        threshold = find_optimal_threshold(encoder, val_pairs.as_tuples())
    return TrainedEncoder(
        name=encoder_name, encoder=encoder, threshold=threshold, simulation=result
    )


def build_system_bundle(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    train_albert: bool = False,
) -> SystemBundle:
    """Generate data and FL-train the MeanCache encoder(s).

    Parameters
    ----------
    scale:
        ``"paper"``, ``"quick"``, an :class:`ExperimentScale`, or None to use
        the ``REPRO_SCALE`` environment variable (default ``paper``).
    seed:
        Master seed; all randomness derives from it.
    train_albert:
        Also FL-train an ALBERT-class encoder (needed by the Table I
        "MeanCache (Albert)" column and Figures 12/14).
    """
    scale = resolve_scale(scale)
    corpus = Corpus(seed=seed)
    pairs = generate_pair_dataset(
        n_pairs=scale.n_pairs,
        duplicate_fraction=0.5,
        hard_negative_fraction=0.5,
        corpus=corpus,
        seed=seed,
    )
    train_pairs, val_pairs, test_pairs = pairs.split(0.7, 0.15, seed=seed + 1)

    meancache_mpnet = _train_encoder_fl(
        "mpnet-sim", train_pairs, val_pairs, test_pairs, scale, seed
    )
    meancache_albert = None
    if train_albert:
        meancache_albert = _train_encoder_fl(
            "albert-sim", train_pairs, val_pairs, test_pairs, scale, seed + 7
        )
    return SystemBundle(
        scale=scale,
        seed=seed,
        corpus=corpus,
        pairs=pairs,
        train_pairs=train_pairs,
        val_pairs=val_pairs,
        test_pairs=test_pairs,
        meancache_mpnet=meancache_mpnet,
        meancache_albert=meancache_albert,
    )


_BUNDLE_CACHE: Dict[tuple, SystemBundle] = {}


def cached_system_bundle(
    scale: "str | ExperimentScale | None" = None,
    seed: int = 0,
    train_albert: bool = False,
) -> SystemBundle:
    """Memoised :func:`build_system_bundle` (FL training is the costly step).

    A bundle trained with ``train_albert=True`` also satisfies requests with
    ``train_albert=False`` for the same scale/seed.
    """
    resolved = resolve_scale(scale)
    key_with = (resolved.name, seed, True)
    key_without = (resolved.name, seed, False)
    if key_with in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key_with]
    if not train_albert and key_without in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key_without]
    bundle = build_system_bundle(resolved, seed=seed, train_albert=train_albert)
    _BUNDLE_CACHE[(resolved.name, seed, train_albert)] = bundle
    return bundle
