"""Figure 15: per-query embedding cost of Llama-2 vs MPNet vs ALBERT.

The paper reports the mean time to embed a single query (0.04 s for Llama-2,
0.009 s for MPNet, 0.005 s for ALBERT) and the per-query embedding storage
(32 KB for Llama-2's 4096-d vectors, 6 KB for the 768-d models), arguing that
LLM-scale embedders are impractical on user devices.

In the reproduction, embedding time is *measured* wall-clock for the NumPy
analogues (which preserve the ordering: the llama2-class encoder is an order
of magnitude more work per query) and storage is exact (dimensionality × 8
bytes, matching the paper's numbers because the dimensionalities match).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.corpus import Corpus
from repro.embeddings.zoo import load_encoder, spec_for
from repro.metrics.reporting import format_table


@dataclass
class ModelCostRow:
    """One bar group of Figure 15."""

    model: str
    paper_model: str
    mean_embed_time_s: float
    std_embed_time_s: float
    embedding_dim: int
    embedding_storage_kb: float
    model_size_mb: float


@dataclass
class Fig15Result:
    """All three bar groups."""

    rows: List[ModelCostRow] = field(default_factory=list)
    n_queries: int = 0

    def row(self, model: str) -> ModelCostRow:
        """Look up one model's row."""
        for row in self.rows:
            if row.model == model:
                return row
        raise KeyError(f"no measurements for model {model!r}")

    def time_ratio(self, slow: str = "llama2-sim", fast: str = "mpnet-sim") -> float:
        """Embedding-time ratio between two models (paper: ~4.4x llama/mpnet)."""
        fast_time = self.row(fast).mean_embed_time_s
        if fast_time <= 0:
            return float("inf")
        return self.row(slow).mean_embed_time_s / fast_time

    def format(self) -> str:
        """Render the figure as a table."""
        rows = [
            [
                r.model,
                r.paper_model,
                r.mean_embed_time_s * 1000.0,
                r.embedding_dim,
                r.embedding_storage_kb,
                r.model_size_mb,
            ]
            for r in self.rows
        ]
        return format_table(
            ["Model", "Stands in for", "Embed time (ms)", "Dim", "Per-query storage (KB)", "Model size (MB)"],
            rows,
            title="Figure 15: per-query embedding compute time and storage",
        )


def run_fig15(
    n_queries: int = 200,
    models: Optional[Sequence[str]] = None,
    seed: int = 0,
    repeats: int = 3,
) -> Fig15Result:
    """Measure per-query embedding time and storage for the zoo encoders."""
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    models = list(models) if models is not None else ["llama2-sim", "mpnet-sim", "albert-sim"]
    corpus = Corpus(seed=seed)
    rng = np.random.default_rng(seed)
    intents = corpus.sample_intents(n_queries, rng)
    queries = [corpus.realize(intent, rng=rng) for intent in intents]

    result = Fig15Result(n_queries=n_queries)
    for name in models:
        spec = spec_for(name)
        encoder = load_encoder(name)
        # Warm up hash memoisation so the measurement reflects steady state.
        encoder.encode(queries[: min(8, len(queries))])
        per_query_times: List[float] = []
        for _ in range(repeats):
            for query in queries:
                start = time.perf_counter()
                encoder.encode(query)
                per_query_times.append(time.perf_counter() - start)
        times = np.array(per_query_times)
        result.rows.append(
            ModelCostRow(
                model=name,
                paper_model=spec.paper_model,
                mean_embed_time_s=float(times.mean()),
                std_embed_time_s=float(times.std()),
                embedding_dim=spec.embedding_dim,
                embedding_storage_kb=spec.embedding_bytes / 1024.0,
                model_size_mb=spec.model_size_mb,
            )
        )
    return result
