"""Fleet-scale serving benchmarks: throughput scaling and online adaptation.

Two benchmarks live here, both recorded in ``BENCH_fleet.json`` by
``benchmarks/test_bench_fleet.py`` so later scaling PRs can track the
trajectory:

* :func:`run_fleet_bench` — lookup throughput at 100 / 1,000 users:
  a deterministic multi-user trace
  (:class:`~repro.serving.workload.WorkloadGenerator`) replayed through
  :class:`~repro.serving.fleet.FleetSimulator` — one local MeanCache per
  user, all sharing one frozen encoder and one simulated LLM service — with
  wall-clock fleet throughput (lookups/s) plus hit-rate, latency and cost
  aggregates.
* :func:`run_drift_adaptation_bench` — adaptive vs static τ on drifting
  traffic: the same fleet twice over one non-stationary trace (paraphrase
  style collapse + domain-mix drift + duplicate-rate shift + user churn),
  once with the cold-start default τ pinned and once with the online
  federated loop (:class:`~repro.federated.online.OnlineThresholdAdapter`)
  re-learning per-user thresholds live.  Reported per fleet: raw hit rate,
  verified true-hit rate, false-hit rate, lookups/s — the adaptive fleet
  must serve strictly more correct cached answers at a strictly lower
  false-hit rate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.zoo import load_encoder
from repro.federated.online import OnlineAdaptationConfig, OnlineThresholdAdapter
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.metrics.reporting import format_table
from repro.metrics.timing import LatencyHistogram
from repro.serving.fleet import FleetConfig, FleetResult, FleetSimulator
from repro.serving.workload import DriftPhase, WorkloadConfig, WorkloadGenerator


@dataclass
class FleetBenchPoint:
    """One fleet size's measurements."""

    n_users: int
    n_lookups: int
    wall_clock_s: float
    throughput_lookups_per_s: float
    hit_rate: float
    mean_latency_s: float
    total_cost_usd: float
    virtual_duration_s: float
    # Wall-clock cache overhead per lookup (encode + index search + policy),
    # summarized with the same nearest-rank histogram the index latency
    # bench uses — the tail is what a served query actually waits on.
    overhead_p50_ms: float = 0.0
    overhead_p95_ms: float = 0.0
    overhead_p99_ms: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "n_users": self.n_users,
            "n_lookups": self.n_lookups,
            "wall_clock_s": self.wall_clock_s,
            "throughput_lookups_per_s": self.throughput_lookups_per_s,
            "hit_rate": self.hit_rate,
            "mean_latency_s": self.mean_latency_s,
            "total_cost_usd": self.total_cost_usd,
            "virtual_duration_s": self.virtual_duration_s,
            "overhead_p50_ms": self.overhead_p50_ms,
            "overhead_p95_ms": self.overhead_p95_ms,
            "overhead_p99_ms": self.overhead_p99_ms,
        }

    @classmethod
    def from_result(cls, result: FleetResult) -> "FleetBenchPoint":
        """Extract the benchmark quantities from a simulation result.

        When the result retains per-event outcomes (``collect_outcomes``),
        the measured per-lookup cache overheads are folded into a
        :class:`~repro.metrics.timing.LatencyHistogram` for the percentile
        fields; without outcomes those fields stay 0.
        """
        hist = LatencyHistogram()
        for outcome in result.outcomes:
            hist.record(int(outcome.cache_overhead_s * 1e9))
        return cls(
            n_users=result.n_users,
            n_lookups=result.lookups,
            wall_clock_s=result.wall_clock_s,
            throughput_lookups_per_s=result.throughput_lookups_per_s,
            hit_rate=result.hit_rate,
            mean_latency_s=result.mean_latency_s,
            total_cost_usd=result.total_cost_usd,
            virtual_duration_s=result.virtual_duration_s,
            overhead_p50_ms=hist.p50 / 1e6,
            overhead_p95_ms=hist.p95 / 1e6,
            overhead_p99_ms=hist.p99 / 1e6,
        )


@dataclass
class FleetBenchResult:
    """All fleet sizes' measurements plus the run configuration."""

    points: List[FleetBenchPoint] = field(default_factory=list)
    encoder_name: str = "albert-sim"
    queries_per_user: int = 10
    duplicate_rate: float = 0.3
    similarity_threshold: float = 0.7
    batch_window_s: float = 0.25
    index_backend: str = "flat"
    index_params: Optional[Dict[str, object]] = None
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``BENCH_fleet.json`` payload)."""
        return {
            "encoder_name": self.encoder_name,
            "queries_per_user": self.queries_per_user,
            "duplicate_rate": self.duplicate_rate,
            "similarity_threshold": self.similarity_threshold,
            "batch_window_s": self.batch_window_s,
            "index_backend": self.index_backend,
            "index_params": dict(self.index_params or {}),
            "seed": self.seed,
            "points": [p.to_dict() for p in self.points],
        }

    def point(self, n_users: int) -> FleetBenchPoint:
        """The measurements for one fleet size."""
        for p in self.points:
            if p.n_users == n_users:
                return p
        raise KeyError(f"no benchmark point for {n_users} users")

    def format(self) -> str:
        """Render the throughput table."""
        rows = [
            [
                p.n_users,
                p.n_lookups,
                p.wall_clock_s,
                p.throughput_lookups_per_s,
                p.hit_rate,
                p.mean_latency_s * 1000.0,
                f"{p.overhead_p99_ms:.2f}",
                p.total_cost_usd,
            ]
            for p in self.points
        ]
        return format_table(
            [
                "Users",
                "Lookups",
                "Wall clock (s)",
                "Lookups/s",
                "Hit rate",
                "Mean latency (ms)",
                "Overhead p99 (ms)",
                "LLM cost ($)",
            ],
            rows,
            title=(
                "Fleet serving benchmark: per-user MeanCache fleet vs one shared "
                f"LLM service ({self.encoder_name}, τ={self.similarity_threshold})"
            ),
        )


def run_fleet_bench(
    user_counts: Sequence[int] = (100, 1000),
    queries_per_user: int = 10,
    duplicate_rate: float = 0.3,
    similarity_threshold: float = 0.7,
    batch_window_s: float = 0.25,
    encoder: Optional[SiameseEncoder] = None,
    encoder_name: str = "albert-sim",
    index_backend: str = "flat",
    index_params: Optional[Dict[str, object]] = None,
    seed: int = 0,
) -> FleetBenchResult:
    """Measure fleet lookup throughput at each fleet size.

    One frozen encoder instance is shared by every user's cache (encoding is
    stateless), matching a deployment where all devices run the same
    distributed model snapshot.  ``index_backend``/``index_params`` select
    each cache's vector-index backend (any :func:`repro.index.make_index`
    name), so the same trace can be replayed over flat/IVF/LSH/quantized
    fleets.

    Every RNG in the run derives from ``seed``: the workload generator, the
    simulated LLM service, and — unless ``index_params`` pins one — each
    cache index's internal seed, so BENCH_fleet.json deltas are
    attributable to code changes rather than run-to-run noise.
    """
    from repro.index.registry import seeded_params

    encoder = encoder or load_encoder(encoder_name)
    # Thread the benchmark seed into the backend when its constructor takes
    # one (flat does not; all randomized backends do).
    resolved_params = seeded_params(index_backend, index_params or {}, seed)
    result = FleetBenchResult(
        encoder_name=encoder_name,
        queries_per_user=queries_per_user,
        duplicate_rate=duplicate_rate,
        similarity_threshold=similarity_threshold,
        batch_window_s=batch_window_s,
        index_backend=index_backend,
        index_params=dict(resolved_params),
        seed=seed,
    )
    cache_config = MeanCacheConfig(
        similarity_threshold=similarity_threshold,
        index_backend=index_backend,
        index_params=dict(resolved_params),
    )
    for n_users in user_counts:
        trace = WorkloadGenerator(
            WorkloadConfig(
                n_users=n_users,
                queries_per_user=queries_per_user,
                duplicate_rate=duplicate_rate,
            ),
            seed=seed,
        ).generate()
        simulator = FleetSimulator(
            cache_factory=lambda user_id: MeanCache(encoder, cache_config),
            service=SimulatedLLMService(LLMServiceConfig(seed=seed)),
            config=FleetConfig(batch_window_s=batch_window_s),
        )
        result.points.append(
            FleetBenchPoint.from_result(simulator.run(trace, collect_outcomes=True))
        )
    return result


# --------------------------------------------------------------------------- #
# Adaptive vs static τ on drifting traffic
# --------------------------------------------------------------------------- #
@dataclass
class AdaptiveFleetPoint:
    """One fleet's measurements over the drifting trace."""

    label: str  # "static" | "adaptive"
    n_lookups: int
    hit_rate: float
    true_hit_rate: float
    false_hit_rate: float
    throughput_lookups_per_s: float
    total_cost_usd: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return asdict(self)

    @classmethod
    def from_result(cls, label: str, result: FleetResult) -> "AdaptiveFleetPoint":
        """Extract the comparison quantities from a simulation result."""
        return cls(
            label=label,
            n_lookups=result.lookups,
            hit_rate=result.hit_rate,
            true_hit_rate=result.true_hit_rate,
            false_hit_rate=result.false_hit_rate,
            throughput_lookups_per_s=result.throughput_lookups_per_s,
            total_cost_usd=result.total_cost_usd,
        )


@dataclass
class DriftAdaptationResult:
    """Static-τ vs adaptive-τ comparison on one drifting trace."""

    static: AdaptiveFleetPoint
    adaptive: AdaptiveFleetPoint
    static_threshold: float
    final_global_threshold: float
    n_rounds: int
    threshold_trajectory: List[float]
    workload: Dict[str, object] = field(default_factory=dict)
    adaptation: Dict[str, object] = field(default_factory=dict)
    encoder_name: str = "albert-sim"
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (``BENCH_fleet.json``'s
        ``adaptive_vs_static`` section)."""
        return {
            "encoder_name": self.encoder_name,
            "seed": self.seed,
            "static_threshold": self.static_threshold,
            "final_global_threshold": self.final_global_threshold,
            "n_rounds": self.n_rounds,
            "threshold_trajectory": list(self.threshold_trajectory),
            "workload": dict(self.workload),
            "adaptation": dict(self.adaptation),
            "static": self.static.to_dict(),
            "adaptive": self.adaptive.to_dict(),
        }

    def format(self) -> str:
        """Render the comparison table."""
        rows = [
            [
                p.label,
                p.n_lookups,
                p.hit_rate,
                p.true_hit_rate,
                p.false_hit_rate,
                p.throughput_lookups_per_s,
                p.total_cost_usd,
            ]
            for p in (self.static, self.adaptive)
        ]
        return format_table(
            [
                "Fleet",
                "Lookups",
                "Hit rate",
                "True-hit rate",
                "False-hit rate",
                "Lookups/s",
                "LLM cost ($)",
            ],
            rows,
            title=(
                "Online federated τ adaptation vs static τ on drifting traffic "
                f"(static τ={self.static_threshold}, final global "
                f"τ={self.final_global_threshold:.3f} after {self.n_rounds} rounds)"
            ),
        )


def drifting_workload_config(
    n_users: int = 30,
    queries_per_user: int = 150,
) -> WorkloadConfig:
    """The benchmark's non-stationary scenario (all four drift mechanisms).

    Phase 1 (first half): specialised users (``domain_concentration=0.1``)
    re-asking strong paraphrases (``paraphrase_bias=0.9`` — re-asks share
    the distinctive noun phrase), a hard-negative-dense regime where the
    cold-start τ=0.7 admits many false hits.  Phase 2 (second half):
    paraphrase style collapses (``paraphrase_bias=0.05``), every user's
    domain mix re-draws broad (``domain_concentration=5.0``), the duplicate
    rate jumps to 0.65, and 10% of users churn into cold-start successors —
    the whole similarity distribution shifts down, so the static τ strands
    the re-ask traffic it was supposed to convert.
    """
    return WorkloadConfig(
        n_users=n_users,
        queries_per_user=queries_per_user,
        duplicate_rate=0.35,
        domain_concentration=0.1,
        paraphrase_bias=0.9,
        followup_rate=0.15,
        drift_phases=(
            DriftPhase(
                start_fraction=0.5,
                duplicate_rate=0.65,
                redraw_domain_mix=True,
                domain_concentration=5.0,
                paraphrase_bias=0.05,
            ),
        ),
        churn_fraction=0.1,
        churn_point=0.5,
    )


def run_drift_adaptation_bench(
    n_users: int = 30,
    queries_per_user: int = 150,
    static_threshold: float = 0.7,
    encoder: Optional[SiameseEncoder] = None,
    encoder_name: str = "albert-sim",
    adaptation_config: Optional[OnlineAdaptationConfig] = None,
    seed: int = 0,
) -> DriftAdaptationResult:
    """Replay one drifting trace through a static-τ and an adaptive-τ fleet.

    Both fleets are identical per-user MeanCache deployments on one frozen
    encoder; the only difference is the adaptive fleet's
    :class:`OnlineThresholdAdapter` mining labelled pairs from its own
    traffic and re-learning per-user thresholds on the virtual clock.  The
    static fleet pins the cold-start default τ for the whole run.

    The headline comparison is *served answer quality*: the adaptive fleet
    must deliver a higher verified true-hit rate at a lower false-hit rate
    (raw admission rate — which counts wrongly served answers as wins — is
    reported alongside and stays within noise of the static fleet).
    """
    encoder = encoder or load_encoder(encoder_name)
    workload_config = drifting_workload_config(n_users, queries_per_user)
    trace = WorkloadGenerator(workload_config, seed=seed).generate()
    adaptation_config = adaptation_config or OnlineAdaptationConfig(
        round_interval_s=10.0,
        clients_per_round=n_users,
        min_observations=16,
        max_observations=256,
        observation_ttl_s=120.0,
        beta=1.25,
        personalization=0.5,
        initial_threshold=static_threshold,
        seed=seed,
    )

    def run_fleet(adaptation: Optional[OnlineThresholdAdapter]) -> FleetResult:
        simulator = FleetSimulator(
            cache_factory=lambda user_id: MeanCache(
                encoder, MeanCacheConfig(similarity_threshold=static_threshold)
            ),
            service=SimulatedLLMService(LLMServiceConfig(seed=seed)),
            config=FleetConfig(),
            adaptation=adaptation,
        )
        return simulator.run(trace)

    static_result = run_fleet(None)
    adapter = OnlineThresholdAdapter(adaptation_config)
    adaptive_result = run_fleet(adapter)

    trajectory = adapter.threshold_trajectory()
    return DriftAdaptationResult(
        static=AdaptiveFleetPoint.from_result("static", static_result),
        adaptive=AdaptiveFleetPoint.from_result("adaptive", adaptive_result),
        static_threshold=static_threshold,
        final_global_threshold=adapter.global_threshold,
        n_rounds=len(adapter.history),
        threshold_trajectory=[float(t) for t in trajectory.get("threshold", [])],
        workload={
            "n_users": n_users,
            "queries_per_user": queries_per_user,
            "n_events": len(trace),
            "duplicate_fraction": trace.duplicate_fraction,
            "metadata": dict(trace.metadata),
        },
        adaptation=asdict(adaptation_config),
        encoder_name=encoder_name,
        seed=seed,
    )
