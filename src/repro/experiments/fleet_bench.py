"""Fleet-scale serving benchmark: lookup throughput at 100 / 1,000 users.

Generates a deterministic multi-user traffic trace per fleet size
(:class:`~repro.serving.workload.WorkloadGenerator`), replays it through
:class:`~repro.serving.fleet.FleetSimulator` — one local MeanCache per user,
all variants of which share one frozen encoder and one simulated LLM service
— and reports wall-clock fleet throughput (lookups/s) plus hit-rate, latency
and cost aggregates.  ``benchmarks/test_bench_fleet.py`` records the result
in ``BENCH_fleet.json`` so later scaling PRs can track the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.zoo import load_encoder
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.metrics.reporting import format_table
from repro.serving.fleet import FleetConfig, FleetResult, FleetSimulator
from repro.serving.workload import WorkloadConfig, WorkloadGenerator


@dataclass
class FleetBenchPoint:
    """One fleet size's measurements."""

    n_users: int
    n_lookups: int
    wall_clock_s: float
    throughput_lookups_per_s: float
    hit_rate: float
    mean_latency_s: float
    total_cost_usd: float
    virtual_duration_s: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "n_users": self.n_users,
            "n_lookups": self.n_lookups,
            "wall_clock_s": self.wall_clock_s,
            "throughput_lookups_per_s": self.throughput_lookups_per_s,
            "hit_rate": self.hit_rate,
            "mean_latency_s": self.mean_latency_s,
            "total_cost_usd": self.total_cost_usd,
            "virtual_duration_s": self.virtual_duration_s,
        }

    @classmethod
    def from_result(cls, result: FleetResult) -> "FleetBenchPoint":
        """Extract the benchmark quantities from a simulation result."""
        return cls(
            n_users=result.n_users,
            n_lookups=result.lookups,
            wall_clock_s=result.wall_clock_s,
            throughput_lookups_per_s=result.throughput_lookups_per_s,
            hit_rate=result.hit_rate,
            mean_latency_s=result.mean_latency_s,
            total_cost_usd=result.total_cost_usd,
            virtual_duration_s=result.virtual_duration_s,
        )


@dataclass
class FleetBenchResult:
    """All fleet sizes' measurements plus the run configuration."""

    points: List[FleetBenchPoint] = field(default_factory=list)
    encoder_name: str = "albert-sim"
    queries_per_user: int = 10
    duplicate_rate: float = 0.3
    similarity_threshold: float = 0.7
    batch_window_s: float = 0.25
    index_backend: str = "flat"
    index_params: Optional[Dict[str, object]] = None
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``BENCH_fleet.json`` payload)."""
        return {
            "encoder_name": self.encoder_name,
            "queries_per_user": self.queries_per_user,
            "duplicate_rate": self.duplicate_rate,
            "similarity_threshold": self.similarity_threshold,
            "batch_window_s": self.batch_window_s,
            "index_backend": self.index_backend,
            "index_params": dict(self.index_params or {}),
            "seed": self.seed,
            "points": [p.to_dict() for p in self.points],
        }

    def point(self, n_users: int) -> FleetBenchPoint:
        """The measurements for one fleet size."""
        for p in self.points:
            if p.n_users == n_users:
                return p
        raise KeyError(f"no benchmark point for {n_users} users")

    def format(self) -> str:
        """Render the throughput table."""
        rows = [
            [
                p.n_users,
                p.n_lookups,
                p.wall_clock_s,
                p.throughput_lookups_per_s,
                p.hit_rate,
                p.mean_latency_s * 1000.0,
                p.total_cost_usd,
            ]
            for p in self.points
        ]
        return format_table(
            [
                "Users",
                "Lookups",
                "Wall clock (s)",
                "Lookups/s",
                "Hit rate",
                "Mean latency (ms)",
                "LLM cost ($)",
            ],
            rows,
            title=(
                "Fleet serving benchmark: per-user MeanCache fleet vs one shared "
                f"LLM service ({self.encoder_name}, τ={self.similarity_threshold})"
            ),
        )


def run_fleet_bench(
    user_counts: Sequence[int] = (100, 1000),
    queries_per_user: int = 10,
    duplicate_rate: float = 0.3,
    similarity_threshold: float = 0.7,
    batch_window_s: float = 0.25,
    encoder: Optional[SiameseEncoder] = None,
    encoder_name: str = "albert-sim",
    index_backend: str = "flat",
    index_params: Optional[Dict[str, object]] = None,
    seed: int = 0,
) -> FleetBenchResult:
    """Measure fleet lookup throughput at each fleet size.

    One frozen encoder instance is shared by every user's cache (encoding is
    stateless), matching a deployment where all devices run the same
    distributed model snapshot.  ``index_backend``/``index_params`` select
    each cache's vector-index backend (any :func:`repro.index.make_index`
    name), so the same trace can be replayed over flat/IVF/LSH/quantized
    fleets.

    Every RNG in the run derives from ``seed``: the workload generator, the
    simulated LLM service, and — unless ``index_params`` pins one — each
    cache index's internal seed, so BENCH_fleet.json deltas are
    attributable to code changes rather than run-to-run noise.
    """
    from repro.index.registry import seeded_params

    encoder = encoder or load_encoder(encoder_name)
    # Thread the benchmark seed into the backend when its constructor takes
    # one (flat does not; all randomized backends do).
    resolved_params = seeded_params(index_backend, index_params or {}, seed)
    result = FleetBenchResult(
        encoder_name=encoder_name,
        queries_per_user=queries_per_user,
        duplicate_rate=duplicate_rate,
        similarity_threshold=similarity_threshold,
        batch_window_s=batch_window_s,
        index_backend=index_backend,
        index_params=dict(resolved_params),
        seed=seed,
    )
    cache_config = MeanCacheConfig(
        similarity_threshold=similarity_threshold,
        index_backend=index_backend,
        index_params=dict(resolved_params),
    )
    for n_users in user_counts:
        trace = WorkloadGenerator(
            WorkloadConfig(
                n_users=n_users,
                queries_per_user=queries_per_user,
                duplicate_rate=duplicate_rate,
            ),
            seed=seed,
        ).generate()
        simulator = FleetSimulator(
            cache_factory=lambda user_id: MeanCache(encoder, cache_config),
            service=SimulatedLLMService(LLMServiceConfig(seed=seed)),
            config=FleetConfig(batch_window_s=batch_window_s),
        )
        result.points.append(FleetBenchPoint.from_result(simulator.run(trace)))
    return result
