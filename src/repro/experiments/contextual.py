"""Table I (contextual queries) and Figures 8 / 9.

Workload (paper §IV-C): the cache is populated with 200 queries — 100
standalone plus 100 follow-ups of those standalone queries (each follow-up is
stored with its context chain).  A probe stream of 250 queries follows: 75
duplicate standalone + 75 duplicate contextual (whose context matches the
cached chain) and 100 non-duplicates, most of which are "context traps" —
follow-ups that look exactly like a cached follow-up but arise under a
different conversation.  A context-oblivious cache false-hits on the traps;
MeanCache's context-chain verification rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.datasets.contextual import ContextualDataset, generate_contextual_dataset
from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.metrics.classification import ConfusionMatrix, confusion_matrix
from repro.metrics.reporting import format_confusion_matrix, format_metric_comparison


@dataclass
class ContextualSystemEvaluation:
    """Decisions and metrics of one system on the contextual workload."""

    system: str
    predictions: np.ndarray
    metrics: Dict[str, float]
    matrix: ConfusionMatrix
    trap_false_hits: int = 0


@dataclass
class ContextualResult:
    """Table I (contextual half) + Figures 8/9."""

    dataset: ContextualDataset
    systems: Dict[str, ContextualSystemEvaluation] = field(default_factory=dict)

    def paper_rows(self) -> Dict[str, Dict[str, float]]:
        """Metric dict per system."""
        return {name: ev.metrics for name, ev in self.systems.items()}

    def format(self) -> str:
        """Render the contextual comparison and confusion matrices."""
        parts = [
            format_metric_comparison(
                self.paper_rows(),
                metrics=("f_score", "precision", "recall", "accuracy", "false_hits"),
                title="Table I (contextual queries): MeanCache vs GPTCache",
            )
        ]
        for name, ev in self.systems.items():
            parts.append("")
            parts.append(format_confusion_matrix(ev.matrix, name))
            parts.append(f"false hits on context traps: {ev.trap_false_hits}")
        return "\n".join(parts)


def _evaluate_meancache(
    cache: MeanCache, dataset: ContextualDataset, beta: float
) -> ContextualSystemEvaluation:
    cache.clear()
    for turn in dataset.cached_turns:
        cache.insert(turn.text, f"cached response for: {turn.text}", context=list(turn.context))
    decisions = cache.lookup_batch(
        [probe.text for probe in dataset.probes],
        contexts=[list(probe.context) for probe in dataset.probes],
    )
    predictions = np.array([d.hit for d in decisions], dtype=bool)
    trap_false_hits = sum(
        1
        for probe, decision in zip(dataset.probes, decisions)
        if decision.hit and probe.is_context_trap
    )
    cm = confusion_matrix(dataset.true_labels, predictions)
    return ContextualSystemEvaluation(
        system="meancache",
        predictions=predictions,
        metrics=cm.metrics(beta),
        matrix=cm,
        trap_false_hits=trap_false_hits,
    )


def _evaluate_gptcache(
    cache: GPTCache, dataset: ContextualDataset, beta: float
) -> ContextualSystemEvaluation:
    for turn in dataset.cached_turns:
        cache.insert(turn.text, f"cached response for: {turn.text}")
    # Context is ignored by the baseline, so the whole probe set batches.
    decisions = cache.lookup_batch([probe.text for probe in dataset.probes])
    predictions = np.array([d.hit for d in decisions], dtype=bool)
    trap_false_hits = sum(
        1
        for probe, decision in zip(dataset.probes, decisions)
        if decision.hit and probe.is_context_trap
    )
    cm = confusion_matrix(dataset.true_labels, predictions)
    return ContextualSystemEvaluation(
        system="gptcache",
        predictions=predictions,
        metrics=cm.metrics(beta),
        matrix=cm,
        trap_false_hits=trap_false_hits,
    )


def run_contextual(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    beta: float = 0.5,
) -> ContextualResult:
    """Reproduce the contextual-query comparison (Table I right half, Figs 8/9)."""
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed)
    dataset = generate_contextual_dataset(
        n_standalone_cached=resolved.contextual_cached_standalone,
        n_contextual_cached=resolved.contextual_cached_followups,
        n_duplicate_standalone_probes=resolved.contextual_dup_standalone,
        n_duplicate_contextual_probes=resolved.contextual_dup_contextual,
        n_unique_probes=resolved.contextual_unique,
        corpus=bundle.corpus,
        seed=seed + 200,
    )
    result = ContextualResult(dataset=dataset)

    gpt = GPTCache(bundle.gptcache_encoder(), GPTCacheConfig(similarity_threshold=0.7))
    result.systems["GPTCache"] = _evaluate_gptcache(gpt, dataset, beta)

    mpnet = bundle.meancache_mpnet
    mc = MeanCache(
        mpnet.encoder.clone(),
        MeanCacheConfig(similarity_threshold=mpnet.threshold, verify_context=True),
    )
    result.systems["MeanCache"] = _evaluate_meancache(mc, dataset, beta)

    # Ablation: MeanCache with context verification switched off quantifies
    # how much of the contextual win comes from the chain check itself.
    mc_noctx = MeanCache(
        mpnet.encoder.clone(),
        MeanCacheConfig(similarity_threshold=mpnet.threshold, verify_context=False),
    )
    result.systems["MeanCache (no context check)"] = _evaluate_meancache(mc_noctx, dataset, beta)
    return result
