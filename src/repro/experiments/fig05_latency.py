"""Figures 5 and 6: per-query response times and hit/miss decisions.

The paper sends 100 randomly sampled queries (70 unique, 30 duplicates of
cached queries) to a Llama-2-based service in three configurations: no cache,
GPTCache, and MeanCache.  Figure 5 plots per-query response time; Figure 6
plots the hit/miss decision of each cache against the ground truth.

LLM latency here is *simulated* (see :mod:`repro.llm.latency`); cache lookup
overhead (embedding + search) is measured wall-clock.  By default each probe
is looked up sequentially — the paper's interactive setting, where every
request pays a full encode — so the per-query overheads match what a deployed
cache adds to one request.  Pass ``batched=True`` to drive the whole probe
set through ``lookup_batch`` instead (identical hit/miss decisions, one
encoder call + one matmul total); per-probe overhead is then the batch cost
split evenly — an amortized throughput figure, not a per-request latency.
The paper's qualitative
claims are that (a) adding a semantic cache does not slow down unique queries
and (b) duplicate queries are answered orders of magnitude faster from the
local cache, with (c) GPTCache producing far more false hits than MeanCache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig
from repro.datasets.semantic_pairs import CacheWorkload, generate_cache_workload
from repro.experiments.common import SystemBundle, cached_system_bundle, resolve_scale
from repro.llm.service import LLMServiceConfig, SimulatedLLMService
from repro.metrics.classification import confusion_matrix
from repro.metrics.reporting import format_table


@dataclass
class LatencyTrace:
    """Per-query response times and decisions for one configuration."""

    system: str
    latencies_s: np.ndarray
    predictions: Optional[np.ndarray] = None  # None for the no-cache run

    @property
    def mean_latency_s(self) -> float:
        """Mean per-query latency."""
        return float(self.latencies_s.mean()) if self.latencies_s.size else 0.0


@dataclass
class Fig5Result:
    """The three response-time traces plus decision series (Fig. 6)."""

    workload: CacheWorkload
    order: List[int]
    true_labels: np.ndarray
    traces: Dict[str, LatencyTrace] = field(default_factory=dict)
    batched: bool = False

    def decision_metrics(self, system: str, beta: float = 0.5) -> Dict[str, float]:
        """Hit/miss metrics of one cached configuration on this probe subset."""
        trace = self.traces[system]
        if trace.predictions is None:
            raise ValueError(f"{system} records no decisions (no cache)")
        return confusion_matrix(self.true_labels, trace.predictions).metrics(beta)

    def speedup_on_duplicates(self, system: str) -> float:
        """Mean no-cache latency / mean cached latency over true-duplicate probes."""
        base = self.traces["Llama 2"].latencies_s[self.true_labels]
        cached = self.traces[system].latencies_s[self.true_labels]
        if cached.mean() <= 0:
            return float("inf")
        return float(base.mean() / cached.mean())

    def format(self) -> str:
        """Summary table of mean latencies and duplicate-query speedups."""
        rows = []
        for name, trace in self.traces.items():
            dup_lat = float(trace.latencies_s[self.true_labels].mean()) if self.true_labels.any() else 0.0
            uniq_lat = float(trace.latencies_s[~self.true_labels].mean()) if (~self.true_labels).any() else 0.0
            rows.append([name, trace.mean_latency_s, uniq_lat, dup_lat])
        overhead_kind = "batch-amortized" if self.batched else "measured"
        return format_table(
            ["System", "Mean latency (s)", "Unique queries (s)", "Duplicate queries (s)"],
            rows,
            title=(
                "Figure 5: per-query response time "
                f"(simulated LLM latency + {overhead_kind} cache overhead)"
            ),
        )


def run_fig05(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
    n_probes: Optional[int] = None,
    duplicate_fraction: float = 0.3,
    batched: bool = False,
) -> Fig5Result:
    """Reproduce Figures 5 and 6.

    ``batched=False`` (default) times each probe as its own request — the
    figure's per-request latency semantics.  ``batched=True`` classifies the
    whole probe set through one ``lookup_batch`` call per cache (same
    decisions; amortized overheads) for throughput-style workload driving.
    """
    resolved = bundle.scale if (bundle is not None and scale is None) else resolve_scale(scale)
    if bundle is None:
        bundle = cached_system_bundle(resolved, seed=seed)
    n_probes = n_probes or resolved.latency_probe_count
    workload = generate_cache_workload(
        n_cached=resolved.n_cached,
        n_probes=n_probes,
        duplicate_fraction=duplicate_fraction,
        corpus=bundle.corpus,
        seed=seed + 300,
    )
    # The paper orders the figure with unique queries first (0-69) and
    # duplicates last (70-99); reproduce that ordering for readability.
    order = sorted(range(workload.n_probes), key=lambda i: workload.probes[i].should_hit)
    probes = [workload.probes[i] for i in order]
    true_labels = np.array([p.should_hit for p in probes], dtype=bool)

    result = Fig5Result(
        workload=workload, order=order, true_labels=true_labels, batched=batched
    )

    # --- no cache ------------------------------------------------------- #
    service = SimulatedLLMService(LLMServiceConfig(seed=seed))
    latencies = np.array([service.query(p.text).latency_s for p in probes])
    result.traces["Llama 2"] = LatencyTrace(system="Llama 2", latencies_s=latencies)

    # In batched mode both cached configurations classify the whole probe set
    # through one lookup_batch call (no probe is enrolled on a miss here, so
    # batching is decision-equivalent to the sequential loop); the simulated
    # LLM round trip is then added per miss.
    # --- GPTCache ------------------------------------------------------- #
    service_gpt = SimulatedLLMService(LLMServiceConfig(seed=seed))
    gpt = GPTCache(bundle.gptcache_encoder(), GPTCacheConfig(similarity_threshold=0.7))
    gpt.populate(workload.cached_queries)
    if batched:
        gpt_decisions = gpt.lookup_batch([p.text for p in probes])
    else:
        gpt_decisions = [gpt.lookup(p.text) for p in probes]
    gpt_lat = np.zeros(len(probes))
    gpt_pred = np.zeros(len(probes), dtype=bool)
    for i, decision in enumerate(gpt_decisions):
        gpt_pred[i] = decision.hit
        if decision.hit:
            gpt_lat[i] = decision.total_overhead_s
        else:
            gpt_lat[i] = decision.total_overhead_s + service_gpt.query(decision.query).latency_s
    result.traces["Llama 2 + GPTCache"] = LatencyTrace(
        system="Llama 2 + GPTCache", latencies_s=gpt_lat, predictions=gpt_pred
    )

    # --- MeanCache ------------------------------------------------------ #
    service_mc = SimulatedLLMService(LLMServiceConfig(seed=seed))
    mpnet = bundle.meancache_mpnet
    mc = MeanCache(
        mpnet.encoder.clone(),
        MeanCacheConfig(similarity_threshold=mpnet.threshold, verify_context=True),
    )
    mc.populate(workload.cached_queries)
    if batched:
        mc_decisions = mc.lookup_batch([p.text for p in probes])
    else:
        mc_decisions = [mc.lookup(p.text) for p in probes]
    mc_lat = np.zeros(len(probes))
    mc_pred = np.zeros(len(probes), dtype=bool)
    for i, decision in enumerate(mc_decisions):
        mc_pred[i] = decision.hit
        if decision.hit:
            mc_lat[i] = decision.total_overhead_s
        else:
            mc_lat[i] = decision.total_overhead_s + service_mc.query(decision.query).latency_s
    result.traces["Llama 2 + MeanCache"] = LatencyTrace(
        system="Llama 2 + MeanCache", latencies_s=mc_lat, predictions=mc_pred
    )
    return result


def run_fig06(
    scale: "str | None" = None,
    seed: int = 0,
    bundle: Optional[SystemBundle] = None,
) -> Fig5Result:
    """Figure 6 uses the same run as Figure 5 (decision series per probe)."""
    return run_fig05(scale=scale, seed=seed, bundle=bundle)
