"""The end-user client session (Figure 1's full workflow).

:class:`MeanCacheClient` wires a local :class:`~repro.core.cache.MeanCache` to
an LLM web service: every user query is first looked up in the local cache;
on a miss the query (plus conversational context) is forwarded to the service
and the new (query, response) pair is enrolled in the cache.  The client also
tracks conversational state so follow-up queries automatically carry their
context chain, and keeps latency/cost accounting used by the Figure 5
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cache import CacheDecision, MeanCache
from repro.llm.service import SimulatedLLMService


@dataclass
class ClientQueryResult:
    """What the user gets back for one query."""

    query: str
    response: str
    from_cache: bool
    decision: CacheDecision
    llm_latency_s: float = 0.0
    cache_overhead_s: float = 0.0
    cost_usd: float = 0.0

    @property
    def total_latency_s(self) -> float:
        """End-to-end simulated latency experienced by the user.

        Cache overhead (embedding + search) is measured wall-clock; the LLM
        round trip is the simulated latency from the latency model (zero on a
        cache hit).
        """
        return self.llm_latency_s + self.cache_overhead_s


@dataclass
class ConversationState:
    """Rolling conversational history used to build context chains."""

    turns: List[str] = field(default_factory=list)
    max_depth: int = 3

    def context_for_next_query(self) -> List[str]:
        """The parent queries (most recent last) for the next follow-up."""
        return self.turns[-self.max_depth :]

    def add_turn(self, query: str) -> None:
        """Record that ``query`` was asked."""
        self.turns.append(query)

    def reset(self) -> None:
        """Start a fresh conversation."""
        self.turns.clear()


class MeanCacheClient:
    """A user device running MeanCache in front of an LLM web service."""

    def __init__(
        self,
        cache: MeanCache,
        service: SimulatedLLMService,
        client_id: str = "user-0",
        max_context_depth: int = 3,
    ) -> None:
        self.cache = cache
        self.service = service
        self.client_id = client_id
        self.conversation = ConversationState(max_depth=max_context_depth)
        self.results: List[ClientQueryResult] = []

    # ------------------------------------------------------------------ #
    def query(
        self,
        text: str,
        context: Optional[Sequence[str]] = None,
        is_followup: bool = False,
        enroll_on_miss: bool = True,
    ) -> ClientQueryResult:
        """Answer a user query via the cache, falling back to the LLM service.

        Parameters
        ----------
        text:
            The user's query.
        context:
            Explicit conversational context (parent queries).  When ``None``,
            the client supplies the running conversation history if
            ``is_followup`` is True, else treats the query as standalone.
        is_followup:
            Whether the query continues the current conversation.
        enroll_on_miss:
            Whether to insert the LLM's response into the cache on a miss.
        """
        if context is None:
            context = self.conversation.context_for_next_query() if is_followup else []
        context = list(context)

        decision = self.cache.lookup(text, context=context)
        result = self._result_for(text, context, decision, enroll_on_miss)

        if is_followup or context:
            self.conversation.add_turn(text)
        else:
            self.conversation.reset()
            self.conversation.add_turn(text)
        self.results.append(result)
        return result

    def query_many(
        self,
        texts: Sequence[str],
        contexts: Optional[Sequence[Sequence[str]]] = None,
        enroll_on_miss: bool = True,
    ) -> List[ClientQueryResult]:
        """Answer a whole probe list through one batched cache lookup.

        All probes go through :meth:`MeanCache.lookup_batch` (one encoder
        call plus one index matmul); each miss is then forwarded to the LLM
        service and, when ``enroll_on_miss``, enrolled in the cache.  Every
        probe gets its own :class:`ClientQueryResult` with the same per-result
        accounting as :meth:`query`, and results are appended to
        :attr:`results` in probe order.

        Unlike the sequential :meth:`query` loop, misses are enrolled only
        *after* the whole batch is classified, so a probe cannot hit an entry
        enrolled by an earlier probe of the same batch.  The batch also does
        not advance the rolling conversation state — pass explicit
        ``contexts`` for contextual probes.

        Parameters
        ----------
        texts:
            The probe queries.
        contexts:
            Optional per-probe conversational contexts aligned with
            ``texts``; ``None`` treats every probe as standalone.
        enroll_on_miss:
            Whether to insert each miss's LLM response into the cache.
        """
        texts = list(texts)
        if contexts is not None and len(contexts) != len(texts):
            raise ValueError("contexts must align with texts")
        ctx_lists: List[List[str]] = (
            [list(c) for c in contexts] if contexts is not None else [[] for _ in texts]
        )
        decisions = self.cache.lookup_batch(texts, contexts=contexts)
        batch_results = [
            self._result_for(text, context, decision, enroll_on_miss)
            for text, context, decision in zip(texts, ctx_lists, decisions)
        ]
        self.results.extend(batch_results)
        return batch_results

    def _result_for(
        self,
        text: str,
        context: List[str],
        decision: CacheDecision,
        enroll_on_miss: bool,
    ) -> ClientQueryResult:
        """Resolve one decision: serve a hit locally, fall back to the LLM
        (enrolling the response when asked) on a miss, with the shared
        per-result latency/cost accounting."""
        if decision.hit:
            return ClientQueryResult(
                query=text,
                response=decision.response or "",
                from_cache=True,
                decision=decision,
                llm_latency_s=0.0,
                cache_overhead_s=decision.total_overhead_s,
                cost_usd=0.0,
            )
        llm_response = self.service.query(text, client_id=self.client_id, context=context)
        if enroll_on_miss:
            # Reuse the lookup's embedding so enrolment skips a re-encode.
            self.cache.insert(
                text, llm_response.text, context=context, embedding=decision.embedding
            )
        return ClientQueryResult(
            query=text,
            response=llm_response.text,
            from_cache=False,
            decision=decision,
            llm_latency_s=llm_response.latency_s,
            cache_overhead_s=decision.total_overhead_s,
            cost_usd=llm_response.cost_usd,
        )

    # ------------------------------------------------------------------ #
    def new_conversation(self) -> None:
        """Explicitly start a fresh conversation (clears the context chain)."""
        self.conversation.reset()

    @property
    def hit_rate(self) -> float:
        """Fraction of this client's queries served from the local cache."""
        if not self.results:
            return 0.0
        return sum(r.from_cache for r in self.results) / len(self.results)

    @property
    def total_cost_usd(self) -> float:
        """Total simulated spend on the LLM service."""
        return float(sum(r.cost_usd for r in self.results))

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency across all queries."""
        if not self.results:
            return 0.0
        return float(sum(r.total_latency_s for r in self.results) / len(self.results))
