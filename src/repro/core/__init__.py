"""MeanCache core: the paper's primary contribution.

* :mod:`repro.core.storage` — persistent and in-memory key-value stores
  (DiskCache replacement) with size accounting.
* :mod:`repro.core.policy` — cache eviction policies (LRU / LFU / FIFO).
* :mod:`repro.core.context` — context-chain representation and matching.
* :mod:`repro.core.cache` — :class:`MeanCache` implementing Algorithm 1:
  embedding-based semantic matching with an adaptive cosine threshold,
  context-chain verification and PCA-compressed embeddings.
* :mod:`repro.core.pipeline` — the shared composable lookup pipeline
  (Embed → Retrieve → Threshold → ContextVerify → Decide → Enroll/Evict)
  every cache variant runs on.
* :mod:`repro.core.tiered` — :class:`TieredCache`: a small exact L1 over a
  large (optionally shared) quantized L2 with promotion/demotion and
  crash-safe delta-logged snapshots.
* :mod:`repro.core.compression` — cache-level embedding compression utility.
* :mod:`repro.core.client` — :class:`MeanCacheClient`, the end-user session
  that wires a local MeanCache to the (simulated) LLM web service.
"""

from repro.core.cache import MeanCache, MeanCacheConfig, CacheDecision, CacheEntry
from repro.core.client import MeanCacheClient, ClientQueryResult
from repro.core.compression import compress_cache, CompressionReport
from repro.core.context import ContextChain, context_matches
from repro.core.pipeline import LookupPipeline, Probe, Selection
from repro.core.policy import LRUPolicy, LFUPolicy, FIFOPolicy, make_policy
from repro.core.storage import InMemoryStore, DiskStore
from repro.core.tiered import QuantizedTier, TierEntry, TieredCache

__all__ = [
    "MeanCache",
    "MeanCacheConfig",
    "CacheDecision",
    "CacheEntry",
    "MeanCacheClient",
    "ClientQueryResult",
    "ContextChain",
    "context_matches",
    "LookupPipeline",
    "Probe",
    "Selection",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "make_policy",
    "InMemoryStore",
    "DiskStore",
    "compress_cache",
    "CompressionReport",
    "QuantizedTier",
    "TierEntry",
    "TieredCache",
]
