"""MeanCache: the user-side semantic cache (paper Algorithm 1 + Figure 1).

A :class:`MeanCache` instance lives on the user's device.  Each cached entry
holds the query text, its response, its (optionally PCA-compressed) embedding
and its context chain.  On a lookup the cache:

1. embeds the query with the (FL-fine-tuned) local encoder,
2. retrieves the top-k most similar cached queries by cosine similarity from
   the incremental vector index (:class:`repro.index.FlatIndex`),
3. keeps candidates scoring at least the adaptive threshold τ,
4. verifies each surviving candidate's context chain against the probe's
   conversational history,
5. returns the best matching entry's response (hit) or reports a miss so the
   caller forwards the query to the LLM service and enrols the new
   (query, response) pair.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.clock import Clock, WALL_CLOCK
from repro.core.context import ContextChain
from repro.core.pipeline import (
    CapacityEnroll,
    ChainContextVerify,
    DecideStage,
    EncoderEmbed,
    IndexRetrieve,
    LookupPipeline,
    Probe,
    Selection,
    SimilarityThreshold,
)
from repro.core.policy import EvictionPolicy, make_policy
from repro.core.storage import BaseStore, object_nbytes
from repro.core.validation import require_query_text, require_query_texts
from repro.embeddings.model import SiameseEncoder
from repro.index import IndexHit, VectorIndex
from repro.index.registry import resolve_index, validate_backend
from repro.index.snapshot import (
    SnapshotError,
    atomic_snapshot_dir,
    load_index,
    read_arrays,
    read_manifest,
    write_arrays,
    write_manifest,
)

#: Snapshot format tag / version of ``MeanCache.save`` directories.
#: Version 2 writes atomically (staged + renamed), stores arrays as raw
#: per-array ``.npy`` files and persists embeddings at the index's native
#: dtype; version 1 (in-place npz, float64) snapshots are still readable.
MEANCACHE_FORMAT = "repro-meancache"
MEANCACHE_VERSION = 2


@dataclass(frozen=True)
class MeanCacheConfig:
    """MeanCache behaviour knobs.

    Attributes
    ----------
    similarity_threshold:
        The adaptive cosine threshold τ (learned via FL; 0.7 is GPTCache's
        fixed default and serves as the cold-start value).
    context_threshold:
        Cosine threshold used when comparing context-chain embeddings.
    top_k:
        Number of similar cached queries retrieved per lookup (Algorithm 1
        examines each candidate's context chain).
    verify_context:
        Toggle for the context-chain check (the ablation switch; GPTCache
        corresponds to ``False``).
    max_entries:
        Cache capacity; inserting beyond it evicts per ``eviction_policy``.
    eviction_policy:
        ``"lru"``, ``"lfu"`` or ``"fifo"``.
    compressed:
        Whether embeddings stored in the cache are PCA-compressed (the
        encoder must have a PCA head attached).
    index_backend:
        Vector-index backend name resolved through
        :func:`repro.index.make_index` — ``"flat"`` (exact, the default),
        ``"ivf"`` or ``"lsh"`` (sublinear approximate search for large
        caches; see ``docs/api.md`` for the choosing guide).
    index_params:
        Extra keyword parameters for the backend constructor (e.g.
        ``{"nprobe": 16}`` for IVF).
    early_stop_margin:
        When set (e.g. ``0.05``) and the index backend advertises
        ``supports_stop_score``, lookups pass ``stop_score = τ + margin``
        so the scan may stop once a confidently-admissible candidate is in
        hand.  ``None`` (the default) keeps retrieval exhaustive.
    """

    similarity_threshold: float = 0.7
    context_threshold: float = 0.7
    top_k: int = 5
    verify_context: bool = True
    max_entries: int = 100_000
    eviction_policy: str = "lru"
    compressed: bool = False
    index_backend: str = "flat"
    index_params: Optional[Mapping[str, object]] = None
    early_stop_margin: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if not 0.0 <= self.context_threshold <= 1.0:
            raise ValueError("context_threshold must be in [0, 1]")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if self.early_stop_margin is not None and self.early_stop_margin < 0:
            raise ValueError("early_stop_margin must be >= 0 when set")
        validate_backend(self.index_backend)


@dataclass
class CacheEntry:
    """One cached (query, response) pair with its embedding and context."""

    query: str
    response: str
    embedding: np.ndarray
    context: ContextChain
    entry_id: int
    created_at: float = 0.0
    last_accessed: float = 0.0
    hit_count: int = 0

    def nbytes(self) -> int:
        """Approximate storage footprint of the entry."""
        return (
            object_nbytes(self.query)
            + object_nbytes(self.response)
            + int(self.embedding.nbytes)
            + (int(self.context.embedding.nbytes) if self.context.embedding is not None else 0)
            + sum(object_nbytes(t) for t in self.context.texts)
        )


@dataclass
class CacheDecision:
    """The outcome of one lookup.

    For decisions produced by :meth:`MeanCache.lookup_batch`, ``embed_time_s``
    and ``search_time_s`` are the batch's wall-clock cost divided evenly over
    its queries (the whole batch is embedded and searched in one call).
    """

    hit: bool
    query: str
    response: Optional[str] = None
    matched_query: Optional[str] = None
    #: query text of the top *retrieved* candidate (set on misses too, when
    #: anything was retrieved) — the online adaptation loop verifies
    #: near-threshold misses against it
    top_candidate_query: Optional[str] = None
    entry_id: Optional[int] = None
    similarity: float = 0.0
    candidates: List[IndexHit] = field(default_factory=list)
    context_verified: bool = False
    embed_time_s: float = 0.0
    search_time_s: float = 0.0
    #: the probe's embedding from the lookup's Embed stage; pass it to
    #: ``insert``/``enroll`` on a miss to skip a second encoder forward.
    embedding: Optional[np.ndarray] = None

    @property
    def total_overhead_s(self) -> float:
        """Embedding plus search wall-clock overhead of the lookup."""
        return self.embed_time_s + self.search_time_s


@dataclass
class CacheStats:
    """Running counters of cache activity."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class MeanCache:
    """The user-centric semantic cache."""

    def __init__(
        self,
        encoder: SiameseEncoder,
        config: Optional[MeanCacheConfig] = None,
        store: Optional[BaseStore] = None,
        index: Optional[VectorIndex] = None,
        clock: Clock = WALL_CLOCK,
    ) -> None:
        self.encoder = encoder
        #: Time source for entry ``created_at``/``last_accessed`` stamps.
        #: Production keeps wall time; the simulator injects a virtual
        #: event clock (see repro.core.clock) so TTL/recency state is
        #: independent of wall speed and processing order.
        self.clock: Clock = clock
        self.config = config or MeanCacheConfig()
        if self.config.compressed and encoder.pca is None:
            raise ValueError(
                "config.compressed=True requires an encoder with a PCA head attached"
            )
        self.store = store
        self._entries: Dict[int, CacheEntry] = {}  # entry_id -> entry, insertion order
        # An explicit (empty) ``index`` instance wins over the config's
        # backend name — see resolve_index for the shared invariant.
        self._index = resolve_index(
            index, self.config.index_backend, self.config.index_params
        )
        self._policy: EvictionPolicy = make_policy(self.config.eviction_policy)
        self._next_id = 0
        self.stats = CacheStats()
        self.pipeline = self._build_pipeline()

    def _build_pipeline(self) -> LookupPipeline:
        """Assemble the shared lookup pipeline from MeanCache's stages.

        Knobs that can change after construction (τ is re-learned via
        :meth:`set_threshold`) are passed as live callables.
        """
        context_verify = ChainContextVerify(
            embed_context=self._embed_context,
            entry_context=lambda entry_id: self._entries[entry_id].context,
            threshold=lambda: self.config.context_threshold,
            enabled=lambda: self.config.verify_context,
        )
        return LookupPipeline(
            embed=EncoderEmbed(self.encoder, compress=lambda: self.config.compressed),
            retrieve=IndexRetrieve(
                self._index,
                top_k=lambda: self.config.top_k,
                threshold=lambda: self.config.similarity_threshold,
                early_stop_margin=self.config.early_stop_margin,
            ),
            threshold=SimilarityThreshold(lambda: self.config.similarity_threshold),
            context_verify=context_verify,
            decide=_MeanCacheDecide(self),
            enroll=CapacityEnroll(
                size=lambda: len(self._entries),
                max_entries=lambda: self.config.max_entries,
                evict_one=self._evict_one,
                insert=self.insert,
            ),
        )

    def set_clock(self, clock: Clock) -> None:
        """Swap the timestamp source (used by simulation wiring).

        Existing entry stamps are left untouched; only future
        ``created_at``/``last_accessed`` writes read the new clock.
        """
        self.clock = clock

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[CacheEntry]:
        """The live cache entries (insertion order)."""
        return list(self._entries.values())

    @property
    def index(self) -> VectorIndex:
        """The vector index holding the cached query embeddings.

        Concrete type depends on ``config.index_backend`` (or the instance
        passed at construction): :class:`~repro.index.FlatIndex` by default.
        """
        return self._index

    @property
    def embedding_dim(self) -> int:
        """Dimensionality of stored embeddings."""
        return self.encoder.embedding_dim

    def embedding_storage_bytes(self) -> int:
        """Bytes used by cached query embeddings (the Fig. 10a quantity).

        Counts the embeddings the entries store (float64 for a live-built
        cache, the index's native dtype after a snapshot reload) plus the
        context-chain embeddings.  The index's float32 search matrix is a
        separate structure; inspect ``cache.index.nbytes`` for its
        footprint.
        """
        return sum(
            int(e.embedding.nbytes)
            + (int(e.context.embedding.nbytes) if e.context.embedding is not None else 0)
            for e in self._entries.values()
        )

    def total_storage_bytes(self) -> int:
        """Bytes used by the whole cache (texts + responses + embeddings)."""
        return sum(entry.nbytes() for entry in self._entries.values())

    # ------------------------------------------------------------------ #
    # Embedding helpers
    # ------------------------------------------------------------------ #
    def embed(self, text: str) -> Tuple[np.ndarray, float]:
        """Embed a query, returning (embedding, wall-clock seconds)."""
        start = time.perf_counter()
        emb = self.encoder.encode(text, compress=self.config.compressed)
        elapsed = time.perf_counter() - start
        return np.asarray(emb, dtype=np.float64), elapsed

    def _embed_context(self, context: Sequence[str]) -> ContextChain:
        if not context:
            return ContextChain.empty()
        return ContextChain.from_texts(context, encoder=_ContextEncoderProxy(self))

    # ------------------------------------------------------------------ #
    # Lookup (Algorithm 1, lines 1-7)
    # ------------------------------------------------------------------ #
    def lookup(self, query: str, context: Sequence[str] = ()) -> CacheDecision:
        """Decide hit/miss for ``query`` under conversational ``context``.

        A single-probe run of the shared lookup pipeline
        (Embed → Retrieve → Threshold → ContextVerify → Decide).
        """
        require_query_text(query)
        self.stats.lookups += 1
        return self.pipeline.run_one(query, context)

    def lookup_batch(
        self,
        queries: Sequence[str],
        contexts: Optional[Sequence[Sequence[str]]] = None,
        embeddings: Optional[np.ndarray] = None,
    ) -> List[CacheDecision]:
        """Decide hit/miss for a whole batch of queries in one vectorized pass.

        Equivalent to calling :meth:`lookup` on each query in order (the same
        candidates, thresholding, context verification and stats/eviction
        bookkeeping), but the *queries* are embedded with **one** encoder
        call and searched with **one** matmul against the index, so per-query
        overhead amortizes across the batch.  Context chains, when probes
        carry them, are still embedded per probe — and only for probes whose
        best candidate clears τ and needs verification.
        ``embed_time_s``/``search_time_s`` on the returned decisions are the
        batch cost split evenly per query.

        Parameters
        ----------
        queries:
            The probe queries (each a non-empty string).
        contexts:
            Optional per-query conversational contexts, aligned with
            ``queries``; ``None`` means every probe is standalone.
        embeddings:
            Optional precomputed probe embeddings (one row per query,
            encoded with this cache's encoder and compression setting) —
            the serving micro-batcher's amortization hook: one cross-user
            encoder call upstream, no per-cache re-encode here.

        Returns
        -------
        One :class:`CacheDecision` per query, in input order.
        """
        queries = require_query_texts(queries)
        if contexts is not None and len(contexts) != len(queries):
            raise ValueError("contexts must align with queries")
        if not queries:
            return []
        self.stats.lookups += len(queries)
        probes = [
            Probe.make(query, contexts[i] if contexts is not None else ())
            for i, query in enumerate(queries)
        ]
        if embeddings is not None:
            embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        return self.pipeline.run(probes, reprs=embeddings)

    # ------------------------------------------------------------------ #
    # Insertion (Algorithm 1, line 9) and eviction
    # ------------------------------------------------------------------ #
    def insert(
        self,
        query: str,
        response: str,
        context: "Sequence[str] | ContextChain" = (),
        embedding: Optional[np.ndarray] = None,
    ) -> int:
        """Enrol a (query, response) pair; returns the new entry id.

        ``context`` may be a sequence of parent-query texts (embedded here)
        or an already-embedded :class:`ContextChain` — the tiered cache's
        promotion/demotion path hands chains across tiers without paying a
        re-encode.
        """
        require_query_text(query)
        if embedding is None:
            embedding, _ = self.embed(query)
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        if self._index.dim is not None and embedding.shape[0] != self._index.dim:
            raise ValueError(
                f"embedding dim {embedding.shape[0]} does not match cache dim "
                f"{self._index.dim}"
            )

        self.pipeline.enroll.ensure_capacity()

        entry = CacheEntry(
            query=query,
            response=response,
            embedding=embedding,
            context=(
                context
                if isinstance(context, ContextChain)
                else self._embed_context(context)
            ),
            entry_id=self._next_id,
            created_at=self.clock(),
            last_accessed=self.clock(),
        )
        self._next_id += 1
        self._entries[entry.entry_id] = entry
        self._index.add(embedding, id=entry.entry_id)
        self._policy.record_insert(entry.entry_id)
        self.stats.insertions += 1
        if self.store is not None:
            self.store.set(
                f"entry:{entry.entry_id}",
                {
                    "query": query,
                    "response": response,
                    "embedding": embedding,
                    "context": list(entry.context.texts),
                },
            )
        return entry.entry_id

    def _evict_one(self) -> None:
        victim_id = self._policy.select_victim()
        self.remove(victim_id)
        self.stats.evictions += 1

    def remove(self, entry_id: int) -> None:
        """Remove a cache entry by id (O(d): the index swap-deletes its row)."""
        if entry_id not in self._entries:
            raise KeyError(f"no cache entry with id {entry_id}")
        del self._entries[entry_id]
        self._index.remove(entry_id)
        self._policy.record_remove(entry_id)
        if self.store is not None and f"entry:{entry_id}" in self.store:
            self.store.delete(f"entry:{entry_id}")

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
        self._index.clear()
        self._policy = make_policy(self.config.eviction_policy)
        if self.store is not None:
            self.store.clear()

    # ------------------------------------------------------------------ #
    # Bulk / maintenance operations
    # ------------------------------------------------------------------ #
    def populate(
        self,
        queries: Sequence[str],
        responses: Optional[Sequence[str]] = None,
        contexts: Optional[Sequence[Sequence[str]]] = None,
    ) -> List[int]:
        """Insert many queries at once (used to pre-load experiment caches).

        The whole batch is embedded with a single encoder call; each entry is
        then enrolled through :meth:`insert` (one O(1) index append apiece),
        so pre-loading n queries costs one encode plus O(n) appends instead
        of the seed's O(n²) matrix rebuilds.
        """
        if responses is not None and len(responses) != len(queries):
            raise ValueError("responses must align with queries")
        if contexts is not None and len(contexts) != len(queries):
            raise ValueError("contexts must align with queries")
        queries = require_query_texts(queries)
        if not queries:
            return []
        embeddings = np.atleast_2d(
            np.asarray(
                self.encoder.encode(queries, compress=self.config.compressed),
                dtype=np.float64,
            )
        )
        ids: List[int] = []
        for i, query in enumerate(queries):
            response = responses[i] if responses is not None else f"cached response for: {query}"
            context = contexts[i] if contexts is not None else ()
            ids.append(self.insert(query, response, context=context, embedding=embeddings[i]))
        return ids

    def rebuild_embeddings(self) -> None:
        """Re-embed every cached query with the current encoder state.

        Called after the encoder is fine-tuned by FL or after a PCA head is
        attached/detached, so stored embeddings stay consistent with the
        encoder used for probes.
        """
        if not self._entries:
            self._index.clear(reset_ids=False)
            return
        live = list(self._entries.values())
        texts = [e.query for e in live]
        embs = self.encoder.encode(texts, compress=self.config.compressed)
        embs = np.atleast_2d(np.asarray(embs, dtype=np.float64))
        self._index.rebuild(embs, ids=[e.entry_id for e in live])
        for i, entry in enumerate(live):
            entry.embedding = embs[i]
            if not entry.context.is_empty:
                entry.context = self._embed_context(list(entry.context.texts))

    def maintenance(self) -> None:
        """Off-query-path upkeep: delegate to the index's maintenance hook.

        The serving scheduler calls this between batching windows; subclasses
        and wrappers (e.g. the tiered cache) extend it with their own
        background work such as delta-log compaction.
        """
        maintain = getattr(self._index, "maintenance", None)
        if maintain is not None:
            maintain()

    def set_threshold(self, threshold: float) -> None:
        """Update the adaptive similarity threshold τ.

        The live hook the federated layer drives: offline FL
        (:mod:`repro.federated.simulation`) pushes the round's aggregated τ
        here, and the online fleet loop
        (:class:`~repro.federated.online.OnlineThresholdAdapter`) pushes each
        user's personalized τ between batching windows.  The pipeline's
        :class:`~repro.core.pipeline.SimilarityThreshold` stage reads the
        config live, so the next lookup already admits under the new value.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        # MeanCacheConfig is frozen; replace it wholesale.
        self.config = replace(self.config, similarity_threshold=threshold)

    # ------------------------------------------------------------------ #
    # Persistence (versioned, atomically-published snapshot directory)
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Path") -> Path:
        """Snapshot the whole cache state to a directory, atomically.

        The snapshot holds ``manifest.json`` (config, stats, eviction-policy
        state, next entry id), ``entries.json`` (texts and per-entry
        metadata), ``arrays/`` (entry and context-chain embeddings, stored at
        the index's native dtype so snapshot bytes agree with the restored
        in-memory size) and an ``index/`` subdirectory with the vector
        index's own snapshot.  The whole directory is staged in a ``tmp-``
        sibling and published with one atomic rename: a crash mid-save
        leaves the previous snapshot generation untouched, and files the new
        generation does not write (stale delta logs, larger prior arrays)
        cannot survive into it.  :meth:`load` rebuilds a cache whose lookup
        decisions are byte-identical to this one's.  The encoder is *not*
        serialized — model weights are distributed by the FL pipeline, so
        ``load`` takes the encoder as an argument.
        """
        path = Path(path)
        entries = list(self._entries.values())
        meta = [
            {
                "entry_id": int(e.entry_id),
                "query": e.query,
                "response": e.response,
                "context": list(e.context.texts),
                "created_at": float(e.created_at),
                "last_accessed": float(e.last_accessed),
                "hit_count": int(e.hit_count),
            }
            for e in entries
        ]
        dim = entries[0].embedding.shape[0] if entries else (self._index.dim or 0)
        native = np.dtype(getattr(self._index, "dtype", np.float32))
        if native.kind != "f":
            native = np.dtype(np.float32)
        embeddings = (
            np.stack([e.embedding for e in entries]).astype(native, copy=False)
            if entries
            else np.zeros((0, dim), dtype=native)
        )
        ctx_ids = [int(e.entry_id) for e in entries if e.context.embedding is not None]
        ctx_embeddings = (
            np.stack(
                [e.context.embedding for e in entries if e.context.embedding is not None]
            ).astype(native, copy=False)
            if ctx_ids
            else np.zeros((0, dim), dtype=native)
        )
        arrays = {
            "embeddings": embeddings,
            "entry_ids": np.asarray(
                [int(e.entry_id) for e in entries], dtype=np.int64
            ),
            "ctx_entry_ids": np.asarray(ctx_ids, dtype=np.int64),
            "ctx_embeddings": ctx_embeddings,
        }
        config = asdict(self.config)
        config["index_params"] = (
            dict(self.config.index_params) if self.config.index_params else None
        )
        with atomic_snapshot_dir(path) as stage:
            (stage / "entries.json").write_text(
                json.dumps(meta, indent=1) + "\n", encoding="utf-8"
            )
            write_arrays(stage, arrays)
            self._index.save(stage / "index")
            write_manifest(
                stage,
                {
                    "format": MEANCACHE_FORMAT,
                    "version": MEANCACHE_VERSION,
                    "config": config,
                    "next_id": int(self._next_id),
                    "stats": asdict(self.stats),
                    "policy": {
                        "name": self.config.eviction_policy,
                        "state": self._policy.state_dict(),
                    },
                    "embedding_dim": int(dim) if dim else None,
                    "arrays": sorted(arrays),
                },
            )
        return path

    @classmethod
    def load(
        cls,
        path: "str | Path",
        encoder: SiameseEncoder,
        store: Optional[BaseStore] = None,
    ) -> "MeanCache":
        """Rebuild a cache from a :meth:`save` snapshot.

        ``encoder`` must be configured like the saved cache's encoder (same
        weights, and a PCA head attached when the saved config used
        ``compressed=True``) for lookups to reproduce the saved decisions.
        Raises :class:`~repro.index.SnapshotError` for missing, corrupted,
        foreign-format or future-version snapshots.
        """
        path = Path(path)
        manifest = read_manifest(path, MEANCACHE_FORMAT, MEANCACHE_VERSION)
        try:
            config = MeanCacheConfig(**manifest["config"])
            next_id = int(manifest["next_id"])
            stats = CacheStats(**manifest["stats"])
            policy_name = manifest["policy"]["name"]
            policy_state = manifest["policy"]["state"]
        except (KeyError, TypeError, ValueError) as exc:
            # Keep the documented exception contract: a manifest whose
            # format/version pass but whose payload is truncated or renamed
            # is still a corrupted snapshot, not a caller bug.
            raise SnapshotError(
                f"snapshot at {path} has a corrupted manifest payload: {exc}"
            ) from exc
        cache = cls(encoder, config, store=store)
        cache._index = load_index(path / "index")
        saved_dim = manifest.get("embedding_dim")
        if (
            saved_dim is not None
            and cache._index.dim is not None
            and int(saved_dim) != int(cache._index.dim)
        ):
            raise SnapshotError(
                f"snapshot at {path} is inconsistent: manifest embedding_dim "
                f"{saved_dim} vs index dim {cache._index.dim}"
            )
        # The pipeline's retrieve stage captured the constructor-built index;
        # rebuild it over the loaded one.
        cache.pipeline = cache._build_pipeline()
        try:
            meta = json.loads((path / "entries.json").read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise SnapshotError(f"snapshot at {path} has no entries.json") from exc
        expected = manifest.get("arrays")
        data = read_arrays(
            path, expected=expected if isinstance(expected, list) else None
        )
        # Keep the stored dtype: version-2 snapshots persist at the index's
        # native dtype, so the restored in-memory footprint matches the
        # on-disk bytes instead of silently doubling back to float64.
        embeddings = np.asarray(data["embeddings"])
        entry_ids = [int(i) for i in np.asarray(data["entry_ids"])]
        ctx_embedding_of = {
            int(i): np.asarray(emb)
            for i, emb in zip(
                np.asarray(data["ctx_entry_ids"]), np.asarray(data["ctx_embeddings"])
            )
        }
        if len(meta) != len(entry_ids):
            raise SnapshotError(
                f"snapshot at {path} is inconsistent: {len(meta)} entry records "
                f"vs {len(entry_ids)} embeddings"
            )
        entries: Dict[int, CacheEntry] = {}
        for record, entry_id, embedding in zip(meta, entry_ids, embeddings):
            if int(record["entry_id"]) != entry_id:
                raise SnapshotError(
                    f"snapshot at {path} is inconsistent: entries.json and "
                    "the embedding arrays disagree on entry ids"
                )
            entries[entry_id] = CacheEntry(
                query=record["query"],
                response=record["response"],
                embedding=embedding,
                context=ContextChain(
                    texts=tuple(record["context"]),
                    embedding=ctx_embedding_of.get(entry_id),
                ),
                entry_id=entry_id,
                created_at=float(record["created_at"]),
                last_accessed=float(record["last_accessed"]),
                hit_count=int(record["hit_count"]),
            )
        if set(entries) != set(cache._index.ids):
            raise SnapshotError(
                f"snapshot at {path} is inconsistent: entry ids and index ids differ"
            )
        cache._entries = entries
        cache._next_id = next_id
        cache.stats = stats
        cache._policy = make_policy(policy_name)
        cache._policy.load_state_dict(policy_state)
        if store is not None:
            # Backfill the write-through mirror so external store readers
            # see the same entries the cache serves (insert() mirrors every
            # later entry the same way).
            for entry in entries.values():
                store.set(
                    f"entry:{entry.entry_id}",
                    {
                        "query": entry.query,
                        "response": entry.response,
                        "embedding": entry.embedding,
                        "context": list(entry.context.texts),
                    },
                )
        return cache


class _MeanCacheDecide(DecideStage):
    """Decide stage: build the :class:`CacheDecision` and account for it.

    Bookkeeping on a hit (entry hit counters, eviction-policy access
    recording) matches Algorithm 1's cache-side effects; miss/hit counters
    land in :attr:`MeanCache.stats`.
    """

    def __init__(self, cache: "MeanCache") -> None:
        self._cache = cache

    def decide(self, selection: Selection) -> CacheDecision:
        cache = self._cache
        top_query = (
            cache._entries[selection.hits[0].id].query if selection.hits else None
        )
        if selection.best is None:
            cache.stats.misses += 1
            return CacheDecision(
                hit=False,
                query=selection.probe.query,
                top_candidate_query=top_query,
                candidates=selection.hits,
                similarity=selection.top_score,
                context_verified=selection.context_checked,
                embed_time_s=selection.embed_time_s,
                search_time_s=selection.search_time_s,
                embedding=selection.embedding,
            )
        entry = cache._entries[selection.best.id]
        entry.hit_count += 1
        entry.last_accessed = cache.clock()
        cache._policy.record_access(entry.entry_id)
        cache.stats.hits += 1
        return CacheDecision(
            hit=True,
            query=selection.probe.query,
            response=entry.response,
            matched_query=entry.query,
            top_candidate_query=top_query,
            entry_id=entry.entry_id,
            similarity=selection.best.score,
            candidates=selection.hits,
            context_verified=selection.context_checked,
            embed_time_s=selection.embed_time_s,
            search_time_s=selection.search_time_s,
            embedding=selection.embedding,
        )


class _ContextEncoderProxy:
    """Adapter exposing ``encode`` honouring the cache's compression setting."""

    def __init__(self, cache: MeanCache) -> None:
        self._cache = cache

    def encode(self, texts):
        return self._cache.encoder.encode(texts, compress=self._cache.config.compressed)
