"""Context-chain representation and matching.

MeanCache records, for each cached query, the chain of parent queries under
which it was asked (paper Figure 1's "Query Context Chain" column).  When a
new query semantically matches a cached query, the cache additionally verifies
that the *contexts* match before declaring a hit (Algorithm 1, lines 4–6):

* a standalone probe only matches cached entries that are themselves
  standalone;
* a contextual probe (non-empty conversational history) only matches cached
  entries whose context chain is semantically similar to the probe's history.

Context similarity is computed on embeddings of the chain (mean of the parent
query embeddings), so paraphrased parents still match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.similarity import cosine_similarity


@dataclass(frozen=True)
class ContextChain:
    """A query's conversational history (parent queries, oldest first)."""

    texts: Tuple[str, ...] = ()
    embedding: Optional[np.ndarray] = None

    @property
    def is_empty(self) -> bool:
        """True for standalone queries."""
        return len(self.texts) == 0

    @property
    def depth(self) -> int:
        """Number of parent queries in the chain."""
        return len(self.texts)

    @classmethod
    def empty(cls) -> "ContextChain":
        """The standalone (no-context) chain."""
        return cls(texts=(), embedding=None)

    @classmethod
    def from_texts(cls, texts: Sequence[str], encoder=None) -> "ContextChain":
        """Build a chain, embedding it with ``encoder`` when provided.

        The chain embedding is the mean of the parent-query embeddings,
        re-normalised to unit norm.
        """
        texts = tuple(t for t in texts if t)
        embedding = None
        if encoder is not None and texts:
            embs = encoder.encode(list(texts))
            embs = np.atleast_2d(embs)
            mean = embs.mean(axis=0)
            norm = np.linalg.norm(mean)
            embedding = mean / norm if norm > 1e-12 else mean
        return cls(texts=texts, embedding=embedding)

    def similarity_to(self, other: "ContextChain") -> float:
        """Cosine similarity between two chain embeddings.

        Returns 1.0 when both chains are empty, 0.0 when exactly one is empty
        or an embedding is missing.
        """
        if self.is_empty and other.is_empty:
            return 1.0
        if self.is_empty != other.is_empty:
            return 0.0
        if self.embedding is None or other.embedding is None:
            return 0.0
        return float(cosine_similarity(self.embedding, other.embedding))


def context_matches(
    query_context: ContextChain,
    cached_context: ContextChain,
    threshold: float = 0.7,
) -> bool:
    """Decide whether two context chains refer to the same conversation state.

    Standalone matches standalone; contextual matches contextual only when the
    chain-embedding similarity reaches ``threshold``.
    """
    if query_context.is_empty and cached_context.is_empty:
        return True
    if query_context.is_empty != cached_context.is_empty:
        return False
    return query_context.similarity_to(cached_context) >= threshold
