"""Tiered L1/L2 cache hierarchy: exact hot tier over a shared quantized tier.

The paper's fleet of per-user semantic caches reaches production scale
(10^5–10^6 users, 10^6–10^7 total entries — ROADMAP open items 1 and 2) only
if most entries live in a compact representation while the hot working set
keeps exact-search quality.  :class:`TieredCache` composes the two existing
building blocks into that memory hierarchy:

* **L1** — a small exact per-user :class:`~repro.core.cache.MeanCache` over a
  flat float index, running the full lookup pipeline (Embed → Retrieve →
  Threshold → ContextVerify → Decide).  Hot entries live here at full
  precision.
* **L2** — a large :class:`QuantizedTier` over a quantized index (``sq8``,
  ``pq`` or ``ivf+sq8``): per-entry storage is the code row (e.g. 1 byte per
  dimension for sq8) instead of a float64 embedding plus a float32 index row.
  One ``QuantizedTier`` may be **shared** by many ``TieredCache`` instances —
  the :class:`~repro.serving.server.CacheServer` slots a ``TieredCache`` in
  as the shard-local cache with the quantized tier shared across shards (the
  tier carries its own lock, exactly like the server's ``_SharedL2`` hook).

Data movement:

* an **L1 miss falls through** to L2: the probe's own embedding (from the
  pipeline's Embed stage) is searched against the quantized rows under the
  same live τ and context-verification rule, so no query is re-encoded;
* an **L2 hit promotes** the entry into L1 (the dequantized vector is
  reconstructed from the code row — again no re-encode);
* an **L1 eviction demotes** the victim into L2, re-using the entry's stored
  embedding.

The tiers are disjoint (promotion removes from L2, demotion removes from
L1), so an entry is scored **at most once per probe** across the hierarchy.
In :meth:`TieredCache.lookup_batch`, promotions are applied only after every
probe in the batch has been matched, so duplicate probes in one batch all
see the entry (decision parity with a single exact cache on duplicate-heavy
traffic — pinned in ``tests/test_tiered.py``).

Persistence: a ``QuantizedTier`` given a ``snapshot_dir`` keeps a crash-safe
snapshot there — full generations written atomically via
:func:`~repro.index.snapshot.atomic_snapshot_dir`, incremental mutations
appended to the snapshot's delta log (:func:`~repro.index.snapshot.append_delta`)
by :meth:`QuantizedTier.flush`, and the log folded back into a full snapshot
by :meth:`QuantizedTier.maintenance` once it grows past ``compact_every``
records.  :meth:`QuantizedTier.load` (``mmap=True``) adopts the code matrix
as a read-only memory map — the zero-copy warm start benchmarked in
``BENCH_index.json``'s ``persistence`` section.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import maybe_tracked_rlock
from repro.core.cache import (
    CacheDecision,
    CacheEntry,
    CacheStats,
    MeanCache,
    MeanCacheConfig,
)
from repro.core.context import ContextChain, context_matches
from repro.core.storage import object_nbytes
from repro.core.validation import require_query_text
from repro.embeddings.model import SiameseEncoder
from repro.index import make_index
from repro.index.snapshot import (
    SnapshotError,
    append_delta,
    atomic_snapshot_dir,
    delta_log_size,
    load_index,
    read_arrays,
    read_deltas,
    read_manifest,
    save_index,
    write_arrays,
    write_manifest,
)

#: Snapshot format tags of the tiered cache and its quantized tier.
TIERED_FORMAT = "repro-tiered"
TIERED_VERSION = 1
TIER_FORMAT = "repro-tiered-l2"
TIER_VERSION = 1


@dataclass
class TierEntry:
    """One demoted (query, response) pair resident in the quantized tier.

    Unlike :class:`~repro.core.cache.CacheEntry` there is **no** per-entry
    float embedding: the vector lives only as a code row in the tier's
    quantized index, which is the whole bytes-per-entry win.
    """

    entry_id: int
    query: str
    response: str
    context: ContextChain

    def nbytes(self) -> int:
        """Text + context footprint (the code row is counted by the index)."""
        return (
            object_nbytes(self.query)
            + object_nbytes(self.response)
            + (
                int(self.context.embedding.nbytes)
                if self.context.embedding is not None
                else 0
            )
            + sum(object_nbytes(t) for t in self.context.texts)
        )


class QuantizedTier:
    """The shared L2: texts keyed by id over a quantized vector index.

    Thread-safe behind one re-entrant lock (several shard executors may
    probe a shared tier at once — the same concurrency story as the
    server's ``_SharedL2``).  Capacity is FIFO-bounded when ``max_entries``
    is set; an unbounded tier never drops entries.

    With ``snapshot_dir`` set the tier maintains a crash-safe on-disk
    snapshot: :meth:`flush` appends pending mutations to the snapshot's
    delta log (cost proportional to the delta, never a full rewrite) and
    :meth:`maintenance` folds the log into a fresh full snapshot once it
    exceeds ``compact_every`` records.
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        backend: str = "sq8",
        params: Optional[Mapping[str, object]] = None,
        max_entries: Optional[int] = None,
        snapshot_dir: "str | Path | None" = None,
        compact_every: int = 64,
    ) -> None:
        params = dict(params or {})
        if dim is not None:
            params.setdefault("dim", dim)
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 when set")
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self._backend = backend
        self._params = dict(params)
        self._index = make_index(backend, **params)
        self._entries: Dict[int, TierEntry] = {}  # id -> entry, FIFO order
        self._next_id = 0
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.lock = maybe_tracked_rlock("tier.l2")
        self.snapshot_dir: Optional[Path] = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )
        self.compact_every = int(compact_every)
        # Mutations since the last flush; one delta record commits them all.
        self._pending_ids: List[int] = []
        self._pending_vectors: List[np.ndarray] = []
        self._pending_meta: List[Dict[str, object]] = []
        self._pending_removed: List[int] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: int) -> bool:
        return int(entry_id) in self._entries

    @property
    def index(self):
        """The quantized vector index holding the tier's code rows."""
        return self._index

    @property
    def entries(self) -> List[TierEntry]:
        """Live tier entries in FIFO (insertion) order."""
        return list(self._entries.values())

    def entry(self, entry_id: int) -> TierEntry:
        """The tier entry for ``entry_id`` (KeyError when absent)."""
        return self._entries[int(entry_id)]

    def embedding_storage_bytes(self) -> int:
        """Bytes of vector state: code rows + codec/routing + ctx chains."""
        with self.lock:
            total = int(self._index.nbytes)
            total += int(getattr(self._index, "codec_nbytes", 0))
            total += int(getattr(self._index, "routing_nbytes", 0))
            total += sum(
                int(e.context.embedding.nbytes)
                for e in self._entries.values()
                if e.context.embedding is not None
            )
            return total

    def total_storage_bytes(self) -> int:
        """Bytes of the whole tier (texts + contexts + index payload)."""
        with self.lock:
            return self.embedding_storage_bytes() + sum(
                object_nbytes(e.query)
                + object_nbytes(e.response)
                + sum(object_nbytes(t) for t in e.context.texts)
                for e in self._entries.values()
            )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(
        self,
        query: str,
        response: str,
        embedding: np.ndarray,
        context: Optional[ContextChain] = None,
    ) -> int:
        """Enrol a demoted entry; quantizes ``embedding`` into the index.

        Returns the tier-local entry id (a namespace separate from any L1's
        entry ids).  Inserting past ``max_entries`` drops the oldest entry
        first (FIFO) and counts an eviction.
        """
        require_query_text(query)
        context = context if context is not None else ContextChain.empty()
        # float32 up front: the delta log persists float32 rows, so feeding
        # the index the same bits keeps replayed scores byte-identical.
        vector = np.asarray(embedding, dtype=np.float32).reshape(-1)
        with self.lock:
            if self.max_entries is not None:
                while len(self._entries) >= self.max_entries:
                    oldest = next(iter(self._entries))
                    self._remove_locked(oldest)
                    self.stats.evictions += 1
            entry_id = self._next_id
            self._next_id += 1
            self._index.add(vector, id=entry_id)
            self._entries[entry_id] = TierEntry(
                entry_id=entry_id, query=query, response=response, context=context
            )
            self.stats.insertions += 1
            if self.snapshot_dir is not None:
                self._pending_ids.append(entry_id)
                self._pending_vectors.append(vector)
                self._pending_meta.append(_tier_entry_record(self._entries[entry_id]))
            return entry_id

    def _remove_locked(self, entry_id: int) -> None:
        del self._entries[entry_id]
        self._index.remove(entry_id)
        if self.snapshot_dir is not None:
            if entry_id in self._pending_ids:
                # Added and removed within one flush window: cancel the add
                # instead of logging a dead row.
                pos = self._pending_ids.index(entry_id)
                del self._pending_ids[pos]
                del self._pending_vectors[pos]
                del self._pending_meta[pos]
            else:
                self._pending_removed.append(entry_id)

    def pop(self, entry_id: int) -> Tuple[TierEntry, np.ndarray]:
        """Remove and return ``(entry, embedding)`` — the promotion path.

        The embedding is reconstructed from the tier's own storage (exact
        while the index is untrained, dequantized after), so promotion never
        re-encodes the query text.
        """
        entry_id = int(entry_id)
        with self.lock:
            entry = self._entries[entry_id]
            embedding = np.asarray(self._index.get(entry_id), dtype=np.float64)
            self._remove_locked(entry_id)
            return entry, embedding

    # ------------------------------------------------------------------ #
    # Lookup (the L1-miss fall-through)
    # ------------------------------------------------------------------ #
    def match(
        self,
        embedding: np.ndarray,
        top_k: int,
        threshold: float,
        probe_context: Optional[Callable[[], ContextChain]] = None,
        context_threshold: float = 0.7,
        verify_context: bool = True,
    ) -> Optional[Tuple[int, float]]:
        """Best admissible candidate for a probe embedding, or ``None``.

        Applies the same decision rule as the L1 pipeline's Threshold +
        ContextVerify stages: candidates are scanned in descending score
        order, must clear ``threshold``, and (when ``verify_context``) must
        match the probe's context chain.  ``probe_context`` is a lazy
        callable so the probe's chain is embedded only when a candidate
        actually needs verification.  Counts one lookup (and a hit or miss)
        on the tier's :class:`~repro.core.cache.CacheStats`.
        """
        with self.lock:
            self.stats.lookups += 1
            if not self._entries:
                self.stats.misses += 1
                return None
            query = np.atleast_2d(np.asarray(embedding, dtype=np.float64))
            hits = self._index.search(query, top_k=top_k)[0]
            chain: Optional[ContextChain] = None
            for hit in hits:
                if hit.score < threshold:
                    break  # descending order: nothing later clears τ
                entry = self._entries.get(hit.id)
                if entry is None:
                    continue
                if verify_context:
                    if chain is None:
                        chain = (
                            probe_context()
                            if probe_context is not None
                            else ContextChain.empty()
                        )
                    if not context_matches(chain, entry.context, context_threshold):
                        continue
                self.stats.hits += 1
                return int(hit.id), float(hit.score)
            self.stats.misses += 1
            return None

    def clear(self) -> None:
        """Drop every entry (pending delta buffers included)."""
        with self.lock:
            self._entries.clear()
            self._index.clear()
            self._pending_ids.clear()
            self._pending_vectors.clear()
            self._pending_meta.clear()
            self._pending_removed.clear()

    # ------------------------------------------------------------------ #
    # Persistence: atomic full snapshots + append-only delta log
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Path") -> Path:
        """Write a full snapshot atomically (discarding any delta log)."""
        path = Path(path)
        with self.lock:
            entries = list(self._entries.values())
            meta = [_tier_entry_record(e, with_ctx_embedding=False) for e in entries]
            ctx_ids = [
                int(e.entry_id) for e in entries if e.context.embedding is not None
            ]
            dim = self._index.dim or 0
            ctx_embeddings = (
                np.stack(
                    [
                        np.asarray(e.context.embedding, dtype=np.float32)
                        for e in entries
                        if e.context.embedding is not None
                    ]
                )
                if ctx_ids
                else np.zeros((0, dim), dtype=np.float32)
            )
            arrays = {
                "ctx_entry_ids": np.asarray(ctx_ids, dtype=np.int64),
                "ctx_embeddings": ctx_embeddings,
            }
            with atomic_snapshot_dir(path) as stage:
                (stage / "entries.json").write_text(
                    json.dumps(meta, indent=1) + "\n", encoding="utf-8"
                )
                write_arrays(stage, arrays)
                save_index(self._index, stage / "index")
                write_manifest(
                    stage,
                    {
                        "format": TIER_FORMAT,
                        "version": TIER_VERSION,
                        "backend": self._backend,
                        "params": dict(self._params),
                        "next_id": int(self._next_id),
                        "max_entries": self.max_entries,
                        "compact_every": self.compact_every,
                        "stats": {
                            "lookups": self.stats.lookups,
                            "hits": self.stats.hits,
                            "misses": self.stats.misses,
                            "insertions": self.stats.insertions,
                            "evictions": self.stats.evictions,
                        },
                        "arrays": sorted(arrays),
                    },
                )
            # The published snapshot captures every pending mutation.
            self._pending_ids.clear()
            self._pending_vectors.clear()
            self._pending_meta.clear()
            self._pending_removed.clear()
        return path

    def flush(self) -> None:
        """Commit pending mutations to the snapshot's delta log.

        Costs O(delta), not O(tier): the vectors land in one per-delta
        ``.npy`` and one JSON line commits them.  The first flush (no
        snapshot on disk yet) writes the full baseline instead.
        """
        if self.snapshot_dir is None:
            return
        with self.lock:
            if not (self.snapshot_dir / "manifest.json").is_file():
                self.save(self.snapshot_dir)
                return
            if not (self._pending_ids or self._pending_removed):
                return
            append_delta(
                self.snapshot_dir,
                vectors=(
                    np.stack(self._pending_vectors) if self._pending_ids else None
                ),
                ids=list(self._pending_ids),
                removed=list(self._pending_removed),
                meta={"entries": list(self._pending_meta)},
            )
            self._pending_ids.clear()
            self._pending_vectors.clear()
            self._pending_meta.clear()
            self._pending_removed.clear()

    def maintenance(self) -> None:
        """Off-query-path upkeep: index maintenance, flush, compaction."""
        with self.lock:
            maintain = getattr(self._index, "maintenance", None)
            if maintain is not None:
                maintain()
            self.flush()
            if self.snapshot_dir is not None and (
                self.snapshot_dir / "manifest.json"
            ).is_file():
                n_records, _rows = delta_log_size(self.snapshot_dir)
                if n_records >= self.compact_every:
                    self.save(self.snapshot_dir)

    @classmethod
    def load(cls, path: "str | Path", mmap: bool = False) -> "QuantizedTier":
        """Rebuild a tier from :meth:`save` plus any delta log on top.

        ``mmap=True`` adopts the snapshot's code matrix as a read-only
        memory map (zero-copy warm start) — replaying a non-empty delta log
        materializes it again, so compacted snapshots restore fastest.  The
        loaded tier keeps ``snapshot_dir = path`` and continues appending
        there; set it to ``None`` to detach.
        """
        path = Path(path)
        manifest = read_manifest(path, TIER_FORMAT, TIER_VERSION)
        try:
            backend = str(manifest["backend"])
            params = dict(manifest.get("params") or {})
            next_id = int(manifest["next_id"])
            max_entries = manifest.get("max_entries")
            compact_every = int(manifest.get("compact_every", 64))
            stats = CacheStats(**manifest.get("stats", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot at {path} has a corrupted manifest payload: {exc}"
            ) from exc
        tier = cls.__new__(cls)
        tier._backend = backend
        tier._params = params
        tier._index = load_index(path / "index", mmap=mmap)
        tier._entries = {}
        tier._next_id = next_id
        tier.max_entries = int(max_entries) if max_entries is not None else None
        tier.stats = stats
        tier.lock = maybe_tracked_rlock("tier.l2")
        tier.snapshot_dir = path
        tier.compact_every = compact_every
        tier._pending_ids = []
        tier._pending_vectors = []
        tier._pending_meta = []
        tier._pending_removed = []
        try:
            meta = json.loads((path / "entries.json").read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise SnapshotError(f"snapshot at {path} has no entries.json") from exc
        expected = manifest.get("arrays")
        data = read_arrays(
            path, expected=expected if isinstance(expected, list) else None
        )
        ctx_embedding_of = {
            int(i): np.asarray(emb)
            for i, emb in zip(
                np.asarray(data["ctx_entry_ids"]), np.asarray(data["ctx_embeddings"])
            )
        }
        for record in meta:
            entry = _tier_entry_from_record(
                record, ctx_embedding_of.get(int(record["entry_id"]))
            )
            tier._entries[entry.entry_id] = entry
        if set(tier._entries) != set(tier._index.ids):
            raise SnapshotError(
                f"snapshot at {path} is inconsistent: entry ids and index ids differ"
            )
        # Replay the delta log (texts from each record's meta, vectors into
        # the index) — mutations committed after the base snapshot.
        for record in read_deltas(path):
            if record.vectors is not None and record.ids:
                tier._index.add_batch(record.vectors, ids=list(record.ids))
            entry_records = (record.meta or {}).get("entries", [])
            for entry_record in entry_records:
                ctx_embedding = entry_record.get("ctx_embedding")
                entry = _tier_entry_from_record(
                    entry_record,
                    np.asarray(ctx_embedding, dtype=np.float32)
                    if ctx_embedding is not None
                    else None,
                )
                tier._entries[entry.entry_id] = entry
            for removed_id in record.removed:
                removed_id = int(removed_id)
                if removed_id in tier._entries:
                    del tier._entries[removed_id]
                    tier._index.remove(removed_id)
            if record.ids:
                tier._next_id = max(tier._next_id, max(record.ids) + 1)
        return tier


def _tier_entry_record(
    entry: TierEntry, with_ctx_embedding: bool = True
) -> Dict[str, object]:
    record: Dict[str, object] = {
        "entry_id": int(entry.entry_id),
        "query": entry.query,
        "response": entry.response,
        "context": list(entry.context.texts),
    }
    if with_ctx_embedding:
        # Delta records are JSON lines; the chain embedding (contextual
        # entries only) rides along as a float list.
        record["ctx_embedding"] = (
            np.asarray(entry.context.embedding, dtype=np.float32).tolist()
            if entry.context.embedding is not None
            else None
        )
    return record


def _tier_entry_from_record(
    record: Mapping[str, object], ctx_embedding: Optional[np.ndarray]
) -> TierEntry:
    texts = tuple(record.get("context") or ())
    return TierEntry(
        entry_id=int(record["entry_id"]),
        query=str(record["query"]),
        response=str(record["response"]),
        context=ContextChain(
            texts=texts,
            embedding=(
                np.asarray(ctx_embedding) if ctx_embedding is not None else None
            ),
        ),
    )


class _L1Cache(MeanCache):
    """MeanCache whose evictions hand the victim to a demotion hook."""

    #: set by the owning TieredCache; receives the full CacheEntry *before*
    #: it leaves L1 (embedding and context chain intact — no re-encode).
    on_evict: Optional[Callable[[CacheEntry], None]] = None

    def _evict_one(self) -> None:
        victim_id = self._policy.select_victim()
        if self.on_evict is not None:
            self.on_evict(self._entries[victim_id])
        self.remove(victim_id)
        self.stats.evictions += 1


class TieredCache:
    """L1 (exact, per-user) over L2 (quantized, optionally shared).

    Drop-in for :class:`~repro.core.cache.MeanCache` wherever the serving
    layer's :class:`~repro.serving.scheduling.CacheAdapter` duck-typing
    reaches: ``lookup_batch(queries, contexts=, embeddings=)``, a
    ``pipeline`` whose enroll stage inserts into L1, ``save``/``load``,
    ``set_threshold`` and ``maintenance``.  Pass a pre-built ``l2`` to share
    one quantized tier across many per-user caches (fleet/server mode); by
    default each instance owns a private tier.
    """

    def __init__(
        self,
        encoder: SiameseEncoder,
        config: Optional[MeanCacheConfig] = None,
        l2: Optional[QuantizedTier] = None,
        l2_backend: str = "sq8",
        l2_params: Optional[Mapping[str, object]] = None,
        l2_max_entries: Optional[int] = None,
        promote_on_hit: bool = True,
        snapshot_dir: "str | Path | None" = None,
        compact_every: int = 64,
    ) -> None:
        """``config`` is the L1's MeanCacheConfig — ``max_entries`` is the
        L1 capacity (its evictions demote rather than drop).  ``l2`` wins
        over the ``l2_*`` knobs when given."""
        self.l1 = _L1Cache(encoder, config)
        self.l1.on_evict = self._demote
        if l2 is None:
            l2 = QuantizedTier(
                backend=l2_backend,
                params=l2_params,
                max_entries=l2_max_entries,
                snapshot_dir=(
                    Path(snapshot_dir) / "l2" if snapshot_dir is not None else None
                ),
                compact_every=compact_every,
            )
        self.l2 = l2
        self.promote_on_hit = bool(promote_on_hit)
        # L2→L1 promotions pass through l1.insert; tracked so the combined
        # stats can report them as movement rather than new insertions.
        self._promotions = 0

    # ------------------------------------------------------------------ #
    # MeanCache-compatible surface
    # ------------------------------------------------------------------ #
    @property
    def encoder(self) -> SiameseEncoder:
        return self.l1.encoder

    @property
    def config(self) -> MeanCacheConfig:
        """The L1 tier's config (τ, context threshold, capacity, …)."""
        return self.l1.config

    @property
    def pipeline(self):
        """The L1 lookup pipeline (its enroll stage inserts into L1)."""
        return self.l1.pipeline

    @property
    def index(self):
        """The L1 tier's exact index."""
        return self.l1.index

    def __len__(self) -> int:
        return len(self.l1) + len(self.l2)

    @property
    def stats(self) -> CacheStats:
        """Hierarchy-level counters derived from the per-tier stats.

        ``lookups``/``hits``/``misses`` see the hierarchy as one cache (an
        L2 hit is a cache hit, not a miss); ``insertions`` counts entries
        entering through L1 (demotions are movement, not new data);
        ``evictions`` counts entries actually dropped (L2 FIFO evictions —
        an L1 eviction merely demotes).  Inspect ``l1.stats`` / ``l2.stats``
        for the per-tier view.
        """
        l1, l2 = self.l1.stats, self.l2.stats
        return CacheStats(
            lookups=l1.lookups,
            hits=l1.hits + l2.hits,
            misses=max(0, l1.misses - l2.hits),
            insertions=max(0, l1.insertions - self._promotions),
            evictions=l2.evictions,
        )

    def tier_stats(self) -> Dict[str, CacheStats]:
        """Per-tier counters: ``{"l1": ..., "l2": ...}``."""
        return {"l1": self.l1.stats, "l2": self.l2.stats}

    def embedding_storage_bytes(self) -> int:
        """Embedding bytes across both tiers (L1 float entries + L2 codes)."""
        return self.l1.embedding_storage_bytes() + self.l2.embedding_storage_bytes()

    def total_storage_bytes(self) -> int:
        """Bytes of the whole hierarchy (texts + embeddings + codes)."""
        return self.l1.total_storage_bytes() + self.l2.total_storage_bytes()

    def storage_breakdown(self) -> Dict[str, int]:
        """Fleet-accounting view: entries and bytes per tier.

        ``l1_bytes`` counts the exact tier's entry embeddings plus its
        float index rows; ``l2_bytes`` counts the quantized payload (code
        rows + codec/routing tables + context chains).
        """
        return {
            "l1_entries": len(self.l1),
            "l2_entries": len(self.l2),
            "l1_bytes": self.l1.embedding_storage_bytes()
            + int(self.l1.index.nbytes),
            "l2_bytes": self.l2.embedding_storage_bytes(),
        }

    # ------------------------------------------------------------------ #
    # Lookup: L1 pipeline, then the L2 fall-through
    # ------------------------------------------------------------------ #
    def lookup(self, query: str, context: Sequence[str] = ()) -> CacheDecision:
        """Single-probe lookup through both tiers."""
        return self.lookup_batch([query], contexts=[context])[0]

    def lookup_batch(
        self,
        queries: Sequence[str],
        contexts: Optional[Sequence[Sequence[str]]] = None,
        embeddings: Optional[np.ndarray] = None,
    ) -> List[CacheDecision]:
        """Batched lookup: one L1 pipeline pass, then per-miss L2 probes.

        Each L1 miss probes L2 with the pipeline's own probe embedding (no
        re-encode) under the live τ and context rule.  Promotions happen
        only after **every** probe in the batch is matched, so duplicate
        probes all see the entry exactly once (in whichever tier held it
        when the batch started) — an entry is never scored twice for one
        probe.
        """
        decisions = self.l1.lookup_batch(
            queries, contexts=contexts, embeddings=embeddings
        )
        # l2_id -> [(decision index, score), ...]
        matched: Dict[int, List[Tuple[int, float]]] = {}
        for i, decision in enumerate(decisions):
            if decision.hit or decision.embedding is None:
                continue
            ctx_texts = tuple(contexts[i]) if contexts is not None else ()
            found = self.l2.match(
                decision.embedding,
                top_k=self.l1.config.top_k,
                threshold=self.l1.config.similarity_threshold,
                probe_context=_lazy_chain(self.l1, ctx_texts),
                context_threshold=self.l1.config.context_threshold,
                verify_context=self.l1.config.verify_context,
            )
            if found is not None:
                l2_id, score = found
                matched.setdefault(l2_id, []).append((i, score))
        for l2_id, probe_hits in matched.items():
            if self.promote_on_hit:
                entry, embedding = self.l2.pop(l2_id)
                entry_id = self.l1.insert(
                    entry.query,
                    entry.response,
                    context=entry.context,
                    embedding=embedding,
                )
                self._promotions += 1
            else:
                entry = self.l2.entry(l2_id)
                entry_id = l2_id
            for i, score in probe_hits:
                decision = decisions[i]
                decision.hit = True
                decision.response = entry.response
                decision.matched_query = entry.query
                decision.entry_id = entry_id
                decision.similarity = score
                decision.context_verified = (
                    self.l1.config.verify_context and not entry.context.is_empty
                )
        return decisions

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(
        self,
        query: str,
        response: str,
        context: "Sequence[str] | ContextChain" = (),
        embedding: Optional[np.ndarray] = None,
    ) -> int:
        """Enrol into L1 (new entries are hot); may cascade a demotion."""
        return self.l1.insert(query, response, context=context, embedding=embedding)

    def _demote(self, entry: CacheEntry) -> None:
        """L1 eviction hook: move the victim into L2, embedding and all."""
        self.l2.insert(
            entry.query,
            entry.response,
            embedding=entry.embedding,
            context=entry.context,
        )

    def set_threshold(self, threshold: float) -> None:
        """Update τ for both tiers (L2 reads the L1 config live)."""
        self.l1.set_threshold(threshold)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Swap the L1 timestamp source (L2 entries carry no timestamps)."""
        self.l1.set_clock(clock)

    def clear(self) -> None:
        """Drop all entries in both tiers."""
        self.l1.clear()
        self.l2.clear()

    def maintenance(self) -> None:
        """Between-batch upkeep: both indexes, then L2 flush/compaction."""
        self.l1.maintenance()
        self.l2.maintenance()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Path") -> Path:
        """Snapshot both tiers atomically under one directory.

        The published directory holds ``l1/`` (a full MeanCache snapshot),
        ``l2/`` (the quantized tier's snapshot) and a manifest; the whole
        tree appears with one rename, so a crash mid-save leaves any
        previous generation intact.  A *shared* L2 is snapshotted as part
        of every owning cache's save — restore topology (which caches share
        a tier) is the caller's to re-establish, exactly as with the fleet
        checkpoint's user map.
        """
        path = Path(path)
        with atomic_snapshot_dir(path) as stage:
            self.l1.save(stage / "l1")
            self.l2.save(stage / "l2")
            write_manifest(
                stage,
                {
                    "format": TIERED_FORMAT,
                    "version": TIERED_VERSION,
                    "promote_on_hit": self.promote_on_hit,
                    "promotions": self._promotions,
                },
            )
        return path

    @classmethod
    def load(
        cls,
        path: "str | Path",
        encoder: SiameseEncoder,
        mmap: bool = False,
    ) -> "TieredCache":
        """Rebuild a tiered cache from :meth:`save`.

        ``mmap=True`` memory-maps the L2 code matrix (zero-copy warm start
        for the big tier; L1 is small and always materialized).
        """
        path = Path(path)
        manifest = read_manifest(path, TIERED_FORMAT, TIERED_VERSION)
        l1 = _L1Cache.load(path / "l1", encoder)
        l2 = QuantizedTier.load(path / "l2", mmap=mmap)
        cache = cls.__new__(cls)
        cache.l1 = l1
        cache.l1.on_evict = cache._demote
        cache.l2 = l2
        cache.promote_on_hit = bool(manifest.get("promote_on_hit", True))
        cache._promotions = int(manifest.get("promotions", 0))
        return cache


def _lazy_chain(
    cache: MeanCache, ctx_texts: Tuple[str, ...]
) -> Callable[[], ContextChain]:
    """Embed a probe's context chain at most once, and only when needed."""
    memo: List[ContextChain] = []

    def build() -> ContextChain:
        if not memo:
            memo.append(cache._embed_context(ctx_texts))
        return memo[0]

    return build
