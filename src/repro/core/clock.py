"""Injectable clocks: the determinism contract's time source.

Library code never calls ``time.time()`` directly (rule RPL002): anything a
cache decision can depend on — entry ``created_at``/``last_accessed``
stamps, TTL expiry, recency introspection — reads time from an injected
``Clock`` callable instead.  Production wiring injects ``time.time``;
simulation wiring (:class:`~repro.serving.scheduling.BatchExecutor` with
``stamp_event_time=True``) injects a :class:`VirtualClock` driven by trace
event timestamps, so replays are independent of both wall-clock speed and
event-processing order.
"""

from __future__ import annotations

import time
from typing import Callable

#: A zero-argument callable returning seconds as a float.  ``time.time``,
#: ``time.monotonic`` and ``VirtualClock`` instances all satisfy it.
Clock = Callable[[], float]

__all__ = ["Clock", "VirtualClock", "WALL_CLOCK"]

#: The production default: real wall time.
WALL_CLOCK: Clock = time.time


class VirtualClock:
    """A monotonic, manually-advanced clock for deterministic replays.

    Calling the instance returns the current virtual time.  ``advance_to``
    is monotone by construction (it ignores regressions), so feeding it
    per-window event timestamps in any order within a window yields the
    same final reading — the property the reorder-independence regression
    test pins down.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    @property
    def now(self) -> float:
        """The current virtual time in seconds (attribute form)."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` if it is ahead; never move back."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def advance(self, delta: float) -> float:
        """Move forward by ``delta`` seconds (negative deltas are ignored)."""
        if delta > 0:
            self._now += float(delta)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
