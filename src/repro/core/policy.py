"""Cache eviction policies.

Figure 1 of the paper shows an eviction-policy column (LRU) in the local
cache.  Three standard policies are provided; they operate on opaque entry
ids so the cache can map them to row indices however it likes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict


class EvictionPolicy:
    """Tracks entry liveness and picks victims when the cache is full."""

    def record_insert(self, entry_id: int) -> None:
        """Register a newly-inserted entry."""
        raise NotImplementedError

    def record_access(self, entry_id: int) -> None:
        """Register a read hit on an entry."""
        raise NotImplementedError

    def record_remove(self, entry_id: int) -> None:
        """Forget an entry that was removed externally."""
        raise NotImplementedError

    def select_victim(self) -> int:
        """Return the entry id to evict next.

        Raises
        ------
        LookupError
            If the policy is tracking no entries.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the policy's ordering state.

        Cache persistence (``MeanCache.save``) stores this so a reloaded
        cache evicts in exactly the order the saved one would have.
        """
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Reinstate a :meth:`state_dict` snapshot (replacing current state)."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Least-recently-used eviction (the paper's default)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_insert(self, entry_id: int) -> None:
        self._order.pop(entry_id, None)
        self._order[entry_id] = None

    def record_access(self, entry_id: int) -> None:
        if entry_id in self._order:
            self._order.move_to_end(entry_id)

    def record_remove(self, entry_id: int) -> None:
        self._order.pop(entry_id, None)

    def select_victim(self) -> int:
        if not self._order:
            raise LookupError("no entries to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def state_dict(self) -> Dict[str, object]:
        return {"order": [int(i) for i in self._order]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._order = OrderedDict((int(i), None) for i in state["order"])


class LFUPolicy(EvictionPolicy):
    """Least-frequently-used eviction with LRU tie-breaking."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._recency: "OrderedDict[int, None]" = OrderedDict()

    def record_insert(self, entry_id: int) -> None:
        self._counts[entry_id] = 0
        self._recency.pop(entry_id, None)
        self._recency[entry_id] = None

    def record_access(self, entry_id: int) -> None:
        if entry_id in self._counts:
            self._counts[entry_id] += 1
            self._recency.move_to_end(entry_id)

    def record_remove(self, entry_id: int) -> None:
        self._counts.pop(entry_id, None)
        self._recency.pop(entry_id, None)

    def select_victim(self) -> int:
        if not self._counts:
            raise LookupError("no entries to evict")
        min_count = min(self._counts.values())
        # Oldest (least recently used) among the least-frequently used.
        for entry_id in self._recency:
            if self._counts[entry_id] == min_count:
                return entry_id
        return next(iter(self._recency))  # pragma: no cover - unreachable

    def __len__(self) -> int:
        return len(self._counts)

    def state_dict(self) -> Dict[str, object]:
        # Counts as [id, count] pairs: JSON object keys would stringify ids.
        return {
            "recency": [int(i) for i in self._recency],
            "counts": [[int(i), int(c)] for i, c in self._counts.items()],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._counts = {int(i): int(c) for i, c in state["counts"]}
        self._recency = OrderedDict((int(i), None) for i in state["recency"])


class FIFOPolicy(EvictionPolicy):
    """First-in-first-out eviction (insertion order, accesses ignored)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_insert(self, entry_id: int) -> None:
        self._order.pop(entry_id, None)
        self._order[entry_id] = None

    def record_access(self, entry_id: int) -> None:
        # FIFO ignores accesses by definition.
        return None

    def record_remove(self, entry_id: int) -> None:
        self._order.pop(entry_id, None)

    def select_victim(self) -> int:
        if not self._order:
            raise LookupError("no entries to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def state_dict(self) -> Dict[str, object]:
        return {"order": [int(i) for i in self._order]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._order = OrderedDict((int(i), None) for i in state["order"])


_POLICIES = {
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "fifo": FIFOPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a policy by name (``"lru"``, ``"lfu"`` or ``"fifo"``)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown eviction policy {name!r}; known policies: {known}") from None
