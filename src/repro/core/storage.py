"""Persistent and in-memory cache stores (DiskCache replacement).

MeanCache persists the local cache with the DiskCache library in the paper's
artifact.  Here two backends implement the same minimal mapping interface with
byte-level size accounting (needed by the Figure 10 storage experiment):

* :class:`InMemoryStore` — a plain dict-backed store (default for tests and
  experiments; deterministic and fast).
* :class:`DiskStore` — a directory-backed store writing one pickle file per
  key with an atomic JSON index, surviving process restarts.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List

import numpy as np


def object_nbytes(value: Any) -> int:
    """Approximate in-cache size of a stored value, in bytes.

    NumPy arrays count their buffer size; strings count their UTF-8 length;
    containers count the sum of their members; other objects fall back to the
    pickle length.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    if isinstance(value, (list, tuple, set)):
        return sum(object_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(object_nbytes(k) + object_nbytes(v) for k, v in value.items())
    try:
        return len(pickle.dumps(value))
    except Exception:  # pragma: no cover - exotic unpicklable objects
        return 64


class BaseStore:
    """Minimal mapping interface shared by both backends."""

    def get(self, key: str) -> Any:
        raise NotImplementedError

    def set(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.keys())

    def nbytes(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        for key in list(self.keys()):
            self.delete(key)


class InMemoryStore(BaseStore):
    """Dict-backed store with running size accounting."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._sizes: Dict[str, int] = {}

    def get(self, key: str) -> Any:
        if key not in self._data:
            raise KeyError(key)
        return self._data[key]

    def set(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._sizes[key] = object_nbytes(key) + object_nbytes(value)

    def delete(self, key: str) -> None:
        if key not in self._data:
            raise KeyError(key)
        del self._data[key]
        del self._sizes[key]

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data.keys())

    def nbytes(self) -> int:
        return sum(self._sizes.values())

    def items(self) -> Iterator:
        return iter(self._data.items())


class DiskStore(BaseStore):
    """Directory-backed persistent store (one pickle per key + JSON index).

    Writes are atomic (temp file + rename) so a crash never corrupts the
    index.  Not safe for concurrent writers; MeanCache is a single-user local
    cache, so a per-process lock is unnecessary for the reproduction.
    """

    INDEX_NAME = "index.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._index: Dict[str, Dict[str, Any]] = {}
        self._load_index()

    # ------------------------------------------------------------------ #
    def _index_path(self) -> Path:
        return self.directory / self.INDEX_NAME

    def _load_index(self) -> None:
        path = self._index_path()
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                self._index = json.load(fh)
        else:
            self._index = {}

    def _save_index(self) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._index, fh)
            os.replace(tmp, self._index_path())
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _file_for(self, key: str) -> Path:
        entry = self._index.get(key)
        if entry is None:
            raise KeyError(key)
        return self.directory / entry["file"]

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Any:
        path = self._file_for(key)
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def set(self, key: str, value: Any) -> None:
        filename = f"entry_{abs(hash(key)) & 0xFFFFFFFF:08x}_{len(self._index):08d}.pkl"
        existing = self._index.get(key)
        if existing is not None:
            filename = existing["file"]
        payload = pickle.dumps(value)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, self.directory / filename)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._index[key] = {
            "file": filename,
            "nbytes": len(payload) + object_nbytes(key),
        }
        self._save_index()

    def delete(self, key: str) -> None:
        path = self._file_for(key)
        if path.exists():
            path.unlink()
        del self._index[key]
        self._save_index()

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> List[str]:
        return list(self._index.keys())

    def nbytes(self) -> int:
        return int(sum(entry["nbytes"] for entry in self._index.values()))
