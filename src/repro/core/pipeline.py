"""The shared, composable lookup pipeline every cache variant runs on.

Every semantic-cache variant in this repo answers a probe with the same
logical sequence (paper Algorithm 1):

    Embed → Retrieve → Threshold → ContextVerify → Decide → Enroll/Evict

Historically each cache (``MeanCache``, ``GPTCache``, ``KeywordCache``)
re-implemented that loop; :class:`LookupPipeline` factors it into six small
stage objects with a **batched-first** interface, so variant differences are
stage substitutions instead of copy-pasted control flow:

* ``MeanCache``     — :class:`EncoderEmbed` → :class:`IndexRetrieve` →
  :class:`SimilarityThreshold` → :class:`ChainContextVerify` → its decide
  stage → capacity-evicting enroll.
* ``GPTCache``      — same embed/retrieve/threshold stages but
  :class:`NoContextVerify` (the baseline ignores conversation state) and a
  never-evicting enroll.
* ``KeywordCache``  — swaps the *Retrieve* stage: :class:`KeyEmbed` +
  :class:`ExactKeyRetrieve` perform normalised exact matching, with
  :class:`AlwaysAdmit` in place of a cosine threshold.

The pipeline is deliberately decision-transparent: running a batch through
:meth:`LookupPipeline.run` produces bit-identical hit/miss decisions,
similarities and matched entries to the variants' original hand-rolled loops
(``tests/test_pipeline_parity.py`` pins this against a golden fixture).

Stage contracts
---------------
Stages are tiny objects; where a knob can change after construction (the
adaptive threshold τ is re-learned by FL rounds) the stage accepts either a
plain value or a zero-argument callable and reads it live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.context import ContextChain, context_matches
from repro.index import IndexHit, VectorIndex


def _live(value_or_fn: "Union[Callable[[], object], object]") -> Callable[[], object]:
    """Normalise a plain value or a zero-arg callable into a callable."""
    if callable(value_or_fn):
        return value_or_fn
    return lambda: value_or_fn


# --------------------------------------------------------------------------- #
# Probe / selection data
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Probe:
    """One query travelling through the pipeline."""

    query: str
    context: Tuple[str, ...] = ()

    @classmethod
    def make(cls, query: str, context: Sequence[str] = ()) -> "Probe":
        """Build a probe, coercing the context to a tuple."""
        return cls(query=query, context=tuple(context))


@dataclass
class Selection:
    """Outcome of the Threshold/ContextVerify stages for one probe.

    ``best`` is the first retrieved candidate that cleared the admission
    threshold and (when enabled) context verification — ``None`` on a miss.
    ``embed_time_s``/``search_time_s`` are the batch's wall-clock cost split
    evenly over its probes.
    """

    probe: Probe
    hits: List[IndexHit] = field(default_factory=list)
    best: Optional[IndexHit] = None
    context_checked: bool = False
    embed_time_s: float = 0.0
    search_time_s: float = 0.0
    #: the probe's embedding from the Embed stage (None for non-vector
    #: variants); lets a later enrolment reuse it instead of re-encoding.
    embedding: Optional[np.ndarray] = None

    @property
    def hit(self) -> bool:
        """Whether a candidate survived every selection stage."""
        return self.best is not None

    @property
    def top_score(self) -> float:
        """Best retrieved similarity (0.0 when nothing was retrieved)."""
        return self.hits[0].score if self.hits else 0.0


# --------------------------------------------------------------------------- #
# Embed stage
# --------------------------------------------------------------------------- #
class EmbedStage:
    """Turns a batch of query texts into probe representations.

    The representation is whatever the paired :class:`RetrieveStage`
    consumes: an ``(n, d)`` embedding matrix for vector retrieval, a list of
    normalised key strings for exact-match retrieval.
    """

    def encode_batch(self, queries: Sequence[str]) -> Sequence:
        """Encode the whole query batch in one call (one repr per query)."""
        raise NotImplementedError


class EncoderEmbed(EmbedStage):
    """Embeds queries with a sentence encoder in one batched call."""

    def __init__(
        self,
        encoder,
        compress: "Union[Callable[[], bool], bool]" = False,
    ) -> None:
        """``compress`` (value or live callable) gates PCA compression."""
        self.encoder = encoder
        self._compress = _live(compress)

    def encode_batch(self, queries: Sequence[str]) -> np.ndarray:
        """One encoder forward for the batch; returns an ``(n, d)`` matrix."""
        embs = self.encoder.encode(list(queries), compress=bool(self._compress()))
        return np.atleast_2d(np.asarray(embs, dtype=np.float64))


class KeyEmbed(EmbedStage):
    """Maps queries to normalised exact-match keys (the keyword variant)."""

    def __init__(self, normalize: Callable[[str], str]) -> None:
        """``normalize`` canonicalises a query string into its match key."""
        self.normalize = normalize

    def encode_batch(self, queries: Sequence[str]) -> List[str]:
        """Normalise every query into its exact-match key."""
        return [self.normalize(q) for q in queries]


# --------------------------------------------------------------------------- #
# Retrieve stage
# --------------------------------------------------------------------------- #
class RetrieveStage:
    """Produces ranked candidate lists for a batch of probe representations."""

    def is_empty(self) -> bool:
        """True when the backing store holds no entries (probes must miss)."""
        raise NotImplementedError

    def retrieve_batch(self, reprs: Sequence) -> List[List[IndexHit]]:
        """One ranked candidate list per probe representation, in order."""
        raise NotImplementedError


class IndexRetrieve(RetrieveStage):
    """Top-k cosine retrieval from a vector index (one call per batch).

    Backend-agnostic: ``index`` is any :class:`~repro.index.VectorIndex` —
    the exact :class:`~repro.index.FlatIndex` or a sublinear approximate
    backend built via :func:`repro.index.make_index` (``"ivf"``/``"lsh"``).
    The caches thread their ``index_backend`` config through here, so the
    retrieval stage never knows which backend is underneath.
    """

    def __init__(
        self,
        index: VectorIndex,
        top_k: "Union[Callable[[], int], int]" = 5,
        threshold: "Optional[Union[Callable[[], float], float]]" = None,
        early_stop_margin: Optional[float] = None,
    ) -> None:
        """``top_k`` (value or live callable) caps candidates per probe.

        ``threshold`` mirrors the admission stage's live τ; when it is set
        together with ``early_stop_margin`` and the backend advertises
        ``supports_stop_score``, lookups pass ``stop_score = τ + margin``
        so the index may stop scanning once a confidently-admissible
        candidate is in hand (threshold-aware early termination).  The
        margin buys headroom over codec/scan score error; both knobs unset
        keeps retrieval exhaustive.
        """
        self.index = index
        self._top_k = _live(top_k)
        self._threshold = _live(threshold) if threshold is not None else None
        self._early_stop_margin = (
            float(early_stop_margin) if early_stop_margin is not None else None
        )

    def is_empty(self) -> bool:
        """True while the backing index holds no vectors."""
        return len(self.index) == 0

    def retrieve_batch(self, reprs: np.ndarray) -> List[List[IndexHit]]:
        """Batched top-k search (one index call for the whole probe set)."""
        top_k = min(int(self._top_k()), len(self.index))
        if (
            self._threshold is not None
            and self._early_stop_margin is not None
            and getattr(self.index, "supports_stop_score", False)
        ):
            stop = float(self._threshold()) + self._early_stop_margin
            return self.index.search(reprs, top_k=top_k, stop_score=stop)
        return self.index.search(reprs, top_k=top_k)


class ExactKeyRetrieve(RetrieveStage):
    """Exact-match retrieval over normalised keys (KeywordCache's swap-in).

    A present key yields a single pseudo-candidate with similarity 1.0, so
    downstream stages treat exact matching as a degenerate ranked retrieval.
    """

    def __init__(self, key_to_id: Dict[str, int]) -> None:
        """``key_to_id`` is the cache's live key → entry-id dictionary."""
        self._key_to_id = key_to_id

    def is_empty(self) -> bool:
        """True while no keys are stored."""
        return len(self._key_to_id) == 0

    def retrieve_batch(self, reprs: Sequence[str]) -> List[List[IndexHit]]:
        """Dictionary probe per key; a present key scores 1.0."""
        results: List[List[IndexHit]] = []
        for key in reprs:
            entry_id = self._key_to_id.get(key)
            results.append([] if entry_id is None else [IndexHit(id=entry_id, score=1.0)])
        return results


# --------------------------------------------------------------------------- #
# Threshold stage
# --------------------------------------------------------------------------- #
class ThresholdStage:
    """Admits or rejects one retrieved candidate."""

    def admit(self, hit: IndexHit) -> bool:
        """Whether this candidate may proceed to context verification."""
        raise NotImplementedError


class SimilarityThreshold(ThresholdStage):
    """The adaptive cosine threshold τ, read live on every admission.

    The online federated loop (:mod:`repro.federated.online`) re-learns τ
    from live fleet traffic and pushes it through the owning cache's
    ``set_threshold``; because the stage holds a live callable rather than a
    copied value, the very next probe is admitted under the new τ.
    """

    def __init__(self, threshold: "Union[Callable[[], float], float]") -> None:
        """``threshold`` is τ — a plain value or a live callable."""
        self._threshold = _live(threshold)

    @property
    def threshold(self) -> float:
        """The τ currently in force (live read; introspection/telemetry)."""
        return float(self._threshold())

    def admit(self, hit: IndexHit) -> bool:
        """Admit candidates scoring at least the current τ."""
        return hit.score >= float(self._threshold())


class AlwaysAdmit(ThresholdStage):
    """Admits every retrieved candidate (exact matching is already binary)."""

    def admit(self, hit: IndexHit) -> bool:
        """Every candidate passes."""
        return True


# --------------------------------------------------------------------------- #
# ContextVerify stage
# --------------------------------------------------------------------------- #
class ContextVerifyStage:
    """Verifies a candidate's conversation state against the probe's.

    ``enabled`` gates the whole stage; the probe's context chain is embedded
    lazily by the pipeline (once per probe, and only when some candidate
    actually clears the threshold), so outright misses never pay the
    context-encoding cost.
    """

    enabled: bool = True

    def embed_probe_context(self, context: Sequence[str]) -> ContextChain:
        """Embed the probe's conversational context into a chain."""
        raise NotImplementedError

    def matches(self, probe_chain: ContextChain, candidate_id: int) -> bool:
        """Whether the candidate's stored chain matches the probe's."""
        raise NotImplementedError


class NoContextVerify(ContextVerifyStage):
    """Context verification disabled (GPTCache; the ablation switch)."""

    enabled = False

    def embed_probe_context(self, context: Sequence[str]) -> ContextChain:
        """Never called while disabled; returns the empty chain."""
        return ContextChain.empty()

    def matches(self, probe_chain: ContextChain, candidate_id: int) -> bool:
        """Every candidate matches (the stage is off)."""
        return True


class ChainContextVerify(ContextVerifyStage):
    """Context-chain verification (Algorithm 1 lines 4–6).

    ``enabled`` may be a live callable (MeanCache passes
    ``lambda: config.verify_context`` so the ablation switch applies even if
    the config object is replaced after construction); when it reads False
    the stage behaves exactly like :class:`NoContextVerify`.
    """

    def __init__(
        self,
        embed_context: Callable[[Sequence[str]], ContextChain],
        entry_context: Callable[[int], ContextChain],
        threshold: "Union[Callable[[], float], float]" = 0.7,
        enabled: "Union[Callable[[], bool], bool]" = True,
    ) -> None:
        """Wire the cache's context embedding/storage accessors in.

        ``embed_context`` embeds a probe's context texts into a chain;
        ``entry_context`` fetches a cached entry's stored chain by id;
        ``threshold`` and ``enabled`` may be live callables.
        """
        self._embed_context = embed_context
        self._entry_context = entry_context
        self._threshold = _live(threshold)
        self._enabled = _live(enabled)

    @property
    def enabled(self) -> bool:
        """Live read of the ablation switch."""
        return bool(self._enabled())

    def embed_probe_context(self, context: Sequence[str]) -> ContextChain:
        """Embed the probe's context texts with the cache's encoder."""
        return self._embed_context(context)

    def matches(self, probe_chain: ContextChain, candidate_id: int) -> bool:
        """Compare the probe's chain against the candidate's stored chain."""
        return context_matches(
            probe_chain, self._entry_context(candidate_id), float(self._threshold())
        )


# --------------------------------------------------------------------------- #
# Decide stage
# --------------------------------------------------------------------------- #
class DecideStage:
    """Turns a :class:`Selection` into the variant's decision object.

    Implementations also perform the variant's hit accounting (stats
    counters, eviction-policy access recording) so a pipeline run is a drop-in
    replacement for the historical hand-rolled loops.
    """

    def decide(self, selection: Selection):
        """Build the variant's decision object and record its accounting."""
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Enroll / Evict stage
# --------------------------------------------------------------------------- #
class EnrollStage:
    """Admission of new (query, response) pairs, including capacity eviction."""

    def ensure_capacity(self) -> int:
        """Evict until one more entry fits; returns the number evicted."""
        raise NotImplementedError

    def enroll(
        self,
        query: str,
        response: str,
        context: Sequence[str] = (),
        user_id: Optional[str] = None,
        embedding: Optional[np.ndarray] = None,
    ) -> None:
        """Insert a new entry (evicting first when the cache is full).

        ``user_id`` attributes the entry for central multi-user caches;
        per-device caches ignore it (the device *is* the user).
        ``embedding``, when the lookup that missed already computed it
        (``Selection.embedding`` / the decision's ``embedding``), is reused
        so enrolment does not pay a second encoder forward.
        """
        raise NotImplementedError


class CapacityEnroll(EnrollStage):
    """Standard bounded-capacity enrolment over a policy-driven evictor."""

    def __init__(
        self,
        size: Callable[[], int],
        max_entries: "Union[Callable[[], int], int]",
        evict_one: Callable[[], None],
        insert: Callable[..., object],
    ) -> None:
        """Wire the cache's size/limit accessors and mutation callables in."""
        self._size = size
        self._max_entries = _live(max_entries)
        self._evict_one = evict_one
        self._insert = insert

    def ensure_capacity(self) -> int:
        """Evict policy-chosen victims until one more entry fits."""
        evicted = 0
        while self._size() >= int(self._max_entries()):
            self._evict_one()
            evicted += 1
        return evicted

    def enroll(
        self,
        query: str,
        response: str,
        context: Sequence[str] = (),
        user_id: Optional[str] = None,
        embedding: Optional[np.ndarray] = None,
    ) -> None:
        """Insert via the cache's ``insert`` (which enforces capacity)."""
        self._insert(query, response, context=context, embedding=embedding)


class UnboundedEnroll(EnrollStage):
    """Enrolment for caches that never evict (the central GPTCache baseline)."""

    def __init__(self, insert: Callable[..., object]) -> None:
        """``insert`` is the cache's raw insertion callable."""
        self._insert = insert

    def ensure_capacity(self) -> int:
        """Nothing to evict — the cache is unbounded."""
        return 0

    def enroll(
        self,
        query: str,
        response: str,
        context: Sequence[str] = (),
        user_id: Optional[str] = None,
        embedding: Optional[np.ndarray] = None,
    ) -> None:
        """Insert unconditionally, attributing ``user_id`` when given."""
        kwargs = {} if user_id is None else {"user_id": user_id}
        self._insert(query, response, embedding=embedding, **kwargs)


# --------------------------------------------------------------------------- #
# The pipeline
# --------------------------------------------------------------------------- #
class LookupPipeline:
    """Composable batched lookup: Embed → Retrieve → Threshold →
    ContextVerify → Decide, with an Enroll/Evict stage for admissions.

    The pipeline itself is variant-agnostic; a cache builds one from the
    stages matching its semantics and forwards ``lookup``/``lookup_batch``
    calls to :meth:`run`.
    """

    def __init__(
        self,
        embed: EmbedStage,
        retrieve: RetrieveStage,
        threshold: ThresholdStage,
        context_verify: ContextVerifyStage,
        decide: DecideStage,
        enroll: Optional[EnrollStage] = None,
    ) -> None:
        """Compose the six stage slots (``enroll`` optional for read-only use)."""
        self.embed = embed
        self.retrieve = retrieve
        self.threshold = threshold
        self.context_verify = context_verify
        self.decide = decide
        self.enroll = enroll

    # ------------------------------------------------------------------ #
    def select(
        self,
        probe: Probe,
        hits: List[IndexHit],
        embed_time_s: float = 0.0,
        search_time_s: float = 0.0,
        embedding: Optional[np.ndarray] = None,
    ) -> Selection:
        """Run Threshold → ContextVerify over one probe's candidates.

        Candidates arrive ranked by descending similarity; the first one to
        clear both stages wins.  The probe's context chain is embedded at
        most once, and only when a candidate actually reaches verification.
        """
        probe_chain: Optional[ContextChain] = None
        context_checked = False
        best: Optional[IndexHit] = None
        for hit in hits:
            if not self.threshold.admit(hit):
                continue
            if self.context_verify.enabled:
                context_checked = True
                if probe_chain is None:
                    probe_chain = self.context_verify.embed_probe_context(probe.context)
                if not self.context_verify.matches(probe_chain, hit.id):
                    continue
            best = hit
            break
        return Selection(
            probe=probe,
            hits=hits,
            best=best,
            context_checked=context_checked,
            embed_time_s=embed_time_s,
            search_time_s=search_time_s,
            embedding=embedding,
        )

    def run(self, probes: Sequence[Probe], reprs: Optional[Sequence] = None) -> List:
        """Drive a whole batch of probes through every stage.

        One embed call and one retrieval call cover the batch; their
        wall-clock cost is split evenly over the probes.  Returns the decide
        stage's output per probe, in input order.

        ``reprs``, when given, bypasses the Embed stage with precomputed
        probe representations (one per probe, aligned by position) — the
        serving layer's cross-cache micro-batcher embeds a whole flush of
        many users' queries with a single encoder call and hands each cache
        its slice, so per-cache pipelines never pay a second forward.  The
        representations must come from the same embed configuration this
        pipeline's Embed stage would apply (same encoder and compression);
        ``embed_time_s`` is reported as 0 since the cost was paid upstream.
        """
        if not probes:
            return []
        n = len(probes)
        if reprs is None:
            start = time.perf_counter()
            reprs = self.embed.encode_batch([p.query for p in probes])
            embed_time = (time.perf_counter() - start) / n
        else:
            if len(reprs) != n:
                raise ValueError("reprs must align with probes")
            embed_time = 0.0

        if self.retrieve.is_empty():
            hit_lists: List[List[IndexHit]] = [[] for _ in probes]
            search_time = 0.0
        else:
            start = time.perf_counter()
            hit_lists = self.retrieve.retrieve_batch(reprs)
            search_time = (time.perf_counter() - start) / n

        vector_reprs = isinstance(reprs, np.ndarray)
        return [
            self.decide.decide(
                self.select(
                    probe,
                    hit_lists[i],
                    embed_time,
                    search_time,
                    embedding=reprs[i] if vector_reprs else None,
                )
            )
            for i, probe in enumerate(probes)
        ]

    def run_one(self, query: str, context: Sequence[str] = ()):
        """Single-probe convenience wrapper over :meth:`run`."""
        return self.run([Probe.make(query, context)])[0]

    # ------------------------------------------------------------------ #
    def stage_names(self) -> Dict[str, str]:
        """Class name of each stage slot (introspection / docs / repr)."""
        return {
            "embed": type(self.embed).__name__,
            "retrieve": type(self.retrieve).__name__,
            "threshold": type(self.threshold).__name__,
            "context_verify": type(self.context_verify).__name__,
            "decide": type(self.decide).__name__,
            "enroll": type(self.enroll).__name__ if self.enroll is not None else "None",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stages = " → ".join(
            f"{slot}={name}" for slot, name in self.stage_names().items()
        )
        return f"LookupPipeline({stages})"
