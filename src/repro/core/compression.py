"""Cache-level embedding compression (paper §III-A4, Figure 3, Figure 10).

:func:`compress_cache` takes a populated :class:`~repro.core.cache.MeanCache`,
learns PCA components from the embeddings of the queries it currently holds,
attaches the components to the encoder as an extra projection layer, converts
the cache to compressed mode and re-embeds the stored entries.  The returned
:class:`CompressionReport` records the storage saving — the quantity reported
in Figure 10(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.cache import MeanCache, MeanCacheConfig
from repro.embeddings.pca import PCA


@dataclass(frozen=True)
class CompressionReport:
    """Before/after accounting of a cache compression."""

    n_entries: int
    original_dim: int
    compressed_dim: int
    original_embedding_bytes: int
    compressed_embedding_bytes: int
    original_total_bytes: int
    compressed_total_bytes: int
    explained_variance_ratio: float

    @property
    def embedding_saving_fraction(self) -> float:
        """Fraction of embedding storage saved (≈0.83 at 768→64 plus context chains)."""
        if self.original_embedding_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_embedding_bytes / self.original_embedding_bytes

    @property
    def total_saving_fraction(self) -> float:
        """Fraction of total cache storage saved."""
        if self.original_total_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_total_bytes / self.original_total_bytes


def compress_cache(
    cache: MeanCache,
    n_components: int = 64,
    fit_texts: Optional[Sequence[str]] = None,
) -> CompressionReport:
    """Compress a cache's embeddings in place.

    Parameters
    ----------
    cache:
        A populated MeanCache in uncompressed mode.
    n_components:
        Target embedding dimensionality (the paper uses 64).
    fit_texts:
        Texts to fit the PCA on; defaults to the cache's own queries
        (Figure 3-a fits on the user's query history).

    Raises
    ------
    ValueError
        If the cache is already compressed or holds too few entries to fit
        the requested number of components.
    """
    if cache.config.compressed:
        raise ValueError("cache is already compressed")
    texts = list(fit_texts) if fit_texts is not None else [e.query for e in cache.entries]
    if len(texts) < 2:
        raise ValueError("need at least 2 queries to fit PCA components")
    if n_components > cache.encoder.config.output_dim:
        raise ValueError(
            f"n_components={n_components} exceeds encoder output dim "
            f"{cache.encoder.config.output_dim}"
        )
    if n_components > len(texts):
        raise ValueError(
            f"n_components={n_components} exceeds the number of fitting queries ({len(texts)})"
        )

    original_dim = cache.encoder.config.output_dim
    original_embedding_bytes = cache.embedding_storage_bytes()
    original_total_bytes = cache.total_storage_bytes()

    # Figure 3-a: learn components on the embeddings of the user's queries.
    raw_embeddings = cache.encoder.encode(texts, compress=False)
    pca = PCA(n_components=n_components)
    pca.fit(raw_embeddings)
    cache.encoder.attach_pca(pca)

    # Switch the cache to compressed mode and re-embed its entries
    # (Figure 3-b: the PCA layer is now part of the deployed model).
    cache.config = MeanCacheConfig(
        similarity_threshold=cache.config.similarity_threshold,
        context_threshold=cache.config.context_threshold,
        top_k=cache.config.top_k,
        verify_context=cache.config.verify_context,
        max_entries=cache.config.max_entries,
        eviction_policy=cache.config.eviction_policy,
        compressed=True,
    )
    cache.rebuild_embeddings()

    return CompressionReport(
        n_entries=len(cache),
        original_dim=original_dim,
        compressed_dim=n_components,
        original_embedding_bytes=original_embedding_bytes,
        compressed_embedding_bytes=cache.embedding_storage_bytes(),
        original_total_bytes=original_total_bytes,
        compressed_total_bytes=cache.total_storage_bytes(),
        explained_variance_ratio=float(pca.explained_variance_ratio_.sum()),
    )
