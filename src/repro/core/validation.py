"""Shared query-text validation used by every cache front door."""

from __future__ import annotations

from typing import List, Sequence


def require_query_text(query: str) -> str:
    """Reject anything but a non-empty, non-blank query string."""
    if not isinstance(query, str) or not query.strip():
        raise ValueError("query must be a non-empty string")
    return query


def require_query_texts(queries: Sequence[str]) -> List[str]:
    """Validate a batch of query strings, returning them as a list."""
    queries = list(queries)
    for query in queries:
        if not isinstance(query, str) or not query.strip():
            raise ValueError("every query must be a non-empty string")
    return queries
