"""The encoder "model zoo".

The paper evaluates three sentence encoders:

* **MPNet** (all-mpnet-base-v2): 768-d embeddings, ~420 MB, the strongest.
* **ALBERT** (paraphrase-albert-small-v2): 768-d embeddings, ~43 MB, lighter
  and slightly weaker; GPTCache's default.
* **Llama-2 7B**: 4096-d embeddings, ~30 GB, slow to embed and — as the paper
  shows in §IV-G — poorly suited to sentence-similarity out of the box.

This module provides the equivalent configurations of the NumPy
:class:`~repro.embeddings.model.SiameseEncoder`.  The analogues preserve the
properties the evaluation depends on:

==============  ======  ===========  ==============================  =========
name            emb dim  per-query    relative embedding compute      semantic
                         storage      (hidden width × feature width)  quality
==============  ======  ===========  ==============================  =========
``mpnet-sim``   768     6 KB (f64)   medium                           best
``albert-sim``  768     6 KB (f64)   small                            good
``llama2-sim``  4096    32 KB (f64)  large                            poor
==============  ======  ===========  ==============================  =========

Per-embedding storage matches the paper exactly because the paper also counts
float64/float32 vectors of the same dimensionalities (768 → 6 KB, 4096 →
32 KB).  The ``llama2-sim`` configuration disables the identity-residual
initialisation and adds no similarity-oriented structure, reproducing the
finding that a general-purpose LLM's raw embeddings are a weak similarity
signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer
from repro.embeddings.model import EncoderConfig, SiameseEncoder
from repro.embeddings.optim import Adam
from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig

#: Domains used to synthesise the "public pretraining corpus" the zoo models
#: are pretrained on (mirroring how MPNet/ALBERT sentence encoders are
#: pretrained on public paraphrase corpora before any user-specific
#: fine-tuning).  Deliberately *half* of the full domain set so federated
#: fine-tuning on the users' query distribution still has headroom.
PRETRAIN_DOMAINS: Tuple[str, ...] = (
    "programming",
    "cooking",
    "health",
    "science",
    "writing",
    "fitness",
    "gardening",
    "home",
    "entertainment",
    "education",
)
#: Seed of the pretraining corpus/data generation (shared by every zoo entry).
PRETRAIN_SEED: int = 7_777


@dataclass(frozen=True)
class EncoderSpec:
    """Static description of a zoo entry.

    Attributes
    ----------
    name:
        Zoo key, e.g. ``"mpnet-sim"``.
    paper_model:
        The model the entry stands in for.
    config:
        The :class:`EncoderConfig` used to instantiate it.
    model_size_mb:
        Nominal on-disk size of the *paper's* model, used for reporting.
    trainable:
        Whether the reproduction fine-tunes this encoder with FL (the paper
        never fine-tunes Llama-2; it is only probed as a frozen embedder).
    pretrain_epochs:
        Epochs of "public corpus" pretraining baked into the checkpoint that
        :func:`load_encoder` returns.  0 means the raw random initialisation
        (used for the llama2 analogue, which is not a sentence encoder).
    pretrain_pairs:
        Number of pretraining pairs generated from the pretraining corpus.
    pretrain_lr:
        Learning rate of the pretraining pass.
    """

    name: str
    paper_model: str
    config: EncoderConfig
    model_size_mb: float
    trainable: bool = True
    pretrain_epochs: int = 0
    pretrain_pairs: int = 800
    pretrain_lr: float = 1e-2

    @property
    def embedding_dim(self) -> int:
        """Embedding dimensionality produced by this encoder."""
        return self.config.output_dim

    @property
    def embedding_bytes(self) -> int:
        """Per-query embedding storage in bytes (float64 vectors)."""
        return self.config.output_dim * 8


ENCODER_SPECS: Dict[str, EncoderSpec] = {
    "mpnet-sim": EncoderSpec(
        name="mpnet-sim",
        paper_model="sentence-transformers/all-mpnet-base-v2 (MPNet)",
        config=EncoderConfig(
            n_features=2048,
            hidden_dim=512,
            output_dim=768,
            seed=11,
            init_scale=1.0,
            identity_residual=True,
            anisotropy=0.3,
            text_noise=0.0,
        ),
        model_size_mb=420.0,
        pretrain_epochs=5,
        pretrain_pairs=1400,
    ),
    "albert-sim": EncoderSpec(
        name="albert-sim",
        paper_model="paraphrase-albert-small-v2 (ALBERT)",
        config=EncoderConfig(
            n_features=2048,
            hidden_dim=256,
            output_dim=768,
            seed=23,
            init_scale=1.0,
            identity_residual=True,
            anisotropy=0.3,
            text_noise=0.05,
        ),
        model_size_mb=43.0,
        pretrain_epochs=5,
        pretrain_pairs=1400,
    ),
    "llama2-sim": EncoderSpec(
        name="llama2-sim",
        paper_model="Llama-2 7B (last-hidden-state mean pooling)",
        config=EncoderConfig(
            n_features=8192,
            hidden_dim=2048,
            output_dim=4096,
            seed=37,
            init_scale=1.0,
            identity_residual=False,
            anisotropy=0.5,
            text_noise=0.5,
        ),
        model_size_mb=30000.0,
        trainable=False,
    ),
}


#: Cache of pretrained parameter lists, keyed by (zoo name, seed, pretrain flag).
_PRETRAINED_CACHE: Dict[Tuple[str, int, bool], List[np.ndarray]] = {}


def _pretraining_pairs(n_pairs: int) -> List[Tuple[str, str, int]]:
    """Generate the shared "public corpus" pretraining pair set."""
    # Imported lazily to avoid a hard dependency cycle at import time
    # (datasets never import the zoo).
    from repro.datasets.corpus import Corpus
    from repro.datasets.semantic_pairs import generate_pair_dataset

    corpus = Corpus(seed=PRETRAIN_SEED, domains=list(PRETRAIN_DOMAINS))
    dataset = generate_pair_dataset(
        n_pairs=n_pairs,
        duplicate_fraction=0.5,
        hard_negative_fraction=0.6,
        corpus=corpus,
        seed=PRETRAIN_SEED,
    )
    return dataset.as_tuples()


def _pretrain(encoder: SiameseEncoder, spec: EncoderSpec) -> None:
    """Run the spec's pretraining pass in place (no-op for 0 epochs)."""
    if spec.pretrain_epochs <= 0:
        return
    pairs = _pretraining_pairs(spec.pretrain_pairs)
    encoder.train_on_pairs(
        pairs,
        epochs=spec.pretrain_epochs,
        batch_size=128,
        optimizer=Adam(lr=spec.pretrain_lr),
        shuffle_seed=PRETRAIN_SEED,
    )


def load_encoder(name: str, seed: int | None = None, pretrained: bool = True) -> SiameseEncoder:
    """Instantiate a zoo encoder by name.

    Parameters
    ----------
    name:
        One of :data:`ENCODER_SPECS` keys (``mpnet-sim``, ``albert-sim``,
        ``llama2-sim``).
    seed:
        Optional seed override (changes the "pretrained checkpoint" while
        keeping the architecture).
    pretrained:
        When True (default) the returned encoder carries the spec's
        "public corpus" pretraining (cached per process, so repeated loads are
        cheap).  When False the raw random initialisation is returned.

    Raises
    ------
    KeyError
        If ``name`` is not a known zoo entry.
    """
    try:
        spec = ENCODER_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(ENCODER_SPECS))
        raise KeyError(f"unknown encoder {name!r}; known encoders: {known}") from None
    config = spec.config
    if seed is not None:
        config = EncoderConfig(
            n_features=config.n_features,
            hidden_dim=config.hidden_dim,
            output_dim=config.output_dim,
            seed=seed,
            init_scale=config.init_scale,
            identity_residual=config.identity_residual,
            anisotropy=config.anisotropy,
            text_noise=config.text_noise,
            dtype=config.dtype,
        )
    if name == "llama2-sim":
        # Llama-2 is not a sentence-similarity model: no stop-word filtering
        # or subword/char-n-gram robustness tuned for paraphrase retrieval.
        tokenizer = Tokenizer(TokenizerConfig(remove_stopwords=False, char_ngram_max=0))
    else:
        tokenizer = Tokenizer(TokenizerConfig())
    featurizer = HashedFeaturizer(
        FeaturizerConfig(n_features=config.n_features, seed=config.seed),
        tokenizer,
    )
    encoder = SiameseEncoder(config, featurizer)
    do_pretrain = pretrained and spec.pretrain_epochs > 0
    if do_pretrain:
        cache_key = (name, config.seed, True)
        cached = _PRETRAINED_CACHE.get(cache_key)
        if cached is None:
            _pretrain(encoder, spec)
            _PRETRAINED_CACHE[cache_key] = encoder.get_parameters()
        else:
            encoder.set_parameters(cached)
    return encoder


def spec_for(name: str) -> EncoderSpec:
    """Return the :class:`EncoderSpec` for ``name`` (KeyError if unknown)."""
    if name not in ENCODER_SPECS:
        known = ", ".join(sorted(ENCODER_SPECS))
        raise KeyError(f"unknown encoder {name!r}; known encoders: {known}")
    return ENCODER_SPECS[name]
