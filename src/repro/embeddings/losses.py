"""Training objectives for the siamese encoder.

MeanCache's client training uses a multitask objective combining two losses
(paper §III-A1):

* **Contrastive loss** — pushes non-duplicate query pairs apart and pulls
  duplicate pairs together in embedding space.
* **Multiple-negatives ranking (MNR) loss** — given a batch of duplicate
  (anchor, positive) pairs, treats every other positive in the batch as a
  negative for the anchor and applies a softmax cross-entropy over the cosine
  score matrix.

Both functions return the scalar loss and the gradients with respect to the
(already L2-normalised) embeddings, so they can be chained with
:meth:`repro.embeddings.model.SiameseEncoder.backward`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def contrastive_loss(
    emb_a: np.ndarray,
    emb_b: np.ndarray,
    labels: np.ndarray,
    margin: float = 1.3,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Siamese contrastive loss on embedding pairs.

    Parameters
    ----------
    emb_a, emb_b:
        Arrays of shape ``(n, d)``: embeddings of the two sides of each pair.
    labels:
        Array of shape ``(n,)`` with 1 for duplicate (positive) pairs and 0
        for non-duplicate (negative) pairs.
    margin:
        Negative pairs closer than ``margin`` (Euclidean) are penalised.

    Returns
    -------
    (loss, grad_a, grad_b):
        Mean loss over the batch and gradients w.r.t. ``emb_a`` / ``emb_b``.
    """
    emb_a = np.asarray(emb_a, dtype=np.float64)
    emb_b = np.asarray(emb_b, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if emb_a.shape != emb_b.shape:
        raise ValueError(f"embedding shapes differ: {emb_a.shape} vs {emb_b.shape}")
    if emb_a.shape[0] != labels.shape[0]:
        raise ValueError("labels length must match number of pairs")
    n = emb_a.shape[0]
    if n == 0:
        return 0.0, np.zeros_like(emb_a), np.zeros_like(emb_b)

    diff = emb_a - emb_b
    dist = np.linalg.norm(diff, axis=1)
    # Positive pairs: 0.5 * d^2.  Negative pairs: 0.5 * max(0, margin - d)^2.
    pos_term = 0.5 * dist**2
    hinge = np.maximum(0.0, margin - dist)
    neg_term = 0.5 * hinge**2
    per_pair = labels * pos_term + (1.0 - labels) * neg_term
    loss = float(per_pair.mean())

    # Gradients.  d(0.5 d^2)/d emb_a = diff;  d(0.5 (m-d)^2)/d emb_a =
    # -(m-d) * diff / d for active hinge pairs (d > 0), else 0.
    safe_dist = np.where(dist > 1e-12, dist, 1.0)
    pos_grad = diff
    neg_grad = -(hinge / safe_dist)[:, None] * diff
    neg_grad[dist <= 1e-12] = 0.0
    grad_a = (labels[:, None] * pos_grad + (1.0 - labels)[:, None] * neg_grad) / n
    grad_b = -grad_a
    return loss, grad_a, grad_b


def multiple_negatives_ranking_loss(
    anchors: np.ndarray,
    positives: np.ndarray,
    scale: float = 20.0,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Multiple-negatives ranking loss over a batch of positive pairs.

    For a batch of ``n`` (anchor, positive) duplicate pairs, computes the
    score matrix ``S = scale * anchors @ positives.T`` (cosine similarity,
    assuming L2-normalised inputs) and the cross-entropy loss with the
    diagonal as the target class for each row.

    Returns
    -------
    (loss, grad_anchors, grad_positives)
    """
    anchors = np.asarray(anchors, dtype=np.float64)
    positives = np.asarray(positives, dtype=np.float64)
    if anchors.shape != positives.shape:
        raise ValueError(f"anchor/positive shapes differ: {anchors.shape} vs {positives.shape}")
    n = anchors.shape[0]
    if n == 0:
        return 0.0, np.zeros_like(anchors), np.zeros_like(positives)

    scores = scale * anchors @ positives.T  # (n, n)
    # Stable softmax per row.
    scores_shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(scores_shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    idx = np.arange(n)
    # Cross-entropy with diagonal targets.
    per_row = -np.log(np.clip(probs[idx, idx], 1e-12, None))
    loss = float(per_row.mean())

    # dL/dscores = (probs - I) / n ; chain through S = scale * A @ P.T
    dscores = probs.copy()
    dscores[idx, idx] -= 1.0
    dscores /= n
    grad_anchors = scale * dscores @ positives
    grad_positives = scale * dscores.T @ anchors
    return loss, grad_anchors, grad_positives


def combined_multitask_loss(
    emb_a: np.ndarray,
    emb_b: np.ndarray,
    labels: np.ndarray,
    margin: float = 1.3,
    mnr_scale: float = 20.0,
    contrastive_weight: float = 1.0,
    mnr_weight: float = 1.0,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """MeanCache's multitask objective: contrastive + MNR on the positives.

    The MNR term only uses the duplicate pairs of the batch (its formulation
    requires positives); the contrastive term uses the full batch.  Gradients
    are accumulated into full-batch-shaped arrays.
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    c_loss, c_grad_a, c_grad_b = contrastive_loss(emb_a, emb_b, labels, margin=margin)
    total = contrastive_weight * c_loss
    grad_a = contrastive_weight * c_grad_a
    grad_b = contrastive_weight * c_grad_b

    pos_mask = labels > 0.5
    n_pos = int(pos_mask.sum())
    if mnr_weight > 0.0 and n_pos >= 2:
        m_loss, m_grad_a, m_grad_b = multiple_negatives_ranking_loss(
            emb_a[pos_mask], emb_b[pos_mask], scale=mnr_scale
        )
        total += mnr_weight * m_loss
        grad_a[pos_mask] += mnr_weight * m_grad_a
        grad_b[pos_mask] += mnr_weight * m_grad_b
    return total, grad_a, grad_b
