"""Hashed sparse feature extraction (the encoder's "input layer").

The transformer encoders in the paper map token sequences into a continuous
space through learned token embeddings.  The NumPy substitute uses the hashing
trick: each token is hashed (with a fixed, seeded hash) into one of
``n_features`` buckets with a sign, producing a sparse count vector.  Two
queries that share words or character n-grams therefore share active features,
which is the lexical/semantic overlap signal that the trainable projection
head (:class:`repro.embeddings.model.SiameseEncoder`) sharpens.

The hashing is implemented without Python-level ``hash()`` so it is stable
across processes and interpreter runs (``PYTHONHASHSEED`` independence), which
matters for federated clients exchanging model parameters.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig


def stable_token_hash(token: str, seed: int = 0) -> int:
    """Return a stable 64-bit hash of ``token``.

    Uses blake2b with the seed mixed into the key so distinct featurizer
    instances can decorrelate their hash functions.
    """
    key = struct.pack("<Q", seed & 0xFFFFFFFFFFFFFFFF)
    digest = hashlib.blake2b(token.encode("utf-8"), key=key, digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


@dataclass(frozen=True)
class FeaturizerConfig:
    """Configuration for :class:`HashedFeaturizer`.

    Attributes
    ----------
    n_features:
        Dimensionality of the hashed feature space (the encoder input width).
    seed:
        Seed mixed into the hash function.
    signed:
        If True, half the hash bits choose a +1/-1 sign per token, which
        reduces collision bias (as in scikit-learn's HashingVectorizer).
    normalize:
        L2-normalise the output feature vectors.
    sublinear_tf:
        Apply ``1 + log(count)`` damping to repeated tokens.
    """

    n_features: int = 2048
    seed: int = 0
    signed: bool = True
    normalize: bool = True
    sublinear_tf: bool = True

    def __post_init__(self) -> None:
        if self.n_features < 2:
            raise ValueError("n_features must be >= 2")


class HashedFeaturizer:
    """Map raw text to dense ``float64`` feature vectors of fixed width.

    The featurizer is stateless apart from its configuration (no fitted
    vocabulary), so federated clients construct identical featurizers from the
    same config without exchanging any data — an important property for the
    privacy-preserving design.
    """

    def __init__(
        self,
        config: FeaturizerConfig | None = None,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self.config = config or FeaturizerConfig()
        self.tokenizer = tokenizer or Tokenizer(TokenizerConfig())
        # Per-instance memo of token -> (index, sign).  Purely a speed
        # optimisation; contents are fully determined by the config.
        self._memo: Dict[str, tuple[int, float]] = {}

    @property
    def n_features(self) -> int:
        """Width of the produced feature vectors."""
        return self.config.n_features

    def _slot(self, token: str) -> tuple[int, float]:
        cached = self._memo.get(token)
        if cached is not None:
            return cached
        h = stable_token_hash(token, self.config.seed)
        index = h % self.config.n_features
        sign = 1.0
        if self.config.signed:
            sign = 1.0 if (h >> 63) & 1 else -1.0
        slot = (int(index), sign)
        self._memo[token] = slot
        return slot

    def transform_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Featurize an already-tokenized query."""
        vec = np.zeros(self.config.n_features, dtype=np.float64)
        if not tokens:
            return vec
        counts: Dict[tuple[int, float], float] = {}
        for token in tokens:
            slot = self._slot(token)
            counts[slot] = counts.get(slot, 0.0) + 1.0
        for (index, sign), count in counts.items():
            value = 1.0 + np.log(count) if self.config.sublinear_tf else count
            vec[index] += sign * value
        if self.config.normalize:
            norm = np.linalg.norm(vec)
            if norm > 0.0:
                vec /= norm
        return vec

    def transform(self, text: str) -> np.ndarray:
        """Featurize a single raw text query."""
        return self.transform_tokens(self.tokenizer.tokenize(text))

    def transform_batch(self, texts: Sequence[str] | Iterable[str]) -> np.ndarray:
        """Featurize a batch of texts into a ``(len(texts), n_features)`` matrix."""
        texts = list(texts)
        out = np.zeros((len(texts), self.config.n_features), dtype=np.float64)
        for i, text in enumerate(texts):
            out[i] = self.transform(text)
        return out
